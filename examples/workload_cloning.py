#!/usr/bin/env python
"""Statistical workload cloning: share a proprietary trace's *behaviour*
without sharing the trace.

The paper's performance model ran on instruction traces of production
mainframe workloads — exactly the data nobody can publish.  This example
plays the full loop: record a trace, measure its branch profile,
synthesise a clone from the statistics alone, and show that the clone
stresses the predictor the same way the original does.

Usage::

    python examples/workload_cloning.py [branches]
"""

import sys

from repro import FunctionalEngine, LookaheadBranchPredictor
from repro.configs import z15_config
from repro.workloads import (
    clone_trace,
    profile_trace,
    transaction_workload,
)
from repro.workloads.executor import Executor


def mpki_of(program, seed, branches):
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    stats = engine.run_program(program, max_branches=branches,
                               warmup_branches=branches // 2, seed=seed)
    return stats


def main() -> None:
    branches = int(sys.argv[1]) if len(sys.argv) > 1 else 8000

    # 1. The "proprietary" workload and its trace.
    original = transaction_workload(seed=4)
    trace = list(Executor(original, seed=4).run(max_branches=branches))
    profile = profile_trace(trace)
    print("original trace profile:")
    print(profile.summary())

    # 2. Synthesise the clone from the statistics alone.
    clone = clone_trace(trace, seed=2, name="transactions-clone")
    clone_profile = profile_trace(
        list(Executor(clone, seed=2).run(max_branches=branches))
    )
    print()
    print("clone profile:")
    print(clone_profile.summary())

    # 3. Both drive the predictor comparably.
    original_stats = mpki_of(transaction_workload(seed=4), 4, branches)
    clone_stats = mpki_of(clone_trace(trace, seed=2), 2, branches)
    print()
    print(f"{'metric':<22} {'original':>10} {'clone':>10}")
    print("-" * 45)
    print(f"{'MPKI':<22} {original_stats.mpki:>10.2f} "
          f"{clone_stats.mpki:>10.2f}")
    print(f"{'direction accuracy':<22} "
          f"{original_stats.direction_accuracy:>10.2%} "
          f"{clone_stats.direction_accuracy:>10.2%}")
    print(f"{'dynamic coverage':<22} "
          f"{original_stats.dynamic_coverage:>10.2%} "
          f"{clone_stats.dynamic_coverage:>10.2%}")


if __name__ == "__main__":
    main()
