#!/usr/bin/env python
"""The array backend: same predictor, SRAM-shaped storage.

Runs one workload through both predictor backends — the default object
model and the array backend whose probe state lives in packed lanes
(`repro.structures.arrays`) — times each, and proves branch-for-branch
equivalence: identical committed streams, identical stats, identical
learned-table fingerprints.

Usage::

    python examples/array_backend.py [workload] [branches]
"""

import sys
import time

from repro import BACKENDS, FunctionalEngine, create_predictor
from repro.configs import z15_config
from repro.verification.differential import (
    comparable_stats,
    observer_into,
    predictor_fingerprint,
)
from repro.workloads import STANDARD_WORKLOADS, get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "transactions"
    branches = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    if workload not in STANDARD_WORKLOADS:
        raise SystemExit(f"unknown workload {workload!r}; see "
                         "`python -m repro workloads`")

    runs = {}
    for backend in sorted(BACKENDS):
        observations = []
        predictor = create_predictor(z15_config(), backend)
        engine = FunctionalEngine(predictor,
                                  observer=observer_into(observations))
        start = time.perf_counter()
        stats = engine.run_program(get_workload(workload),
                                   max_branches=branches, warmup_branches=0)
        elapsed = time.perf_counter() - start
        runs[backend] = (observations, comparable_stats(stats),
                         predictor_fingerprint(predictor))
        print(f"{backend:>7}: {branches / elapsed:>9,.0f} branches/s   "
              f"MPKI {stats.mpki:.3f}   "
              f"accuracy {stats.direction_accuracy:.2%}")

    backends = sorted(runs)
    reference = runs[backends[0]]
    for other in backends[1:]:
        observations, stats, fingerprint = runs[other]
        assert observations == reference[0], "committed streams diverged!"
        assert stats == reference[1], "stats diverged!"
        assert fingerprint == reference[2], "learned state diverged!"
    print(f"equivalent: {len(reference[0])} committed branches, "
          f"stats and learned-table fingerprints identical across "
          f"{', '.join(backends)}")


if __name__ == "__main__":
    main()
