#!/usr/bin/env python
"""Reproduce the paper's conclusion: MPKI falls generation over
generation (zEC12 -> z13 -> z14 -> z15).

Runs every generation preset over a small LSPR-like suite and prints the
average MPKI with per-generation improvements — the shape behind the
paper's "9.6% between the z14 and z13, and another 25% between the z15
and z14".

Usage::

    python examples/generation_comparison.py [branches-per-workload]
"""

import sys

from repro import FunctionalEngine, LookaheadBranchPredictor
from repro.configs import GENERATIONS
from repro.workloads import get_workload

SUITE = ["transactions", "correlated", "deep-history", "deep-xor",
         "footprint-medium"]


def main() -> None:
    branches = int(sys.argv[1]) if len(sys.argv) > 1 else 8000

    print(f"suite: {', '.join(SUITE)}  ({branches} branches each)")
    print()
    header = f"{'generation':<8} {'avg MPKI':>9} {'improvement':>12}  per-workload"
    print(header)
    print("-" * len(header))

    previous = None
    for name, (factory, info) in GENERATIONS.items():
        mpkis = []
        for workload in SUITE:
            engine = FunctionalEngine(LookaheadBranchPredictor(factory()))
            stats = engine.run_program(
                get_workload(workload),
                max_branches=branches,
                warmup_branches=branches // 2,
            )
            mpkis.append(stats.mpki)
        average = sum(mpkis) / len(mpkis)
        if previous is None:
            improvement = "-"
        else:
            improvement = f"{100 * (1 - average / previous):.1f}%"
        detail = " ".join(f"{m:6.2f}" for m in mpkis)
        print(f"{name:<8} {average:>9.3f} {improvement:>12}  {detail}")
        previous = average

    print()
    print("paper: MPKI decreased 9.6% (z13->z14) and another 25% (z14->z15)")
    print("on LSPR workloads; the reproduction validates the direction and")
    print("per-generation attribution (perceptron at z14, TAGE at z15).")


if __name__ == "__main__":
    main()
