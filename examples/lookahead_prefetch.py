#!/usr/bin/env python
"""The asynchronous lookahead predictor as an I-cache prefetcher.

Section IV of the paper: "by designing the branch footprint of the BTB
to be larger than that of the level 1 instruction cache, branch
prediction can serve as an effective cache prefetcher, mitigating and
often eliminating the penalty of L1 instruction cache misses".

This example runs the cycle-level engine over a footprint that misses a
deliberately small L1I, with the lookahead prefetch enabled and
disabled, and prints the timing difference.

Usage::

    python examples/lookahead_prefetch.py [branches]
"""

import sys

from repro import CycleEngine, LookaheadBranchPredictor
from repro.configs import z15_config
from repro.frontend.icache import CacheLevelConfig, InstructionCacheHierarchy
from repro.workloads import large_footprint_program


def small_l1i_hierarchy() -> InstructionCacheHierarchy:
    """An 8 KiB L1I so the workload's footprint misses it constantly."""
    return InstructionCacheHierarchy(
        levels=[
            CacheLevelConfig("L1I", 8 * 1024, line_size=128,
                             associativity=2, latency=4),
            CacheLevelConfig("L2I", 1024 * 1024, line_size=128,
                             associativity=8, latency=12),
        ],
        memory_latency=250,
    )


def run(lookahead_prefetch: bool, branches: int):
    program = large_footprint_program(block_count=1024, taken_bias=0.3,
                                      seed=5, name="prefetch-demo")
    engine = CycleEngine(
        LookaheadBranchPredictor(z15_config()),
        icache=small_l1i_hierarchy(),
        lookahead_prefetch=lookahead_prefetch,
    )
    return engine.run_program(program, max_branches=branches)


def main() -> None:
    branches = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000

    print(f"running {branches} branches against an 8 KiB L1I...")
    with_prefetch = run(True, branches)
    without_prefetch = run(False, branches)

    print()
    print(with_prefetch.report("lookahead prefetch ON"))
    print()
    print(without_prefetch.report("lookahead prefetch OFF"))
    print()
    saved = without_prefetch.cycles - with_prefetch.cycles
    speedup = without_prefetch.cycles / with_prefetch.cycles
    print(f"prefetching saved {saved} cycles "
          f"({speedup:.3f}x front-end speedup); "
          f"{with_prefetch.hidden_miss_cycles} miss cycles were hidden "
          "behind the lookahead search.")


if __name__ == "__main__":
    main()
