#!/usr/bin/env python
"""SMT2: two threads sharing one branch predictor.

The z15 runs two SMT threads through shared prediction tables, with the
single BTB1 search port alternating between them (section IV).  This
example interleaves two workloads as SMT threads — each keeps its own
search state, GPV and call/return stacks, while every table is shared —
and compares accuracy against each thread running alone, then shows the
SMT2 timing cost (the 6-cycle taken interval versus 5 single-threaded).

Usage::

    python examples/smt2_interference.py [branches]
"""

import sys

from repro import CycleEngine, FunctionalEngine, LookaheadBranchPredictor
from repro.configs import z15_config
from repro.workloads import Smt2Run, get_workload


def run_alone(name: str, branches: int):
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    return engine.run_program(get_workload(name), max_branches=branches,
                              warmup_branches=0)


def run_smt2(name_a: str, name_b: str, branches: int):
    run = Smt2Run(get_workload(name_a), get_workload(name_b), seed=3)
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    stats = engine.run_events(run.run(branches))
    stats.instructions = run.instructions_executed
    return stats


def main() -> None:
    branches = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    thread_a, thread_b = "transactions", "compute-kernel"

    print(f"threads: {thread_a} + {thread_b}")
    alone_a = run_alone(thread_a, branches // 2)
    alone_b = run_alone(thread_b, branches // 2)
    together = run_smt2(thread_a, thread_b, branches)

    print()
    print(f"{'run':<28} {'mispredicts':>12} {'accuracy':>9}")
    print("-" * 52)
    print(f"{thread_a + ' alone':<28} {alone_a.mispredicted_branches:>12} "
          f"{alone_a.direction_accuracy:>8.2%}")
    print(f"{thread_b + ' alone':<28} {alone_b.mispredicted_branches:>12} "
          f"{alone_b.direction_accuracy:>8.2%}")
    combined = alone_a.mispredicted_branches + alone_b.mispredicted_branches
    print(f"{'sum of alone runs':<28} {combined:>12}")
    print(f"{'SMT2 interleaved':<28} "
          f"{together.mispredicted_branches:>12} "
          f"{together.direction_accuracy:>8.2%}")
    interference = together.mispredicted_branches - combined
    print(f"\ntable-sharing interference: {interference:+d} mispredicts "
          f"({interference / max(1, combined):+.1%})")

    # Timing: the SMT2 port-sharing cost on a taken-heavy kernel (CPRED
    # disabled so the base 5-vs-6-cycle interval of section IV shows).
    print("\ntiming (taken-chain kernel, CPRED off, cycles per taken branch):")
    from benchmarks_support import taken_chain  # local helper below

    from repro.configs.predictor import CpredConfig

    for smt2 in (False, True):
        config = z15_config()
        config.cpred = CpredConfig(enabled=False)
        config.validate()
        engine = CycleEngine(LookaheadBranchPredictor(config), smt2=smt2)
        stats = engine.run_program(taken_chain(), max_branches=3000)
        rate = stats.cycles / stats.taken_redirects
        label = "SMT2" if smt2 else "single thread"
        print(f"  {label:<14} {rate:5.2f} cycles/taken "
              f"(paper: {6 if smt2 else 5})")


def _install_support_module() -> None:
    """Expose the taken-chain microkernel without importing benchmarks/."""
    import types

    from repro.isa.instructions import BranchKind
    from repro.workloads import AlwaysTaken, CodeBuilder

    def taken_chain(links: int = 16, stride: int = 64):
        builder = CodeBuilder(0x10000, name="taken-chain")
        addresses = [0x10000 + index * stride for index in range(links)]
        for index, address in enumerate(addresses):
            builder.jump_to(address)
            builder.branch(
                BranchKind.UNCONDITIONAL_RELATIVE,
                target=addresses[(index + 1) % links],
                behavior=AlwaysTaken(),
            )
        return builder.build(entry_point=addresses[0])

    module = types.ModuleType("benchmarks_support")
    module.taken_chain = taken_chain
    sys.modules["benchmarks_support"] = module


if __name__ == "__main__":
    _install_support_module()
    main()
