#!/usr/bin/env python
"""The section-VII white-box verification environment in action.

Runs the constrained-random environment twice: against the healthy DUT
(clean) and against a DUT with an injected install-path defect (the
read-before-write duplicate filter silently skipped), showing the
decoupled read-side/write-side checkers catching the bug — "early
detection of performance related hardware problems close to the source
of failure".

Usage::

    python examples/verification_demo.py [branches]
"""

import sys

from repro import LookaheadBranchPredictor
from repro.configs import z15_config
from repro.core.btb1 import InstallResult
from repro.verification import StimulusConstraints, VerificationEnvironment


def healthy_run(branches: int) -> None:
    dut = LookaheadBranchPredictor(z15_config())
    env = VerificationEnvironment(
        dut,
        StimulusConstraints(seed=2024),
        checkpoint_interval=250,
    )
    report = env.run(branches=branches, preload_entries=200)
    print(report.summary())


def inject_duplicate_defect(dut: LookaheadBranchPredictor) -> None:
    """Defect: every 9th install bypasses the duplicate filter."""
    original_install = dut.btb1.install
    state = {"calls": 0}

    def broken_install(address, context, entry):
        state["calls"] += 1
        if state["calls"] % 9:
            return original_install(address, context, entry)
        base = address - address % 64
        entry.tag = dut.btb1.tag_of(base, context)
        entry.offset = address - base
        entry.line_base = base
        entry.context = context
        row = dut.btb1.row_of(base)
        way = dut.btb1._table.victim_way(row)
        dut.btb1._table.write(row, way, entry)
        result = InstallResult(installed=True, duplicate=False, row=row,
                               way=way)
        if dut.btb1.on_install is not None:
            dut.btb1.on_install(address=address, context=context,
                                entry=entry, result=result)
        return result

    dut.btb1.install = broken_install


def buggy_run(branches: int) -> None:
    dut = LookaheadBranchPredictor(z15_config())
    inject_duplicate_defect(dut)
    env = VerificationEnvironment(
        dut,
        StimulusConstraints(seed=2024, revisit_rate=0.9, address_span=0x4000),
        checkpoint_interval=250,
    )
    report = env.run(branches=branches)
    print(report.summary())


def main() -> None:
    branches = int(sys.argv[1]) if len(sys.argv) > 1 else 3000

    print("=== healthy DUT ===")
    healthy_run(branches)
    print()
    print("=== DUT with injected duplicate-install defect ===")
    buggy_run(branches)
    print()
    print("the write-side checker and checkpoint crosschecks localise the")
    print("defect to the install path — a functional symptom (duplicate")
    print("BTB1 entries) that black-box architectural checking would miss.")


if __name__ == "__main__":
    main()
