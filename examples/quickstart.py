#!/usr/bin/env python
"""Quickstart: run the z15 branch predictor model over a workload.

Builds the paper-faithful z15 configuration, executes an LSPR-like
transaction workload, and prints the accuracy report with the provider
breakdown of figures 8 and 9.

Usage::

    python examples/quickstart.py [workload] [branches]

Workloads: see `repro.workloads.STANDARD_WORKLOADS` (default:
"transactions").
"""

import sys

from repro import FunctionalEngine, LookaheadBranchPredictor
from repro.configs import z15_config
from repro.workloads import STANDARD_WORKLOADS, get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "transactions"
    branches = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000

    if workload not in STANDARD_WORKLOADS:
        known = "\n  ".join(
            f"{spec.name:<20} {spec.description}"
            for spec in STANDARD_WORKLOADS.values()
        )
        raise SystemExit(f"unknown workload {workload!r}; available:\n  {known}")

    print(f"workload: {workload} — {STANDARD_WORKLOADS[workload].description}")
    print(f"running {branches} branches (plus {branches // 4} warmup)...")

    predictor = LookaheadBranchPredictor(z15_config())
    engine = FunctionalEngine(predictor)
    stats = engine.run_program(
        get_workload(workload),
        max_branches=branches,
        warmup_branches=branches // 4,
    )

    print()
    print(stats.report(f"z15 / {workload}"))
    print()
    print("structure occupancy after the run:")
    print(f"  BTB1:       {predictor.btb1.occupancy:>6} / {predictor.btb1.capacity}")
    if predictor.btb2 is not None:
        print(f"  BTB2:       {predictor.btb2.occupancy:>6} / {predictor.btb2.capacity}")
    print(f"  TAGE short: {predictor.tage.short_table.occupancy:>6}")
    if predictor.tage.long_table is not None:
        print(f"  TAGE long:  {predictor.tage.long_table.occupancy:>6}")
    print(f"  perceptron: {predictor.perceptron.occupancy:>6} / "
          f"{predictor.config.perceptron.capacity}")
    print(f"  CTB:        {predictor.ctb.occupancy:>6} / {predictor.config.ctb.capacity}")


if __name__ == "__main__":
    main()
