#!/usr/bin/env python
"""Build a custom program, run it, and save/replay a branch trace.

Demonstrates the workload substrate: the assembler-style
:class:`CodeBuilder`, behaviour models (loops, calls/returns, changing
targets), the executor, and the trace file format (the equivalent of the
paper's "instruction traces of workloads that run on a mainframe
system", section VII).

Usage::

    python examples/custom_workload.py [branches] [trace-path]
"""

import sys
import tempfile

from repro import FunctionalEngine, LookaheadBranchPredictor
from repro.configs import z15_config
from repro.isa.instructions import BranchKind
from repro.workloads import (
    AlwaysTaken,
    Call,
    CodeBuilder,
    Executor,
    IndirectCycle,
    Loop,
    Return,
    load_trace,
    write_trace,
)


def build_program():
    """A little transaction server: a dispatcher, two handlers, and a
    shared logging helper far away (a CRS-detectable call/return)."""
    builder = CodeBuilder(0x100000, name="mini-server")

    # Shared helper, far from the callers.
    helper = builder.label("log_event")
    builder.straight(6)
    builder.branch(BranchKind.UNCONDITIONAL_INDIRECT, behavior=Return())
    builder.gap(0x8000)

    # The dispatcher: an indirect branch rotating over the handlers.
    dispatcher = builder.label("dispatcher")
    builder.straight(4)
    dispatch_site = builder.branch(BranchKind.UNCONDITIONAL_INDIRECT,
                                   behavior=None)

    # Handler A: a counted loop then a call to the helper.
    builder.gap(0x200)
    handler_a = builder.label("handler_a")
    loop_head = builder.label()
    builder.straight(3)
    builder.branch(BranchKind.LOOP_RELATIVE, target=loop_head,
                   behavior=Loop(5))
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=helper,
                   behavior=Call())
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=dispatcher,
                   behavior=AlwaysTaken())

    # Handler B: straight-line work, then back to the dispatcher.
    builder.gap(0x200)
    handler_b = builder.label("handler_b")
    builder.straight(8)
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=helper,
                   behavior=Call())
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=dispatcher,
                   behavior=AlwaysTaken())

    program = builder.build(entry_point=dispatcher.resolve())
    program.behaviors[dispatch_site] = IndirectCycle(
        [handler_a.resolve(), handler_b.resolve()]
    )
    return program


def main() -> None:
    branches = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    trace_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else tempfile.mktemp(suffix=".trace.gz")
    )

    program = build_program()
    print(f"program: {program.instruction_count} instructions, "
          f"{program.branch_count} branches, "
          f"{program.footprint_bytes()} bytes of footprint")

    # Execute and record the trace.
    executor = Executor(program, seed=1)
    recorded = list(executor.run(max_branches=branches))
    count = write_trace(trace_path, recorded)
    print(f"recorded {count} branches to {trace_path}")

    # Predict the live run.
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    live = engine.run_branches(recorded,
                               instructions=executor.instructions_executed)
    print()
    print(live.report("live run"))

    # Replay the saved trace — results are identical.
    replay_engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    replayed = replay_engine.run_branches(
        load_trace(trace_path), instructions=executor.instructions_executed
    )
    print()
    match = (replayed.mispredicted_branches == live.mispredicted_branches)
    print(f"trace replay mispredicts: {replayed.mispredicted_branches} "
          f"({'matches live run' if match else 'MISMATCH!'})")


if __name__ == "__main__":
    main()
