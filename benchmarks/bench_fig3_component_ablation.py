"""F3 — Figure 3: the BPL component inventory, validated by ablation.

Figure 3 draws the component diagram (BTB1+BHT, BTB2, TAGE PHT,
perceptron, CTB, CRS, CPRED, SKOOT).  This benchmark removes each
auxiliary component from the z15 configuration and measures the damage
on the workload class that component exists for — every component must
earn its silicon on its niche.
"""

from repro.configs import z15_config
from repro.configs.predictor import (
    Btb1Config,
    CrsConfig,
    CtbConfig,
    PerceptronConfig,
    PhtConfig,
)

from common import fmt, print_table, sweep_functional
from repro.workloads.generators import large_footprint_program


def _variant(**overrides):
    config = z15_config()
    for key, value in overrides.items():
        setattr(config, key, value)
    return config.validate()


def _tiny_pht():
    return PhtConfig(tage=False, rows=8, ways=1, short_history=9,
                     long_history=9)


#: (component, niche workload builder) — each contributes a with/without
#: job pair to the fan-out.
def _jobs():
    jobs = []

    # TAGE PHT: pattern-dependent directions.
    jobs.append(("tage-pht/with", z15_config(), "patterned"))
    jobs.append(("tage-pht/without", _variant(pht=_tiny_pht()), "patterned"))
    # Perceptron: outcome-correlated branches.
    jobs.append(("perceptron/with", z15_config(), "correlated"))
    jobs.append(
        ("perceptron/without",
         _variant(perceptron=PerceptronConfig(enabled=False)), "correlated")
    )
    # CTB: multi-target dispatch.
    jobs.append(("ctb/with", z15_config(), "dispatch"))
    jobs.append(
        ("ctb/without", _variant(ctb=CtbConfig(rows=1, ways=1, history=17)),
         "dispatch")
    )
    # CRS: call/return idioms with noisy bodies (the CTB cannot cover
    # these — the CRS's unique niche).
    jobs.append(("crs/with", z15_config(), "services-noisy"))
    jobs.append(
        ("crs/without", _variant(crs=CrsConfig(enabled=False)),
         "services-noisy")
    )
    # BTB2: capacity beyond the BTB1 (shrink the BTB1 to expose it;
    # CRS disabled in both variants so ring jumps that alias as
    # call/return pairs don't blur the capacity signal).
    ring = large_footprint_program(block_count=256, taken_bias=0.4, seed=7,
                                   name="capacity-ring")
    ring2 = large_footprint_program(block_count=256, taken_bias=0.4, seed=7,
                                    name="capacity-ring")
    small_btb1 = Btb1Config(rows=64, ways=4, policy="lru")
    jobs.append(
        ("btb2/with",
         _variant(btb1=small_btb1, crs=CrsConfig(enabled=False)), ring)
    )
    jobs.append(
        ("btb2/without",
         _variant(btb1=Btb1Config(rows=64, ways=4, policy="lru"), btb2=None,
                  crs=CrsConfig(enabled=False)), ring2)
    )
    return jobs


_NICHES = {
    "tage-pht": "patterned",
    "perceptron": "correlated",
    "ctb": "dispatch",
    "crs": "services-noisy",
    "btb2": "footprint(tiny BTB1)",
}


def _run_all():
    # Ten independent cells (five with/without pairs) fanned over worker
    # processes; per-cell stats are identical to the sequential loop.
    mpki = {
        label: stats.mpki for label, stats in sweep_functional(_jobs()).items()
    }
    return {
        component: (niche, mpki[f"{component}/with"],
                    mpki[f"{component}/without"])
        for component, niche in _NICHES.items()
    }


def test_component_ablation(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for component, (workload, with_mpki, without_mpki) in results.items():
        delta = without_mpki - with_mpki
        rows.append([component, workload, fmt(with_mpki), fmt(without_mpki),
                     fmt(delta, 2)])
    print_table(
        "Figure 3 — component ablations on their niche workloads",
        ["component", "workload", "MPKI (z15)", "MPKI (removed)", "delta"],
        rows,
        paper_note="each auxiliary predictor exists for a workload class "
        "(sections III-VI)",
    )

    for component, (workload, with_mpki, without_mpki) in results.items():
        assert with_mpki <= without_mpki + 0.05, (
            f"removing {component} should not help on {workload}"
        )
    # At least the PHT, CTB and BTB2 ablations must show clear damage.
    assert results["tage-pht"][2] > results["tage-pht"][1] + 0.5
    assert results["ctb"][2] > results["ctb"][1] + 0.5
    assert results["btb2"][2] > results["btb2"][1] + 0.5
    assert results["crs"][2] > results["crs"][1] + 0.5
