"""F5 — Figure 5: CPRED-accelerated re-indexing.

The paper: with the column predictor the pipeline re-indexes at b2
instead of b5, predicting "a taken branch every 2 cycles".  Same
microkernel as F4, CPRED enabled: once the streams are learned, most
redirects run at the accelerated interval and throughput approaches 2
cycles per taken branch.
"""

from repro.configs import TimingConfig, z15_config
from repro.configs.predictor import CpredConfig

from bench_fig4_pipeline_rates import taken_chain_program
from common import fmt, pct, print_table, run_cycle


def _run_all():
    branches = 4000
    with_cpred = run_cycle(z15_config(), taken_chain_program(),
                           branches=branches)
    no_cpred_config = z15_config()
    no_cpred_config.cpred = CpredConfig(enabled=False)
    no_cpred_config.validate()
    without_cpred = run_cycle(no_cpred_config, taken_chain_program(),
                              branches=branches)
    return with_cpred, without_cpred


def test_cpred_reindex_rate(benchmark):
    with_cpred, without_cpred = benchmark.pedantic(_run_all, rounds=1,
                                                   iterations=1)
    timing = TimingConfig()

    with_rate = with_cpred.cycles / with_cpred.taken_redirects
    without_rate = without_cpred.cycles / without_cpred.taken_redirects
    hit_rate = with_cpred.cpred_redirects / with_cpred.taken_redirects
    print_table(
        "Figure 5 — CPRED b2 re-index acceleration",
        ["configuration", "cycles/taken", "CPRED-accelerated", "paper"],
        [
            ["with CPRED", fmt(with_rate, 2), pct(hit_rate),
             timing.taken_interval_cpred],
            ["without CPRED", fmt(without_rate, 2), "-",
             timing.taken_interval_st],
        ],
        paper_note="with the CPRED the design can predict a taken branch "
        "every 2 cycles; every 5 without",
    )

    assert hit_rate > 0.9  # steady streams are fully learned
    assert with_rate < without_rate
    assert abs(with_rate - timing.taken_interval_cpred) < 1.0
