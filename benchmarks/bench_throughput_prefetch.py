"""S2C — Section II.C / IV: lookahead prefetch hides I-cache misses.

The paper: "by designing the branch footprint of the BTB to be larger
than that of the level 1 instruction cache, branch prediction can serve
as an effective cache prefetcher, mitigating and often eliminating the
penalty of L1 instruction cache misses".  This benchmark runs a
footprint larger than a deliberately small L1I, with the lookahead
prefetch enabled and disabled.
"""

from repro.configs import z15_config
from repro.frontend.icache import CacheLevelConfig, InstructionCacheHierarchy

from common import fmt, pct, print_table, run_cycle
from repro.workloads.generators import large_footprint_program


def _small_hierarchy():
    return InstructionCacheHierarchy(
        levels=[
            CacheLevelConfig("L1I", 8 * 1024, line_size=128, associativity=2,
                             latency=4),
            CacheLevelConfig("L2I", 1024 * 1024, line_size=128,
                             associativity=8, latency=12),
        ],
        memory_latency=250,
    )


def _ring():
    return large_footprint_program(block_count=1024, taken_bias=0.3, seed=5,
                                   name="prefetch-ring")


def _run_both():
    with_prefetch = run_cycle(
        z15_config(), _ring(), branches=8000, icache=_small_hierarchy(),
        lookahead_prefetch=True,
    )
    without_prefetch = run_cycle(
        z15_config(), _ring(), branches=8000, icache=_small_hierarchy(),
        lookahead_prefetch=False,
    )
    return with_prefetch, without_prefetch


def test_lookahead_prefetch(benchmark):
    with_prefetch, without_prefetch = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )

    total = with_prefetch.exposed_miss_cycles + with_prefetch.hidden_miss_cycles
    hidden_share = with_prefetch.hidden_miss_cycles / max(1, total)
    rows = [
        ["lookahead prefetch ON",
         with_prefetch.exposed_miss_cycles,
         with_prefetch.hidden_miss_cycles,
         pct(hidden_share),
         fmt(with_prefetch.cpi, 3)],
        ["lookahead prefetch OFF",
         without_prefetch.exposed_miss_cycles, 0, "-",
         fmt(without_prefetch.cpi, 3)],
    ]
    print_table(
        "Section II.C — exposed vs hidden I-cache miss cycles",
        ["configuration", "exposed miss cycles", "hidden miss cycles",
         "hidden share", "CPI"],
        rows,
        paper_note="the BPL runs ahead of fetch (64B/cycle vs 32B/cycle) "
        "and prefetches upcoming lines, hiding L1I miss latency",
    )

    assert with_prefetch.hidden_miss_cycles > 0
    assert with_prefetch.exposed_miss_cycles < \
        without_prefetch.exposed_miss_cycles
    assert with_prefetch.cpi <= without_prefetch.cpi
