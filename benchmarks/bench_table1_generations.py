"""T1 — Table 1: structure sizes of prior system Z processors.

The paper's Table 1 lists cache and BTB sizes across zEC12/z13/z14/z15.
This benchmark regenerates the table from the generation presets and
attaches the measured consequence of the growth: dynamic coverage and
MPKI on a capacity-stressing large-footprint ring improve monotonically
with the structure sizes.
"""

from repro.configs import GENERATIONS

from common import fmt, pct, print_table, sweep_functional
from repro.workloads.generators import large_footprint_program


def _capacity_ring():
    return large_footprint_program(block_count=2048, taken_bias=0.4, seed=7,
                                   name="table1-ring")


def _run_all():
    # One independent cell per generation — fanned over worker processes.
    jobs = [
        (name, factory(), _capacity_ring())
        for name, (factory, _info) in GENERATIONS.items()
    ]
    stats = sweep_functional(jobs, branches=10000, warmup=10000)
    return {
        name: (GENERATIONS[name][1], stats[name]) for name in stats
    }


def test_table1_structure_sizes(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for name, (info, stats) in results.items():
        approx = "~" if info.approximate_fields else ""
        rows.append(
            [
                name,
                info.year,
                f"{info.l1i_kib} KiB",
                f"{info.l2i_kib // 1024} MiB",
                f"{approx}{info.btb1_branches // 1024}K",
                f"{approx}{info.btb2_branches // 1024}K",
                pct(stats.dynamic_coverage),
                fmt(stats.mpki),
            ]
        )
    print_table(
        "Table 1 — structure sizes across generations (+ measured effect)",
        ["gen", "year", "L1I", "L2I", "BTB1", "BTB2", "coverage", "MPKI"],
        rows,
        paper_note="BTB capacity grows every generation; larger tables "
        "track larger warm footprints (zEC12 4K/24K -> z15 16K/128K)",
    )

    # Shape: coverage rises and MPKI falls from zEC12 to z15.
    coverage = [stats.dynamic_coverage for _, stats in results.values()]
    mpki = [stats.mpki for _, stats in results.values()]
    assert coverage[-1] > coverage[0]
    assert mpki[-1] < mpki[0]
