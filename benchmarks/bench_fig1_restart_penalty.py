"""F1 — Figure 1 / section II.D: pipeline restart costs.

The paper: a branch wrong costs "up to 26 cycles" of pipeline refill and
"about 35 cycles" statistically once queueing disruption is counted.
This benchmark measures the per-misprediction cycle cost the cycle
engine charges and the share of total cycles lost to restarts on a
mispredict-heavy workload.
"""

from repro.configs import TimingConfig, z15_config

from common import fmt, print_table, run_cycle
from repro.workloads.generators import large_footprint_program


def _run():
    program = large_footprint_program(block_count=512, taken_bias=0.4,
                                      deterministic_fraction=0.5, seed=9,
                                      name="restart-ring")
    return run_cycle(z15_config(), program, branches=8000)


def test_restart_penalty(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    timing = TimingConfig()

    mispredicts = stats.accuracy.mispredicted_branches
    full_restarts = [
        klass
        for klass, count in stats.accuracy.classes.items()
        for _ in range(count)
        if klass.value in ("direction-wrong", "target-wrong",
                           "surprise-taken", "surprise-guess-wrong")
    ]
    per_restart = stats.restart_cycles / max(1, stats.restarts)
    print_table(
        "Figure 1 — restart penalty accounting",
        ["metric", "value"],
        [
            ["branches", stats.branches],
            ["mispredicted branches", mispredicts],
            ["restart events", stats.restarts],
            ["restart cycles", stats.restart_cycles],
            ["avg cycles / restart", fmt(per_restart, 1)],
            ["paper restart penalty", timing.restart_penalty],
            ["paper statistical penalty", timing.statistical_restart_penalty],
            ["restart share of cycles",
             fmt(100 * stats.restart_cycles / stats.cycles, 1) + "%"],
            ["CPI", fmt(stats.cpi, 3)],
        ],
        paper_note="branch wrong flush costs up to 26 cycles, ~35 "
        "statistically with queueing disruption",
    )

    # Shape: the average restart sits between the decode-restart cost and
    # the statistical penalty, and mispredict-heavy code is restart-bound.
    assert timing.decode_restart_penalty <= per_restart <= \
        timing.statistical_restart_penalty + 1
    assert stats.restart_cycles > 0.2 * stats.cycles
