"""X4 — §II / §IV: SMT2 throughput versus single-thread latency.

Section II: "Designs can increase threads or core counts ... to increase
the throughput"; section IV gives the cost: the threads share the single
BTB1 search port (searching every other cycle, taken predictions every 6
cycles instead of 5) and the fetch bandwidth.

This benchmark runs one thread alone and two threads interleaved through
the same predictor and I-cache and reports combined throughput and the
per-thread slowdown.  Only front-end contention is modelled (the paper's
back-end SMT effects are out of scope), so the gain is an upper bound.
"""

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import CycleEngine
from repro.workloads import get_workload

from common import fmt, print_table


def _run_single():
    engine = CycleEngine(LookaheadBranchPredictor(z15_config()), smt2=False)
    return engine.run_program(get_workload("transactions"),
                              max_branches=6000)


def _run_smt2():
    engine = CycleEngine(LookaheadBranchPredictor(z15_config()), smt2=True)
    return engine.run_smt2(
        get_workload("transactions"),
        get_workload("transactions", seed=9),
        max_branches=12000,
    )


def test_smt2_throughput(benchmark):
    def _run_both():
        return _run_single(), _run_smt2()

    single, smt2 = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    gain = smt2.ipc / single.ipc
    print_table(
        "SMT2 — combined throughput vs single thread",
        ["configuration", "instructions", "cycles", "IPC", "gain"],
        [
            ["single thread", single.instructions, single.cycles,
             fmt(single.ipc, 3), "1.00x"],
            ["SMT2 (2 threads)", smt2.instructions, smt2.cycles,
             fmt(smt2.ipc, 3), fmt(gain, 2) + "x"],
        ],
        paper_note="threads share the search port and fetch bandwidth; "
        "throughput rises while per-thread latency falls",
    )

    # Shape: SMT2 increases combined throughput but less than 2x of a
    # single thread (port/bandwidth sharing is not free).
    assert gain > 1.2
    assert gain < 2.0
    # Per-thread progress is slower than running alone.
    per_thread_ipc = smt2.ipc / 2
    assert per_thread_ipc < single.ipc
