"""X1 — §V motivation: misprediction concentration.

The paper justifies the tiny 32-entry perceptron with: "it is often the
case that a small subset of branch instruction addresses is responsible
for a disproportionately larger proportion of the total mispredictions
in a workload.  It is critical to keep the right branches in the
perceptron table".

This extension benchmark measures the concentration curve on the
transaction mix and verifies that the perceptron's replacement policy
actually captures hot mispredicting branches.
"""

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.stats import MispredictProfile
from repro.workloads import get_workload

from common import fmt, pct, print_table


def _run():
    profile = MispredictProfile()
    engine = FunctionalEngine(
        LookaheadBranchPredictor(z15_config()), profile=profile
    )
    engine.run_program(get_workload("transactions"), max_branches=12000,
                       warmup_branches=4000)
    predictor = engine.predictor
    perceptron_addresses = {
        entry.address
        for row in predictor.perceptron._rows
        for entry in row
        if entry is not None
    }
    return profile, perceptron_addresses


def test_mispredict_concentration(benchmark):
    profile, perceptron_addresses = benchmark.pedantic(_run, rounds=1,
                                                       iterations=1)

    rows = [
        [pct(fraction), pct(share), pct(fraction and share / fraction / 100)]
        for fraction, share in profile.concentration_curve()
    ]
    rows = [
        [pct(fraction), pct(share), fmt(share / fraction, 1) + "x"]
        for fraction, share in profile.concentration_curve()
    ]
    print_table(
        "Section V — misprediction concentration (transactions)",
        ["top fraction of branches", "share of mispredicts", "disproportion"],
        rows,
        paper_note="a small subset of branch addresses causes a "
        "disproportionately large share of mispredictions",
    )

    hot = profile.top(32)
    hot_addresses = {branch.address for branch in hot}
    captured = len(hot_addresses & perceptron_addresses)
    print_table(
        "perceptron targeting",
        ["metric", "value"],
        [
            ["perceptron entries", len(perceptron_addresses)],
            ["hot-32 branches held by perceptron", captured],
        ],
    )

    # Shape 1: disproportion — the top 10% of branches cause well over
    # 10% of mispredicts.
    assert profile.concentration(0.10) > 0.25
    assert profile.concentration(0.50) > 0.70
    # Shape 2: the perceptron's usefulness/protection replacement holds
    # mostly hot branches.
    assert captured >= min(8, len(perceptron_addresses))
