"""F10/F11 — Figures 10-11: the white-box verification methodology.

Figure 10: hardware-signal-driven models crosschecked against expect
values at checkpoints.  Figure 11: decoupled read-side and write-side
monitors around the DUT.  This benchmark runs the reproduced
environment both ways the paper's methodology promises:

* a healthy DUT passes a constrained-random campaign cleanly, and
* an injected install-path defect (the exact class the BTBP removal
  made dangerous: duplicate BTB1 entries) is caught close to the source.
"""

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.core.btb1 import InstallResult
from repro.verification import StimulusConstraints, VerificationEnvironment

from common import print_table


def _healthy_campaign():
    dut = LookaheadBranchPredictor(z15_config())
    env = VerificationEnvironment(
        dut, StimulusConstraints(seed=7), checkpoint_interval=400
    )
    return env.run(branches=4000, preload_entries=300)


def _inject_duplicate_defect(dut: LookaheadBranchPredictor) -> None:
    original_install = dut.btb1.install
    state = {"calls": 0}

    def broken_install(address, context, entry):
        state["calls"] += 1
        if state["calls"] % 11:
            return original_install(address, context, entry)
        base = address - address % 64
        entry.tag = dut.btb1.tag_of(base, context)
        entry.offset = address - base
        entry.line_base = base
        entry.context = context
        row = dut.btb1.row_of(base)
        way = dut.btb1._table.victim_way(row)
        dut.btb1._table.write(row, way, entry)
        result = InstallResult(installed=True, duplicate=False, row=row,
                               way=way)
        if dut.btb1.on_install is not None:
            dut.btb1.on_install(address=address, context=context,
                                entry=entry, result=result)
        return result

    dut.btb1.install = broken_install


def _buggy_campaign():
    dut = LookaheadBranchPredictor(z15_config())
    _inject_duplicate_defect(dut)
    env = VerificationEnvironment(
        dut,
        StimulusConstraints(seed=7, revisit_rate=0.9, address_span=0x4000),
        checkpoint_interval=400,
    )
    return env.run(branches=4000)


def test_verification_methodology(benchmark):
    def _run_both():
        return _healthy_campaign(), _buggy_campaign()

    healthy, buggy = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    checkers = sorted({f.checker for f in buggy.failures})
    print_table(
        "Figures 10/11 — white-box verification campaigns",
        ["campaign", "branches", "search txns", "install txns",
         "checkpoints", "failures"],
        [
            ["healthy DUT", healthy.branches_driven,
             healthy.search_transactions, healthy.install_transactions,
             healthy.checkpoints, len(healthy.failures)],
            ["injected duplicate-install defect", buggy.branches_driven,
             buggy.search_transactions, buggy.install_transactions,
             buggy.checkpoints, len(buggy.failures)],
        ],
        paper_note="hardware-signal-driven reference models + decoupled "
        "read/write checkers catch performance-class defects that pass "
        "architectural black-box checking",
    )
    print(f"defect flagged by checkers: {', '.join(checkers)}")

    assert healthy.clean, healthy.summary()
    assert not buggy.clean
    # The defect is localised by the write-side/checkpoint machinery.
    assert any(f.checker in ("write-side", "checkpoint", "invariant")
               for f in buggy.failures)
