"""X2 — design-choice ablations the paper calls out.

Sweeps for the design decisions sections III-V discuss qualitatively:

* weak filtering of TAGE predictions (on/off);
* GPV depth (9, the pre-z14 design, vs 17);
* perceptron weight virtualisation (on/off);
* completion delay (the prediction->update gap the GPQ bridges).
"""

import dataclasses

from repro.configs import z15_config
from repro.configs.predictor import PerceptronConfig, PhtConfig

from common import fmt, print_table, run_functional
from repro.workloads.generators import deep_history_program, pattern_program


def _weak_filter_ablation():
    """Weak filtering guards against cold/thrashy weak entries."""
    results = {}
    for filtered in (True, False):
        config = z15_config()
        pht = dataclasses.replace(config.pht)
        if not filtered:
            # A permanently confident weak counter disables filtering.
            pht.weak_threshold = 0
        config.pht = pht
        config.validate()
        stats = run_functional(config, "transactions", branches=8000,
                               warmup=4000)
        results[filtered] = stats.mpki
    return results


def _gpv_depth_ablation():
    """The z14 depth change: 9 -> 17 taken branches of history."""
    results = {}
    for depth in (9, 17):
        config = z15_config()
        config.gpv_depth = depth
        if depth < 17:
            config.pht = PhtConfig(tage=True, rows=512, ways=8,
                                   short_history=5, long_history=9)
            config.ctb = dataclasses.replace(config.ctb, history=9)
            config.perceptron = dataclasses.replace(
                config.perceptron, weight_count=9
            )
        config.validate()
        stats = run_functional(config, deep_history_program(noise_depth=12),
                               branches=8000, warmup=4000)
        results[depth] = stats.mpki
    return results


def _virtualization_ablation():
    """2:1 virtualisation retargets dead perceptron weights."""
    results = {}
    for virtualized in (True, False):
        config = z15_config()
        perceptron = dataclasses.replace(config.perceptron)
        if not virtualized:
            perceptron.virtualization_age = 10**9  # never retarget
        # Make the perceptron the only deep predictor so its quality
        # shows: shrink the PHT out of relevance.
        config.perceptron = perceptron
        config.pht = PhtConfig(tage=False, rows=8, ways=1, short_history=9,
                               long_history=9)
        config.validate()
        stats = run_functional(config, deep_history_program(noise_depth=12),
                               branches=8000, warmup=4000)
        results[virtualized] = stats.mpki
    return results


def _completion_delay_sweep():
    results = {}
    for delay in (0, 12, 32, 64):
        config = z15_config()
        config.completion_delay = delay
        config.validate()
        stats = run_functional(
            config, pattern_program([[True] * 20 + [False] * 20]),
            branches=6000, warmup=0,
        )
        results[delay] = stats.mispredicted_branches
    return results


def test_design_choice_ablations(benchmark):
    def _run_all():
        return (
            _weak_filter_ablation(),
            _gpv_depth_ablation(),
            _virtualization_ablation(),
            _completion_delay_sweep(),
        )

    weak, gpv, virtualization, delays = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )

    print_table(
        "Ablations — design choices (sections III-V)",
        ["design choice", "setting", "metric", "value"],
        [
            ["TAGE weak filtering", "enabled", "MPKI", fmt(weak[True])],
            ["TAGE weak filtering", "disabled", "MPKI", fmt(weak[False])],
            ["GPV depth", "9 (pre-z14)", "MPKI (deep-history)", fmt(gpv[9])],
            ["GPV depth", "17 (z14+)", "MPKI (deep-history)", fmt(gpv[17])],
            ["perceptron virtualisation", "enabled",
             "MPKI (deep-history, PHT crippled)", fmt(virtualization[True])],
            ["perceptron virtualisation", "disabled",
             "MPKI (deep-history, PHT crippled)", fmt(virtualization[False])],
        ]
        + [
            ["completion delay", str(delay), "mispredicts (flip pattern)",
             count]
            for delay, count in delays.items()
        ],
        paper_note="each knob exists for a reason: filtering cold weak "
        "entries, deep path history, retargeting dead weights, and "
        "bridging the prediction->update gap",
    )

    # GPV depth: deep correlations need the 17-branch history.
    assert gpv[17] < gpv[9]
    # Weak filtering: within noise on this mix, never much worse.
    assert weak[True] <= weak[False] * 1.15 + 0.5
    # Longer completion delays cost mispredicts (motivates the overlays).
    assert delays[64] >= delays[0]
