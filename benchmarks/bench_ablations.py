"""X2 — design-choice ablations the paper calls out.

Sweeps for the design decisions sections III-V discuss qualitatively:

* weak filtering of TAGE predictions (on/off);
* GPV depth (9, the pre-z14 design, vs 17);
* perceptron weight virtualisation (on/off);
* completion delay (the prediction->update gap the GPQ bridges).
"""

import dataclasses

from repro.configs import z15_config
from repro.configs.predictor import PerceptronConfig, PhtConfig

from common import fmt, print_table, sweep_functional
from repro.workloads.generators import deep_history_program, pattern_program


def _weak_filter_config(filtered):
    """Weak filtering guards against cold/thrashy weak entries."""
    config = z15_config()
    pht = dataclasses.replace(config.pht)
    if not filtered:
        # A permanently confident weak counter disables filtering.
        pht.weak_threshold = 0
    config.pht = pht
    return config.validate()


def _gpv_depth_config(depth):
    """The z14 depth change: 9 -> 17 taken branches of history."""
    config = z15_config()
    config.gpv_depth = depth
    if depth < 17:
        config.pht = PhtConfig(tage=True, rows=512, ways=8,
                               short_history=5, long_history=9)
        config.ctb = dataclasses.replace(config.ctb, history=9)
        config.perceptron = dataclasses.replace(
            config.perceptron, weight_count=9
        )
    return config.validate()


def _virtualization_config(virtualized):
    """2:1 virtualisation retargets dead perceptron weights."""
    config = z15_config()
    perceptron = dataclasses.replace(config.perceptron)
    if not virtualized:
        perceptron.virtualization_age = 10**9  # never retarget
    # Make the perceptron the only deep predictor so its quality
    # shows: shrink the PHT out of relevance.
    config.perceptron = perceptron
    config.pht = PhtConfig(tage=False, rows=8, ways=1, short_history=9,
                           long_history=9)
    return config.validate()


def _completion_delay_config(delay):
    config = z15_config()
    config.completion_delay = delay
    return config.validate()


def _run_all():
    # Every ablation point is one independent cell; the whole design
    # sweep fans out at once over worker processes.
    jobs = []
    for filtered in (True, False):
        jobs.append((f"weak/{filtered}", _weak_filter_config(filtered),
                     "transactions"))
    for depth in (9, 17):
        jobs.append((f"gpv/{depth}", _gpv_depth_config(depth),
                     deep_history_program(noise_depth=12)))
    for virtualized in (True, False):
        jobs.append((f"virt/{virtualized}",
                     _virtualization_config(virtualized),
                     deep_history_program(noise_depth=12)))
    for delay in (0, 12, 32, 64):
        jobs.append((f"delay/{delay}", _completion_delay_config(delay),
                     pattern_program([[True] * 20 + [False] * 20]),
                     {"branches": 6000, "warmup": 0}))
    stats = sweep_functional(jobs, branches=8000, warmup=4000)
    weak = {f: stats[f"weak/{f}"].mpki for f in (True, False)}
    gpv = {d: stats[f"gpv/{d}"].mpki for d in (9, 17)}
    virtualization = {v: stats[f"virt/{v}"].mpki for v in (True, False)}
    delays = {
        d: stats[f"delay/{d}"].mispredicted_branches for d in (0, 12, 32, 64)
    }
    return weak, gpv, virtualization, delays


def test_design_choice_ablations(benchmark):
    weak, gpv, virtualization, delays = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )

    print_table(
        "Ablations — design choices (sections III-V)",
        ["design choice", "setting", "metric", "value"],
        [
            ["TAGE weak filtering", "enabled", "MPKI", fmt(weak[True])],
            ["TAGE weak filtering", "disabled", "MPKI", fmt(weak[False])],
            ["GPV depth", "9 (pre-z14)", "MPKI (deep-history)", fmt(gpv[9])],
            ["GPV depth", "17 (z14+)", "MPKI (deep-history)", fmt(gpv[17])],
            ["perceptron virtualisation", "enabled",
             "MPKI (deep-history, PHT crippled)", fmt(virtualization[True])],
            ["perceptron virtualisation", "disabled",
             "MPKI (deep-history, PHT crippled)", fmt(virtualization[False])],
        ]
        + [
            ["completion delay", str(delay), "mispredicts (flip pattern)",
             count]
            for delay, count in delays.items()
        ],
        paper_note="each knob exists for a reason: filtering cold weak "
        "entries, deep path history, retargeting dead weights, and "
        "bridging the prediction->update gap",
    )

    # GPV depth: deep correlations need the 17-branch history.
    assert gpv[17] < gpv[9]
    # Weak filtering: within noise on this mix, never much worse.
    assert weak[True] <= weak[False] * 1.15 + 0.5
    # Longer completion delays cost mispredicts (motivates the overlays).
    assert delays[64] >= delays[0]
