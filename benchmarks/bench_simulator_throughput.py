"""X6 — simulator throughput (the library's own performance).

Not a paper experiment: measures the model's simulation speed so
regressions in the hot paths (the search walk, figure-8 selection, the
update pipeline) are caught.  Uses real pytest-benchmark rounds, unlike
the reproduction benches which run once and print tables.
"""

import pytest

from repro.configs import z15_config
from repro.engine import (
    BACKENDS,
    CycleEngine,
    FunctionalEngine,
    SweepCell,
    create_predictor,
    run_cells,
)
from repro.workloads import get_workload

BRANCHES = 3000
CYCLE_BRANCHES = 2000
SWEEP_CELLS = 8
SWEEP_BRANCHES = 1500


def _simulate(program_name: str, backend: str = "object",
              engine_mode: str = "reference") -> float:
    engine = FunctionalEngine(create_predictor(z15_config(), backend),
                              engine_mode=engine_mode)
    stats = engine.run_program(get_workload(program_name),
                               max_branches=BRANCHES, warmup_branches=0)
    return stats.mpki


def _simulate_cycles(program_name: str, backend: str = "object") -> int:
    engine = CycleEngine(create_predictor(z15_config(), backend))
    stats = engine.run_program(get_workload(program_name),
                               max_branches=CYCLE_BRANCHES)
    return stats.cycles


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_functional_throughput(benchmark, workload, backend):
    result = benchmark.pedantic(
        _simulate, args=(workload, backend), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert result >= 0.0
    # Floor: the hot-path optimisation pass roughly doubled the engine's
    # speed, so the regression floor doubles too — 6K branches/second,
    # which still leaves ~1.5-2x headroom for machine noise below the
    # slowest numbers observed on a loaded box.  The array backend gets
    # the same floor: it must never fall behind the object model enough
    # to matter, or it has no reason to exist.
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\n{workload} [{backend}]: "
          f"{branches_per_second:,.0f} branches/second")
    assert branches_per_second > 6000


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_fast_mode_throughput(benchmark, workload, backend):
    # Warm the process-wide kernel cache outside the timed rounds, so
    # the bench measures steady state (the one-off compile is ~the cost
    # of a few thousand simulated branches).
    _simulate(workload, backend, "fast")
    result = benchmark.pedantic(
        _simulate, args=(workload, backend, "fast"), rounds=3,
        iterations=1, warmup_rounds=1,
    )
    assert result >= 0.0
    # The specialized kernels target >= 1.5x the reference interpreter;
    # the committed floor leaves the same noise headroom as above
    # (observed ~27-31K branches/s on the baseline box).
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\n{workload} [{backend}/fast]: "
          f"{branches_per_second:,.0f} branches/second")
    assert branches_per_second > 9000


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_cycle_throughput(benchmark, workload, backend):
    result = benchmark.pedantic(
        _simulate_cycles, args=(workload, backend), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert result > 0
    # The cycle engine models the search pipe cycle by cycle, so it is
    # legitimately slower than the functional engine; the floor only
    # catches order-of-magnitude regressions.
    seconds = benchmark.stats.stats.mean
    branches_per_second = CYCLE_BRANCHES / seconds
    print(f"\n{workload} (cycle) [{backend}]: "
          f"{branches_per_second:,.0f} branches/second")
    assert branches_per_second > 1000


def _sweep_cells():
    # One shared Program across every cell: the serialize-once registry
    # should collapse the whole grid's payload traffic to two blobs
    # (program + config).
    program = get_workload("compute-kernel", 1)
    config = z15_config()
    return [
        SweepCell(label="warm", config=config, workload=program,
                  seed=seed, branches=SWEEP_BRANCHES, warmup=500)
        for seed in range(1, SWEEP_CELLS + 1)
    ]


def _run_warm_sweep(workers: int, chunk_size: int) -> dict:
    stats: dict = {}
    results = run_cells(_sweep_cells(), workers=workers,
                        chunk_size=chunk_size, pool_stats=stats)
    assert all(r.stats is not None for r in results)
    return stats


@pytest.mark.parametrize("workers,chunk_size", [(1, 1), (2, 4)])
def test_warm_pool_sweep_throughput(benchmark, workers, chunk_size):
    stats = benchmark.pedantic(
        _run_warm_sweep, args=(workers, chunk_size), rounds=3,
        iterations=1, warmup_rounds=1,
    )
    seconds = benchmark.stats.stats.mean
    branches = SWEEP_CELLS * (SWEEP_BRANCHES + 500)
    print(f"\nwarm sweep [workers={workers} chunk={chunk_size} "
          f"mode={stats['mode']}]: {branches / seconds:,.0f} branches/second")
    # Serialize-once microbench contract: however the sweep is fanned
    # out, the parent pickles each distinct payload object exactly once
    # (one Program + one config here), and each worker process receives
    # the blob cache exactly once — never once per cell or per chunk.
    assert stats["parent_pickle_calls"] == 2
    assert stats["payload_blobs"] == 2
    for pid, worker in stats["workers"].items():
        assert worker["installs"] == 1, (
            f"worker {pid} re-received payloads {worker['installs']} times"
        )
    # Floor only guards order-of-magnitude regressions: pool spawn costs
    # dominate a grid this small on a loaded 1-core box.
    assert branches / seconds > 1500
