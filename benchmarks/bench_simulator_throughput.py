"""X6 — simulator throughput (the library's own performance).

Not a paper experiment: measures the model's simulation speed so
regressions in the hot paths (the search walk, figure-8 selection, the
update pipeline) are caught.  Uses real pytest-benchmark rounds, unlike
the reproduction benches which run once and print tables.
"""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.workloads import get_workload

BRANCHES = 3000


def _simulate(program_name: str) -> float:
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    stats = engine.run_program(get_workload(program_name),
                               max_branches=BRANCHES, warmup_branches=0)
    return stats.mpki


@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_functional_throughput(benchmark, workload):
    result = benchmark.pedantic(
        _simulate, args=(workload,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert result >= 0.0
    # Floor: the functional engine must stay above ~3K branches/second
    # (the repro band's "slow for large footprints" caveat, bounded).
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\n{workload}: {branches_per_second:,.0f} branches/second")
    assert branches_per_second > 3000
