"""X6 — simulator throughput (the library's own performance).

Not a paper experiment: measures the model's simulation speed so
regressions in the hot paths (the search walk, figure-8 selection, the
update pipeline) are caught.  Uses real pytest-benchmark rounds, unlike
the reproduction benches which run once and print tables.
"""

import pytest

from repro.configs import z15_config
from repro.engine import BACKENDS, CycleEngine, FunctionalEngine, create_predictor
from repro.workloads import get_workload

BRANCHES = 3000
CYCLE_BRANCHES = 2000


def _simulate(program_name: str, backend: str = "object") -> float:
    engine = FunctionalEngine(create_predictor(z15_config(), backend))
    stats = engine.run_program(get_workload(program_name),
                               max_branches=BRANCHES, warmup_branches=0)
    return stats.mpki


def _simulate_cycles(program_name: str, backend: str = "object") -> int:
    engine = CycleEngine(create_predictor(z15_config(), backend))
    stats = engine.run_program(get_workload(program_name),
                               max_branches=CYCLE_BRANCHES)
    return stats.cycles


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_functional_throughput(benchmark, workload, backend):
    result = benchmark.pedantic(
        _simulate, args=(workload, backend), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert result >= 0.0
    # Floor: the hot-path optimisation pass roughly doubled the engine's
    # speed, so the regression floor doubles too — 6K branches/second,
    # which still leaves ~1.5-2x headroom for machine noise below the
    # slowest numbers observed on a loaded box.  The array backend gets
    # the same floor: it must never fall behind the object model enough
    # to matter, or it has no reason to exist.
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\n{workload} [{backend}]: "
          f"{branches_per_second:,.0f} branches/second")
    assert branches_per_second > 6000


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_cycle_throughput(benchmark, workload, backend):
    result = benchmark.pedantic(
        _simulate_cycles, args=(workload, backend), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert result > 0
    # The cycle engine models the search pipe cycle by cycle, so it is
    # legitimately slower than the functional engine; the floor only
    # catches order-of-magnitude regressions.
    seconds = benchmark.stats.stats.mean
    branches_per_second = CYCLE_BRANCHES / seconds
    print(f"\n{workload} (cycle) [{backend}]: "
          f"{branches_per_second:,.0f} branches/second")
    assert branches_per_second > 1000
