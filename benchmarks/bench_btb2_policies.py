"""S3 — Section III: multi-level BTB policies.

Validated behaviours: the 3-successive-empty-search trigger (sweeping
the threshold shows the chosen point), proactive context-switch priming,
and the semi-inclusive periodic-refresh design versus the semi-exclusive
victim-writeback design.
"""

import dataclasses

from repro.configs import z15_config
from repro.configs.predictor import Btb1Config, Btb2Config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.workloads import InterleavedRun

from common import fmt, pct, print_table, run_functional
from repro.workloads.generators import large_footprint_program


def _ring(name="policies-ring"):
    return large_footprint_program(block_count=256, taken_bias=0.4, seed=7,
                                   name=name)


def _pressured_config(threshold=None, inclusive=True, with_btb2=True):
    config = z15_config()
    config.btb1 = Btb1Config(rows=64, ways=4, policy="lru")
    if with_btb2:
        btb2 = dataclasses.replace(config.btb2)
        if threshold is not None:
            btb2.empty_search_threshold = threshold
        btb2.inclusive = inclusive
        config.btb2 = btb2
    else:
        config.btb2 = None
    return config.validate()


def _run_threshold_sweep():
    sweep = {}
    for threshold in (1, 3, 6):
        stats = run_functional(_pressured_config(threshold=threshold),
                               _ring(), branches=8000, warmup=4000)
        sweep[threshold] = stats
    return sweep


def _run_context_priming():
    """Two contexts alternating: with proactive context-switch searches
    the predictor re-primes after each switch."""
    programs = [_ring("ctx-a"), _ring("ctx-b")]
    run = InterleavedRun(programs, quantum_branches=1500, seed=2)
    engine = FunctionalEngine(LookaheadBranchPredictor(_pressured_config()))
    stats = engine.run_interleaved(run, total_branches=12000)
    context_searches = engine.predictor.btb2.searches_context_trigger
    return stats, context_searches


def _run_inclusion_comparison():
    inclusive = run_functional(_pressured_config(inclusive=True), _ring(),
                               branches=8000, warmup=4000)
    exclusive = run_functional(_pressured_config(inclusive=False), _ring(),
                               branches=8000, warmup=4000)
    return inclusive, exclusive


def test_btb2_policies(benchmark):
    def _run_all():
        return (_run_threshold_sweep(), _run_context_priming(),
                _run_inclusion_comparison())

    sweep, (ctx_stats, context_searches), (inclusive, exclusive) = \
        benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = [
        [f"empty-search threshold {threshold}",
         stats.btb2_triggers, pct(stats.dynamic_coverage), fmt(stats.mpki)]
        for threshold, stats in sweep.items()
    ]
    rows.append(["context-switch priming (2 contexts)",
                 context_searches, pct(ctx_stats.dynamic_coverage),
                 fmt(ctx_stats.mpki)])
    rows.append(["semi-inclusive + periodic refresh",
                 inclusive.btb2_triggers, pct(inclusive.dynamic_coverage),
                 fmt(inclusive.mpki)])
    rows.append(["semi-exclusive (victim writeback)",
                 exclusive.btb2_triggers, pct(exclusive.dynamic_coverage),
                 fmt(exclusive.mpki)])
    print_table(
        "Section III — BTB2 trigger/inclusion policies (undersized BTB1)",
        ["policy point", "BTB2 searches", "coverage", "MPKI"],
        rows,
        paper_note="content assumed missing after 3 empty searches; "
        "context switches proactively prime; z15 is semi-inclusive with "
        "periodic refresh",
    )

    # Shape: a more eager threshold fires more searches.
    assert sweep[1].btb2_triggers >= sweep[3].btb2_triggers >= \
        sweep[6].btb2_triggers
    # Context switches fired proactive searches (one per switch).
    assert context_searches >= 7
    # Both inclusion designs sustain coverage under pressure.
    assert inclusive.dynamic_coverage > 0.15
    assert exclusive.dynamic_coverage > 0.15
