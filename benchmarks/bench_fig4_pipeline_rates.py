"""F4 — Figure 4: the 6-cycle b0..b5 prediction pipeline rates.

The paper: without CPRED acceleration the design predicts a taken branch
every 5 cycles in single-thread mode and every 6 cycles in SMT2 (port
sharing).  This benchmark drives a taken-branch-per-line microkernel —
prediction throughput is the only bottleneck — and measures achieved
cycles per taken branch.
"""

from repro.configs import TimingConfig, z15_config
from repro.configs.predictor import CpredConfig
from repro.isa.instructions import BranchKind
from repro.workloads.behaviors import AlwaysTaken
from repro.workloads.program import CodeBuilder

from common import fmt, print_table, run_cycle


def taken_chain_program(links: int = 16, stride: int = 64):
    """A ring of unconditional taken branches, one per 64B line."""
    builder = CodeBuilder(0x10000, name="taken-chain")
    addresses = [0x10000 + index * stride for index in range(links)]
    for index, address in enumerate(addresses):
        builder.jump_to(address)
        builder.branch(
            BranchKind.UNCONDITIONAL_RELATIVE,
            target=addresses[(index + 1) % links],
            behavior=AlwaysTaken(),
        )
    return builder.build(entry_point=addresses[0])


def _no_cpred_config():
    config = z15_config()
    config.cpred = CpredConfig(enabled=False)
    return config.validate()


def _run_all():
    branches = 4000
    results = {}
    results["ST, no CPRED"] = run_cycle(
        _no_cpred_config(), taken_chain_program(), branches=branches
    )
    results["SMT2, no CPRED"] = run_cycle(
        _no_cpred_config(), taken_chain_program(), branches=branches,
        smt2=True,
    )
    return results


def test_pipeline_taken_rates(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    timing = TimingConfig()

    rows = []
    measured = {}
    for label, stats in results.items():
        cycles_per_taken = stats.cycles / stats.taken_redirects
        measured[label] = cycles_per_taken
        expected = (
            timing.taken_interval_st
            if label.startswith("ST")
            else timing.taken_interval_smt2
        )
        rows.append([label, stats.taken_redirects,
                     fmt(cycles_per_taken, 2), expected])
    print_table(
        "Figure 4 — taken-branch prediction rate (b0..b5 pipeline)",
        ["mode", "taken redirects", "cycles/taken (measured)",
         "cycles/taken (paper)"],
        rows,
        paper_note="6-cycle search pipeline; taken branch every 5 cycles "
        "(ST) / 6 cycles (SMT2) without CPRED",
    )

    assert abs(measured["ST, no CPRED"] - timing.taken_interval_st) < 1.0
    assert abs(measured["SMT2, no CPRED"] - timing.taken_interval_smt2) < 1.0
    assert measured["SMT2, no CPRED"] > measured["ST, no CPRED"]
