"""S5 — Section IV/V: the speculative BHT/PHT overlays.

The paper: because of the "large gap in time between when branches are
predicted and when they are updated", weak counter states would be
re-read stale; the SBHT/SPHT track weak/mispredicted occurrences so
in-flight re-encounters see the corrected direction.  This benchmark
sweeps the completion delay on a direction-flipping branch and compares
mispredicts with and without the overlays.
"""

from repro.configs import z15_config
from repro.configs.predictor import SpeculativeOverlayConfig

from common import fmt, print_table, run_functional
from repro.workloads.generators import pattern_program


def _flip_program():
    return pattern_program([[True] * 30 + [False] * 30], name="flips")


def _run(delay, overlays):
    config = z15_config()
    config.completion_delay = delay
    if not overlays:
        config.speculative = SpeculativeOverlayConfig(enabled=False)
    config.validate()
    return run_functional(config, _flip_program(), branches=4000, warmup=0)


def _run_sweep():
    results = []
    for delay in (0, 8, 24, 48):
        with_overlays = _run(delay, True)
        without = _run(delay, False)
        results.append((delay, with_overlays, without))
    return results


def test_speculative_overlays(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = []
    for delay, with_overlays, without in results:
        rows.append([
            delay,
            with_overlays.mispredicted_branches,
            without.mispredicted_branches,
            without.mispredicted_branches - with_overlays.mispredicted_branches,
        ])
    print_table(
        "Section IV/V — SBHT/SPHT vs completion delay "
        "(direction-flipping branch)",
        ["completion delay (branches)", "mispredicts (with SBHT/SPHT)",
         "mispredicts (without)", "saved"],
        rows,
        paper_note="speculative overlays strengthen weak predictions and "
        "correct mispredicted ones before the delayed updates land",
    )

    # Shape: at a zero delay the overlays are irrelevant; with realistic
    # delays they save mispredicts, increasingly so as the gap grows.
    zero_delay = results[0]
    assert abs(zero_delay[1].mispredicted_branches
               - zero_delay[2].mispredicted_branches) <= 8
    for delay, with_overlays, without in results[1:]:
        assert with_overlays.mispredicted_branches <= \
            without.mispredicted_branches
    long_delay = results[-1]
    assert long_delay[1].mispredicted_branches < \
        long_delay[2].mispredicted_branches
