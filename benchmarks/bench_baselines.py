"""B1 — Baseline comparison (section II.D's academic context).

The paper situates the design against decades of direction/target
prediction literature.  This benchmark compares the z15 model against
static heuristics, bimodal, gshare and an L-TAGE reference across the
workload suite.
"""

from repro.baselines import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    LTagePredictor,
    StaticBtfntPredictor,
)
from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.workloads import get_workload

from common import fmt, pct, print_table

WORKLOADS = ["compute-kernel", "patterned", "correlated", "services",
             "dispatch", "transactions"]

PREDICTORS = [
    ("always-taken", AlwaysTakenPredictor),
    ("static-btfnt", StaticBtfntPredictor),
    ("bimodal", BimodalPredictor),
    ("gshare", GsharePredictor),
    ("l-tage", LTagePredictor),
    ("z15 model", lambda: LookaheadBranchPredictor(z15_config())),
]


def _run_all():
    table = {}
    for label, factory in PREDICTORS:
        table[label] = {}
        for workload in WORKLOADS:
            engine = FunctionalEngine(factory())
            stats = engine.run_program(get_workload(workload),
                                       max_branches=6000,
                                       warmup_branches=3000)
            table[label][workload] = stats
    return table


def test_baseline_comparison(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    averages = {}
    for label in table:
        mpkis = [table[label][w].mpki for w in WORKLOADS]
        averages[label] = sum(mpkis) / len(mpkis)
        rows.append([label] + [fmt(m, 2) for m in mpkis]
                    + [fmt(averages[label], 2)])
    print_table(
        "Baselines — MPKI by predictor and workload",
        ["predictor"] + WORKLOADS + ["avg"],
        rows,
        paper_note="the composed z15 design must dominate the classic "
        "single-mechanism baselines",
    )

    # Shape: direction-history predictors beat static/bimodal; the z15
    # model is the best or tied-best on average.
    assert averages["gshare"] < averages["bimodal"]
    assert averages["bimodal"] < averages["always-taken"]
    assert averages["z15 model"] <= averages["gshare"] * 1.05
    assert averages["z15 model"] <= averages["bimodal"]
    # On the target-heavy workloads the z15 auxiliaries matter.
    assert table["z15 model"]["dispatch"].mpki <= \
        table["gshare"]["dispatch"].mpki
    assert table["z15 model"]["services"].mpki <= \
        table["bimodal"]["services"].mpki
