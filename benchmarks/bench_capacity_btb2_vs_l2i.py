"""S2A — Section II.A: capacity — BTB sweep and the BTB2's reach.

The paper argues a 4MB L2I implies ~128K trackable branches, so "there
is significant value to large branch meta data": the BTB1 alone cannot
cover large warm footprints, and the BTB2 restores coverage.  This
benchmark sweeps BTB1 capacity against a fixed footprint, with and
without the BTB2 behind it.
"""

from repro.configs import z15_config
from repro.configs.predictor import Btb1Config

from common import fmt, pct, print_table, run_functional
from repro.workloads.generators import large_footprint_program


SWEEP = [
    ("64 x 4 = 256", 64, 4),
    ("128 x 4 = 512", 128, 4),
    ("256 x 4 = 1K", 256, 4),
    ("512 x 4 = 2K", 512, 4),
]


def _ring():
    return large_footprint_program(block_count=256, taken_bias=0.4, seed=7,
                                   name="capacity-ring")


def _config(rows, ways, with_btb2):
    config = z15_config()
    config.btb1 = Btb1Config(rows=rows, ways=ways, policy="lru")
    if not with_btb2:
        config.btb2 = None
    return config.validate()


def _run_sweep():
    results = []
    for label, rows, ways in SWEEP:
        with_btb2 = run_functional(_config(rows, ways, True), _ring(),
                                   branches=8000, warmup=4000)
        without = run_functional(_config(rows, ways, False), _ring(),
                                 branches=8000, warmup=4000)
        results.append((label, with_btb2, without))
    return results


def test_btb_capacity_sweep(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = []
    for label, with_btb2, without in results:
        rows.append([
            label,
            pct(without.dynamic_coverage), fmt(without.mpki),
            pct(with_btb2.dynamic_coverage), fmt(with_btb2.mpki),
        ])
    print_table(
        "Section II.A — BTB1 capacity sweep vs a ~1K-branch footprint",
        ["BTB1 size", "coverage (no BTB2)", "MPKI (no BTB2)",
         "coverage (+BTB2)", "MPKI (+BTB2)"],
        rows,
        paper_note="large warm footprints need large branch metadata; "
        "the BTB2 acts as a level-2 cache for the BTB1",
    )

    # Shape 1: without the BTB2, coverage grows with BTB1 capacity.
    coverage_alone = [without.dynamic_coverage for _, _, without in results]
    assert coverage_alone[-1] > coverage_alone[0]
    # Shape 2: the BTB2 helps most when the BTB1 is undersized.
    small_gain = results[0][1].dynamic_coverage - results[0][2].dynamic_coverage
    large_gain = results[-1][1].dynamic_coverage - results[-1][2].dynamic_coverage
    assert small_gain > large_gain
    # Shape 3: with enough BTB1 capacity the footprint is well covered
    # (never-taken branches are never installed, bounding coverage).
    assert results[-1][1].dynamic_coverage > 0.7
    # Shape 4: MPKI improves with capacity (the headline capacity claim).
    assert results[-1][1].mpki < results[0][2].mpki
