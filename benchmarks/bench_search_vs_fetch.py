"""S4 — Section IV: the search/fetch bandwidth race.

The paper: "the branch prediction search process is pipelined and its
search rate of 64 bytes per cycle is double the instruction fetch rate
of 32 bytes per cycle.  This helps keep branch prediction ahead of
instruction fetching."  With strict dispatch synchronisation (since
z13), dispatch waits when prediction falls behind.  This benchmark
measures how often dispatch actually waited on the BPL versus on fetch.
"""

from repro.configs import TimingConfig, z15_config

from common import fmt, pct, print_table, run_cycle
from repro.workloads.generators import large_footprint_program


def _run():
    program = large_footprint_program(block_count=512, taken_bias=0.35,
                                      seed=11, name="race-ring")
    return run_cycle(z15_config(), program, branches=8000)


def test_search_ahead_of_fetch(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    timing = TimingConfig()

    bpl_share = stats.bpl_wait_cycles / stats.cycles
    fetch_share = stats.fetch_wait_cycles / stats.cycles
    print_table(
        "Section IV — dispatch waits: prediction vs fetch",
        ["metric", "value"],
        [
            ["search bandwidth (B/cycle)", timing.search_bytes_per_cycle],
            ["fetch bandwidth (B/cycle)", timing.fetch_bytes_per_cycle],
            ["total cycles", stats.cycles],
            ["dispatch waits on BPL", f"{stats.bpl_wait_cycles}"
             f" ({pct(bpl_share)})"],
            ["dispatch waits on fetch", f"{stats.fetch_wait_cycles}"
             f" ({pct(fetch_share)})"],
            ["CPI", fmt(stats.cpi, 3)],
        ],
        paper_note="the 2x search-over-fetch bandwidth keeps prediction "
        "ahead; strict synchronisation makes any shortfall visible as a "
        "dispatch wait",
    )

    # Shape: prediction stays ahead — BPL waits are a small share of
    # total time (well under the fetch-side waits plus restarts).
    assert bpl_share < 0.25
    assert stats.bpl_wait_cycles < stats.restart_cycles
