"""Benchmark harness configuration.

Each benchmark prints the table/figure it reproduces; pytest captures
that output unless run with -s, so every table is also appended to
``benchmarks/results/latest.txt`` (truncated here at session start).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import common  # noqa: E402


def pytest_sessionstart(session):
    os.makedirs(os.path.dirname(common.RESULTS_PATH), exist_ok=True)
    with open(common.RESULTS_PATH, "w") as stream:
        stream.write("# reproduced tables/figures, one per benchmark\n")
