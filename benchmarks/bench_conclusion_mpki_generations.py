"""C1 — Conclusion: MPKI across generations.

The paper's headline: "On common LSPR workloads, the average number of
mispredicted branches per thousand instructions decreased 9.6% between
the z14 and z13, and another 25% between the z15 and z14."

This benchmark runs the generation presets over the synthetic LSPR-like
suite and reports the measured average-MPKI deltas next to the paper's.
Absolute percentages differ (the workloads are synthetic, the z13/z14
structure sizes are interpolated, and the paper's LSPR weighting is
unknown); the required shape is a monotone MPKI decrease with every
generation contributing, and a large cumulative z13 -> z15 gain.
"""

from repro.configs import GENERATIONS

from common import fmt, print_table, run_functional
from repro.workloads.generators import large_footprint_program

#: Workload -> (builder, measured branches, warmup branches).  The
#: capacity point uses a ring sized between the z14 and z15 BTB1s so the
#: generation growth shows (the paper's "large instruction footprint"
#: regime).
SUITE = {
    "transactions": (lambda: "transactions", 8000, 4000),
    "correlated": (lambda: "correlated", 8000, 4000),
    "footprint-xl": (
        lambda: large_footprint_program(block_count=4096, taken_bias=0.4,
                                        seed=7, name="footprint-xl"),
        16000,
        40000,
    ),
    "services": (lambda: "services", 8000, 4000),
    "patterned": (lambda: "patterned", 8000, 4000),
    "dispatch": (lambda: "dispatch", 8000, 4000),
}

PAPER_IMPROVEMENT = {"z14": 9.6, "z15": 25.0}


def _run_all():
    averages = {}
    per_workload = {}
    for name, (factory, _info) in GENERATIONS.items():
        total = 0.0
        per_workload[name] = {}
        for workload, (builder, branches, warmup) in SUITE.items():
            stats = run_functional(factory(), builder(), branches=branches,
                                   warmup=warmup)
            per_workload[name][workload] = stats.mpki
            total += stats.mpki
        averages[name] = total / len(SUITE)
    return averages, per_workload


def test_conclusion_generation_mpki(benchmark):
    averages, per_workload = benchmark.pedantic(_run_all, rounds=1,
                                                iterations=1)

    names = list(averages)
    rows = []
    previous = None
    for name in names:
        average = averages[name]
        if previous is None:
            improvement = "-"
        else:
            improvement = fmt(100 * (1 - average / averages[previous]), 1) + "%"
        paper = PAPER_IMPROVEMENT.get(name)
        rows.append([
            name,
            fmt(average, 3),
            improvement,
            f"{paper}%" if paper is not None else "-",
        ])
        previous = name
    print_table(
        "Conclusion — average MPKI across the synthetic LSPR-like suite",
        ["generation", "avg MPKI", "improvement vs prior", "paper"],
        rows,
        paper_note="MPKI decreased 9.6% z13->z14 and another 25% z14->z15 "
        "on LSPR workloads",
    )
    workloads = list(SUITE)
    detail = [
        [name] + [fmt(per_workload[name][w], 2) for w in workloads]
        for name in names
    ]
    print_table("per-workload MPKI", ["generation"] + workloads, detail)

    # Shape: monotone decrease across all four generations; the modern
    # designs improve substantially over z13 in total.
    assert averages["z13"] <= averages["zEC12"]
    assert averages["z14"] < averages["z13"]
    assert averages["z15"] < averages["z14"]
    assert averages["z15"] < 0.75 * averages["z13"]
