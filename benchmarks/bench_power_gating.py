"""X3 — §IV/VI: CPRED power gating of auxiliary structures.

"As in z14, the z15 CPRED continues to predict which branch prediction
structures need to be powered up in the target stream" and "If the
bidirectional state or multi-target state is not set, the PHT,
perceptron and CTB are subject to power down via the CPRED."

This benchmark counts auxiliary-structure accesses (a power proxy) with
and without the CPRED's power prediction, on a workload where most
streams never need the auxiliaries.
"""

import dataclasses

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.workloads.generators import large_footprint_program

from common import fmt, print_table


def _run(power_gating: bool):
    config = z15_config()
    if not power_gating:
        # CPRED still accelerates but powers everything (mask all-on) —
        # emulated by disabling the gate checks via an all-needs mask:
        # simplest faithful toggle is disabling CPRED's gating by
        # marking every trained stream as needing everything.
        config = z15_config()
    predictor = LookaheadBranchPredictor(config)
    if not power_gating:
        predictor.cpred.allows_power = lambda lookup, bit: True
    program = large_footprint_program(block_count=512, taken_bias=0.4,
                                      seed=7, name="power-ring")
    engine = FunctionalEngine(predictor)
    stats = engine.run_program(program, max_branches=10000,
                               warmup_branches=5000)
    accesses = (
        predictor.tage.lookups
        + predictor.perceptron.lookups
        + predictor.ctb.lookups
    )
    return stats, predictor, accesses


def test_cpred_power_gating(benchmark):
    def _run_both():
        return _run(True), _run(False)

    (gated_stats, gated_predictor, gated_accesses), (
        open_stats, _open_predictor, open_accesses
    ) = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    total_branches = gated_stats.branches
    print_table(
        "Section IV/VI — CPRED power gating (aux accesses as power proxy)",
        ["configuration", "aux accesses", "per 1K branches", "MPKI",
         "gate misses"],
        [
            ["power gating ON", gated_accesses,
             fmt(1000 * gated_accesses / total_branches, 1),
             fmt(gated_stats.mpki), gated_predictor.cpred.power_gate_misses],
            ["power gating OFF", open_accesses,
             fmt(1000 * open_accesses / total_branches, 1),
             fmt(open_stats.mpki), 0],
        ],
        paper_note="streams whose branches are neither bidirectional nor "
        "multi-target keep the PHT, perceptron and CTB dark",
    )

    # Shape: gating removes auxiliary accesses at negligible accuracy
    # cost (wrongly-gated lookups fall back to the BHT and are counted).
    assert gated_accesses < open_accesses
    assert gated_stats.mpki <= open_stats.mpki * 1.1 + 0.5
