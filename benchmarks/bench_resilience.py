"""X8 — resilience: fault-rate vs MPKI sweep, and the injector's cost.

Not a paper experiment: characterises the graceful-degradation curve the
z15's hint-engine architecture buys.  Sweeping the per-branch fault rate
across three orders of magnitude must (a) keep every run architecturally
equivalent to the fault-free baseline — faults never reach committed
state — and (b) degrade MPKI monotonically-ish, not catastrophically.
Also pins the overhead contract: a fault-off engine (no injector) is
fingerprint-identical and pays nothing, and parity recovery visibly
softens a heavy campaign relative to running unprotected.
"""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.resilience import FaultInjector, FaultPlan, fault_equivalence_report
from repro.verification.differential import stats_fingerprint
from repro.workloads import get_workload

BRANCHES = 3000

#: The degradation sweep: per-branch fault probabilities.
FAULT_RATES = (0.001, 0.01, 0.05, 0.2)


def _run(workload: str, plan=None):
    predictor = LookaheadBranchPredictor(z15_config())
    injector = FaultInjector(predictor, plan) if plan is not None else None
    engine = FunctionalEngine(predictor, injector=injector)
    stats = engine.run_program(get_workload(workload),
                               max_branches=BRANCHES, warmup_branches=0)
    return stats, injector


def test_fault_rate_vs_mpki_curve():
    """The headline sweep: rate up, MPKI drifts up, execution unchanged."""
    baseline, _ = _run("transactions")
    print(f"\n{'rate':>8} {'injected':>9} {'MPKI':>8} {'delta':>8}  equivalent")
    print(f"{0.0:>8} {0:>9} {baseline.mpki:>8.3f} {0.0:>+8.3f}  (baseline)")
    deltas = []
    for rate in FAULT_RATES:
        plan = FaultPlan(seed=1, rate=rate, parity=False)
        impact = fault_equivalence_report("transactions", plan,
                                          branches=BRANCHES, seed=1)
        assert impact.report.clean, impact.report.summary()
        deltas.append(impact.mpki_delta)
        print(f"{rate:>8} {impact.fault_counters['injected']:>9} "
              f"{impact.faulted_mpki:>8.3f} {impact.mpki_delta:>+8.3f}  "
              f"{impact.report.clean}")
    # Graceful, not catastrophic: even at rate 0.2 (one fault every five
    # branches) the predictor stays a working predictor.  The highest
    # rate must cost the most accuracy of the sweep.
    assert max(deltas) == deltas[-1]
    assert deltas[-1] < baseline.mpki  # degraded, not destroyed


def test_parity_recovery_softens_heavy_campaign():
    base = dict(seed=1, rate=0.1)
    protected = fault_equivalence_report(
        "transactions", FaultPlan(parity=True, **base), branches=BRANCHES,
        seed=1)
    exposed = fault_equivalence_report(
        "transactions", FaultPlan(parity=False, **base), branches=BRANCHES,
        seed=1)
    print(f"\nparity on:  MPKI {protected.faulted_mpki:.3f} "
          f"(recovered {protected.fault_counters['recovered']})")
    print(f"parity off: MPKI {exposed.faulted_mpki:.3f} "
          f"(silent {exposed.fault_counters['silent']})")
    assert protected.fault_counters["recovered"] > 0
    assert protected.fault_counters["silent"] < exposed.fault_counters["silent"]


@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_fault_off_run_is_free_and_identical(benchmark, workload):
    """No injector attached: the observer chain stays None, the fast
    loops stay fast, and the stats are fingerprint-identical to a
    pre-resilience build."""
    stats = benchmark.pedantic(
        lambda: _run(workload)[0], rounds=3, iterations=1, warmup_rounds=1,
    )
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\n{workload} (faults off): "
          f"{branches_per_second:,.0f} branches/second")
    assert branches_per_second > 3000
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    assert engine.observer is None  # the fault-off fast path is intact
    reference = engine.run_program(get_workload(workload),
                                   max_branches=BRANCHES, warmup_branches=0)
    assert stats_fingerprint(stats) == stats_fingerprint(reference)


def test_injector_overhead_is_bounded(benchmark):
    """An attached injector costs one RNG draw per branch; it must not
    collapse throughput even while actually injecting."""
    plan = FaultPlan(seed=1, rate=0.01, audit_interval=0)
    stats = benchmark.pedantic(
        lambda: _run("transactions", plan)[0], rounds=3, iterations=1,
        warmup_rounds=1,
    )
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\ntransactions (rate=0.01): "
          f"{branches_per_second:,.0f} branches/second")
    assert branches_per_second > 2000
    assert stats.branches == BRANCHES
