"""F9 — Figure 9: target-provider selection.

The flowchart: the BTB1 always has a target; only multi-target branches
consult the CRS (marked, non-blacklisted returns with a valid stack)
ahead of the CTB.  This benchmark reports target-provider distribution
and accuracy on call/return and dispatch workloads and validates the
escalation rule (single-target branches never use the auxiliaries).
"""

from repro.configs import z15_config
from repro.core.providers import TargetProvider

from common import fmt, pct, print_table, run_functional


WORKLOADS = ["services", "dispatch", "compute-kernel", "transactions"]


def _run_all():
    return {
        name: run_functional(z15_config(), name, branches=8000, warmup=4000)
        for name in WORKLOADS
    }


def test_target_provider_selection(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for workload, stats in results.items():
        total = sum(v[0] for v in stats.target_providers.values())
        for provider, (count, correct) in sorted(
            stats.target_providers.items(), key=lambda kv: -kv[1][0]
        ):
            if count == 0:
                continue
            rows.append([
                workload,
                provider.value,
                count,
                pct(count / max(1, total)),
                pct(correct / count),
            ])
    print_table(
        "Figure 9 — target providers by workload (agreed-taken branches)",
        ["workload", "provider", "uses", "share", "target accuracy"],
        rows,
        paper_note="CRS serves call/return idioms, CTB serves path-"
        "correlated changing targets, BTB1 serves everything else",
    )

    services = results["services"]
    crs_accuracy = services.target_provider_accuracy(TargetProvider.CRS)
    assert crs_accuracy is not None, "CRS must engage on services"
    assert crs_accuracy > 0.9

    dispatch = results["dispatch"]
    ctb_accuracy = dispatch.target_provider_accuracy(TargetProvider.CTB)
    assert ctb_accuracy is not None, "CTB must engage on dispatch"
    assert ctb_accuracy > 0.8

    # Single-target code never escalates to the auxiliaries.
    kernel = results["compute-kernel"]
    assert kernel.target_provider_accuracy(TargetProvider.CRS) is None
    assert kernel.target_provider_accuracy(TargetProvider.CTB) is None
    # The BTB1 remains the dominant provider everywhere.
    for stats in results.values():
        btb1 = stats.target_providers.get(TargetProvider.BTB1, [0, 0])[0]
        total = sum(v[0] for v in stats.target_providers.values())
        assert btb1 >= total / 2
