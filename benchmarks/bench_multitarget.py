"""S6 — Section VI: multi-target escalation, blacklist and amnesty.

Validated rules: a branch only escalates from the BTB1's single target
to the CTB/CRS after resolving with a wrong target; CRS-mispredicting
branches are blacklisted; every Nth completing wrong-target blacklisted
branch that still pair-matches is granted amnesty.
"""

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.core.providers import TargetProvider
from repro.engine import FunctionalEngine
from repro.workloads import get_workload

from common import fmt, pct, print_table


def _run_all():
    results = {}
    for name in ("compute-kernel", "dispatch", "services"):
        engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
        stats = engine.run_program(get_workload(name), max_branches=8000,
                                   warmup_branches=4000)
        predictor = engine.predictor
        multi_target_entries = sum(
            1 for _, _, entry in predictor.btb1.entries() if entry.multi_target
        )
        marked_returns = sum(
            1 for _, _, entry in predictor.btb1.entries()
            if entry.return_offset is not None
        )
        results[name] = {
            "stats": stats,
            "multi_target": multi_target_entries,
            "returns": marked_returns,
            "ctb_installs": predictor.ctb.installs,
            "crs_detections": predictor.crs.detections,
            "blacklists": predictor.crs.blacklists,
            "amnesties": predictor.crs.amnesties,
        }
    return results


def test_multitarget_escalation(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for name, data in results.items():
        stats = data["stats"]
        ctb = stats.target_providers.get(TargetProvider.CTB, [0, 0])
        crs = stats.target_providers.get(TargetProvider.CRS, [0, 0])
        rows.append([
            name,
            data["multi_target"],
            data["returns"],
            ctb[0],
            crs[0],
            data["blacklists"],
            data["amnesties"],
        ])
    print_table(
        "Section VI — multi-target escalation state",
        ["workload", "multi-target entries", "marked returns",
         "CTB target uses", "CRS target uses", "blacklists", "amnesties"],
        rows,
        paper_note="the desire is to use as few auxiliary predictors as "
        "needed: escalation only after a wrong target",
    )

    # Shape 1: single-target code never escalates.
    kernel = results["compute-kernel"]
    assert kernel["multi_target"] == 0
    assert kernel["stats"].target_providers.get(TargetProvider.CTB) is None

    # Shape 2: dispatch escalates to the CTB, not the CRS.
    dispatch = results["dispatch"]
    assert dispatch["multi_target"] >= 1
    assert dispatch["ctb_installs"] > 0
    assert dispatch["stats"].target_providers.get(TargetProvider.CTB) is not None

    # Shape 3: call/return code marks returns and uses the CRS.
    services = results["services"]
    assert services["returns"] >= 1
    assert services["crs_detections"] > 0
    crs_uses = services["stats"].target_providers.get(TargetProvider.CRS)
    assert crs_uses is not None and crs_uses[0] > 0
