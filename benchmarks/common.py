"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the ISCA 2020 z15
branch predictor paper (see DESIGN.md's experiment index).  Absolute
numbers come from synthetic workloads on a functional/cycle-level model,
so every benchmark prints the *shape* it validates next to the paper's
claim, and asserts that shape.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.configs import PredictorConfig
from repro.core import LookaheadBranchPredictor
from repro.engine import CycleEngine, CycleStats, FunctionalEngine
from repro.engine.parallel import SweepCell, run_cells
from repro.stats import RunStats
from repro.workloads import get_workload
from repro.workloads.program import Program

#: Every reproduced table is also appended here (pytest capture hides
#: stdout unless -s is passed); truncated at session start by conftest.
#: Overridable so CI can collect the file as an artifact from a
#: writable scratch path.
RESULTS_PATH = os.environ.get(
    "REPRO_BENCH_RESULTS",
    os.path.join(os.path.dirname(__file__), "results", "latest.txt"),
)

#: Bench-history JSONL (``repro-bench-history/v1``) the observatory's
#: ``repro report`` renders trend deltas from.  Overridable so CI can
#: persist it across runs as a cached artifact.
HISTORY_PATH = os.environ.get(
    "REPRO_BENCH_HISTORY",
    os.path.join(os.path.dirname(__file__), "results", "history.jsonl"),
)


def append_history(kind: str, metrics: Dict[str, float],
                   manifest: Optional[dict] = None,
                   label: Optional[str] = None,
                   path: Optional[str] = None) -> str:
    """Append one bench-history row to :data:`HISTORY_PATH` (or *path*)
    and return the path written.  Thin wrapper over
    :mod:`repro.obs.observatory` so individual benchmarks don't import
    the observatory directly."""
    from repro.obs.observatory import append_history as _append
    from repro.obs.observatory import history_row

    target = path or HISTORY_PATH
    os.makedirs(os.path.dirname(target), exist_ok=True)
    _append(target, history_row(kind, metrics, manifest=manifest,
                                label=label))
    return target


def run_functional(
    config: PredictorConfig,
    workload,
    branches: int = 8000,
    warmup: int = 4000,
    seed: int = 1,
) -> RunStats:
    """Run a workload (name or Program) through the functional engine."""
    program = workload if isinstance(workload, Program) else get_workload(
        workload, seed
    )
    engine = FunctionalEngine(LookaheadBranchPredictor(config))
    return engine.run_program(program, max_branches=branches,
                              warmup_branches=warmup, seed=seed)


def sweep_functional(
    jobs: Sequence[Tuple],
    branches: int = 8000,
    warmup: int = 4000,
    seed: int = 1,
    workers: Optional[int] = None,
) -> Dict[str, RunStats]:
    """Fan independent ``(label, config, workload)`` jobs over worker
    processes; returns ``{label: RunStats}`` in job order.

    A job may carry a fourth element — a dict overriding ``branches``,
    ``warmup`` or ``seed`` for that job.  The parallel runner's
    determinism contract makes this a drop-in for a sequential
    :func:`run_functional` loop: per-job stats are byte-identical at any
    worker count.  ``REPRO_BENCH_WORKERS`` (or ``workers=``) sets the
    fan-out; 1 keeps everything in-process.
    """
    if workers is None:
        workers = int(
            os.environ.get("REPRO_BENCH_WORKERS", min(4, os.cpu_count() or 1))
        )
    cells = []
    for job in jobs:
        label, config, workload = job[:3]
        overrides = job[3] if len(job) > 3 else {}
        cells.append(
            SweepCell(
                label=label,
                config=config,
                workload=workload,
                seed=overrides.get("seed", seed),
                branches=overrides.get("branches", branches),
                warmup=overrides.get("warmup", warmup),
            )
        )
    return {
        result.label: result.stats for result in run_cells(cells, workers=workers)
    }


def run_cycle(
    config: PredictorConfig,
    workload,
    branches: int = 6000,
    seed: int = 1,
    smt2: bool = False,
    icache=None,
    lookahead_prefetch: bool = True,
) -> CycleStats:
    """Run a workload through the cycle-level engine."""
    program = workload if isinstance(workload, Program) else get_workload(
        workload, seed
    )
    engine = CycleEngine(
        LookaheadBranchPredictor(config),
        smt2=smt2,
        icache=icache,
        lookahead_prefetch=lookahead_prefetch,
    )
    return engine.run_program(program, max_branches=branches, seed=seed)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    paper_note: Optional[str] = None,
) -> None:
    """Print one paper-style table."""
    widths = [
        max(len(str(headers[col])), *(len(str(row[col])) for row in rows))
        for col in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    output = ["", f"=== {title} ==="]
    if paper_note:
        output.append(f"paper: {paper_note}")
    output.append(line)
    output.append("-" * len(line))
    for row in rows:
        output.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    text = "\n".join(output)
    print(text)
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "a") as stream:
        stream.write(text + "\n")


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def pct(value: float) -> str:
    return f"{value:6.2%}"
