"""F8 — Figure 8: direction-provider selection.

The flowchart picks the direction provider: unconditional > perceptron
(if useful) > speculative PHT > TAGE PHT (weak-filtered) > BHT/SBHT.
This benchmark reports the realised provider distribution and per-
provider accuracy on workloads spanning the provider space, and checks
the escalation logic: auxiliary providers only appear on bidirectional
branches and out-predict the BHT on their niches.
"""

from repro.configs import z15_config
from repro.core.providers import DirectionProvider

from common import fmt, pct, print_table, run_functional


WORKLOADS = ["compute-kernel", "patterned", "correlated", "transactions"]


def _run_all():
    return {
        name: run_functional(z15_config(), name, branches=8000, warmup=4000)
        for name in WORKLOADS
    }


def test_direction_provider_selection(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for workload, stats in results.items():
        for provider, (count, correct) in sorted(
            stats.direction_providers.items(), key=lambda kv: -kv[1][0]
        ):
            if count == 0:
                continue
            rows.append([
                workload,
                provider.value,
                count,
                pct(count / stats.branches),
                pct(correct / count),
            ])
    print_table(
        "Figure 8 — direction providers by workload",
        ["workload", "provider", "predictions", "share", "accuracy"],
        rows,
        paper_note="BHT is the bread and butter; TAGE PHT and perceptron "
        "override only for bidirectional branches they predict better",
    )

    # Shape checks.
    patterned = results["patterned"]
    pht_uses = sum(
        patterned.direction_providers.get(p, [0, 0])[0]
        for p in (DirectionProvider.PHT_SHORT, DirectionProvider.PHT_LONG,
                  DirectionProvider.SPHT)
    )
    assert pht_uses > 0, "patterned workload must engage the PHT"
    pht_accuracy = patterned.provider_accuracy(DirectionProvider.PHT_SHORT)
    if pht_accuracy is not None:
        bht_accuracy = patterned.provider_accuracy(DirectionProvider.BHT)
        if bht_accuracy is not None:
            assert pht_accuracy >= bht_accuracy - 0.05

    # Unconditional entries are always right.
    for stats in results.values():
        accuracy = stats.provider_accuracy(DirectionProvider.UNCONDITIONAL)
        if accuracy is not None:
            assert accuracy == 1.0

    # The perceptron engages somewhere across the suite.
    perceptron_uses = sum(
        stats.direction_providers.get(DirectionProvider.PERCEPTRON, [0, 0])[0]
        for stats in results.values()
    )
    assert perceptron_uses > 0
