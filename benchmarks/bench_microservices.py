"""X5 — §II: the micro-services transition.

"Across industry, a software transition is occurring.  Monolithic
programs are giving way to a large quantity of smaller, micro-services
running in containers.  The value provided by these design points
addresses this transition."

This benchmark interleaves several small services as distinct contexts
and sweeps the context-switch frequency.  The multi-level BTB with
proactive context-switch priming (section III) keeps MPKI stable as
switching gets more frequent; without the BTB2, every switch restarts
cold.
"""

import dataclasses

from repro.configs import z15_config
from repro.configs.predictor import Btb1Config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.workloads import InterleavedRun
from repro.workloads.generators import large_footprint_program

from common import fmt, print_table


def _services(count=4):
    return [
        large_footprint_program(
            block_count=96, taken_bias=0.4, seed=20 + index,
            start=0x100000 * (index + 1), name=f"service-{index}",
        )
        for index in range(count)
    ]


def _config(with_btb2: bool):
    config = z15_config()
    # A BTB1 that holds roughly one service's worth of branches, so the
    # working sets genuinely evict each other across switches.
    config.btb1 = Btb1Config(rows=128, ways=4, policy="lru")
    if not with_btb2:
        config.btb2 = None
    return config.validate()


def _run(quantum: int, with_btb2: bool):
    run = InterleavedRun(_services(), quantum_branches=quantum, seed=5)
    engine = FunctionalEngine(LookaheadBranchPredictor(_config(with_btb2)))
    stats = engine.run_events(run.run(16000))
    stats.instructions = run.instructions_executed
    return stats


def test_microservices_context_switching(benchmark):
    def _run_sweep():
        results = {}
        for quantum in (4000, 1000, 250):
            results[quantum] = (_run(quantum, True), _run(quantum, False))
        return results

    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = []
    for quantum, (with_btb2, without) in results.items():
        rows.append([
            f"every {quantum} branches",
            fmt(with_btb2.mpki),
            f"{with_btb2.dynamic_coverage:6.1%}",
            fmt(without.mpki),
            f"{without.dynamic_coverage:6.1%}",
        ])
    print_table(
        "Section II — micro-services: MPKI vs context-switch frequency",
        ["switch rate", "MPKI (+BTB2 priming)", "coverage",
         "MPKI (no BTB2)", "coverage"],
        rows,
        paper_note="frequent container switches thrash a lone BTB1; the "
        "BTB2's capacity plus proactive context-switch priming recovers "
        "each service's working set",
    )

    # Shape 1: with the BTB2, coverage stays higher at every switch rate.
    for quantum, (with_btb2, without) in results.items():
        assert with_btb2.dynamic_coverage > without.dynamic_coverage
        assert with_btb2.mpki <= without.mpki + 0.5
    # Shape 2: the BTB2's advantage grows as switching gets faster.
    slow_gain = (results[4000][1].mpki - results[4000][0].mpki)
    fast_gain = (results[250][1].mpki - results[250][0].mpki)
    assert fast_gain >= slow_gain - 0.5
