"""F6/F7 — Figures 6 and 7: the SKOOT empty-search skip.

The paper: with the larger 64B search line, "searches not finding any
branch predictions increased", so SKOOT stores the known-empty skip
amount along each target stream and jumps the search over it, improving
both latency and power.  This benchmark runs a sparse-stream workload
(taken branches separated by empty lines) with SKOOT on and off and
measures searches per branch, skipped lines (power proxy), and accuracy
neutrality.
"""

from repro.configs import z15_config
from repro.isa.instructions import BranchKind
from repro.workloads.behaviors import AlwaysTaken
from repro.workloads.program import CodeBuilder

from common import fmt, print_table, run_functional


def sparse_stream_program(links: int = 24, gap_lines: int = 5):
    """A ring of taken branches, each preceded by several branch-free
    lines of straight code — the code shape SKOOT exists for.  Every
    stream enters at the start of its slot and runs ``gap_lines`` of
    filler before reaching the slot's single taken branch."""
    builder = CodeBuilder(0x40000, name="sparse-streams")
    stride = (gap_lines + 1) * 64
    slot_starts = [0x40000 + index * stride for index in range(links)]
    for index, slot in enumerate(slot_starts):
        builder.jump_to(slot)
        builder.straight(gap_lines * 16, length=4)  # branch-free lines
        builder.branch(
            BranchKind.UNCONDITIONAL_RELATIVE,
            target=slot_starts[(index + 1) % links],
            behavior=AlwaysTaken(),
        )
    return builder.build(entry_point=slot_starts[0])


def _run_both():
    branches = 6000
    with_skoot = run_functional(z15_config(), sparse_stream_program(),
                                branches=branches, warmup=1000)
    config = z15_config()
    config.skoot_enabled = False
    config.validate()
    without_skoot = run_functional(config, sparse_stream_program(),
                                   branches=branches, warmup=1000)
    return with_skoot, without_skoot


def test_skoot_skips_empty_searches(benchmark):
    with_skoot, without_skoot = benchmark.pedantic(_run_both, rounds=1,
                                                   iterations=1)

    with_rate = with_skoot.lines_searched / with_skoot.branches
    without_rate = without_skoot.lines_searched / without_skoot.branches
    rows = [
        ["with SKOOT (fig 7)", fmt(with_rate, 2),
         with_skoot.lines_skipped_by_skoot,
         with_skoot.empty_searches, fmt(with_skoot.mpki)],
        ["without SKOOT (fig 6)", fmt(without_rate, 2),
         without_skoot.lines_skipped_by_skoot,
         without_skoot.empty_searches, fmt(without_skoot.mpki)],
    ]
    print_table(
        "Figures 6/7 — searches per branch with/without SKOOT",
        ["configuration", "searches/branch", "lines skipped",
         "empty searches", "MPKI"],
        rows,
        paper_note="SKOOT skips the known-empty lead-in of each target "
        "stream (latency and power win, no accuracy cost)",
    )

    # Shape: SKOOT removes most of the empty searches on sparse streams
    # without hurting accuracy.
    assert with_rate < without_rate / 2
    assert with_skoot.lines_skipped_by_skoot > 0
    assert with_skoot.mpki <= without_skoot.mpki + 0.1
