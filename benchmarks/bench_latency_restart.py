"""S2B — Section II.B: latency — first predictions after a restart.

The paper: after a restart the time to deliver the first (and second)
predicted branch targets to the I-cache matters; refilling the issue
queue can add "up to 10 cycles of additional pipeline inefficiency".
This benchmark measures, in the cycle model, the delivery latency of the
first prediction after restarts (the b0..b5 fill) and the total restart
cost, against the paper's pipeline numbers.
"""

from repro.configs import TimingConfig, z15_config

from common import fmt, print_table, run_cycle
from repro.workloads.generators import large_footprint_program


def _run():
    program = large_footprint_program(block_count=512, taken_bias=0.4,
                                      deterministic_fraction=0.6, seed=3,
                                      name="latency-ring")
    return run_cycle(z15_config(), program, branches=8000)


def test_restart_latency(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    timing = TimingConfig()

    # The BPL pipeline refills in bpl_pipeline_depth cycles; every
    # restart pays it before the first prediction can deliver.
    fill = timing.bpl_pipeline_depth
    per_restart = stats.restart_cycles / max(1, stats.restarts)
    bpl_wait_per_branch = stats.bpl_wait_cycles / stats.branches
    print_table(
        "Section II.B — latency after restarts",
        ["metric", "value", "paper reference"],
        [
            ["BPL pipeline fill (b0..b5)", fill, "6-cycle pipeline (fig 4)"],
            ["restarts", stats.restarts, "-"],
            ["avg restart cost (cycles)", fmt(per_restart, 1),
             "26 flush + up to 10 refill (~35 statistical)"],
            ["BPL-wait cycles per branch", fmt(bpl_wait_per_branch, 3),
             "prediction usually ahead of dispatch"],
            ["CPI", fmt(stats.cpi, 3), "-"],
        ],
        paper_note="recovery after a complete pipeline restart can add up "
        "to 10 cycles of inefficiency on top of the flush",
    )

    # Shape: the modelled restart cost includes the statistical penalty
    # and the BPL rarely stalls dispatch outside restarts.
    assert per_restart >= timing.decode_restart_penalty
    assert per_restart <= timing.statistical_restart_penalty + 1
    # BPL waits stay a minor cost next to the restarts themselves.
    assert bpl_wait_per_branch < 3.0
    assert stats.bpl_wait_cycles < stats.restart_cycles
