"""X7 — telemetry overhead (the observability layer's own cost).

Not a paper experiment: measures what attaching a `TelemetrySession`
costs relative to a plain run, and pins the contract that matters more
than the absolute numbers — telemetry *off* is free (the engines keep
their ``observer is None`` fast loops), and telemetry *on* never
changes results (fingerprint-identical stats).  Uses real
pytest-benchmark rounds like `bench_simulator_throughput`.
"""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.obs import TelemetrySession
from repro.verification.differential import stats_fingerprint
from repro.workloads import get_workload

BRANCHES = 3000


def _run_plain(workload: str):
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    return engine.run_program(get_workload(workload),
                              max_branches=BRANCHES, warmup_branches=0)


def _run_instrumented(workload: str, trace_path=None):
    predictor = LookaheadBranchPredictor(z15_config())
    session = TelemetrySession(predictor=predictor, interval=500,
                               trace_path=trace_path)
    if trace_path:
        session.begin(workload=workload, predictor="z15", seed=1,
                      branches=BRANCHES)
    engine = FunctionalEngine(predictor, telemetry=session)
    stats = engine.run_program(get_workload(workload),
                               max_branches=BRANCHES, warmup_branches=0)
    session.finish(stats)
    return stats


@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_telemetry_collection_overhead(benchmark, workload):
    stats = benchmark.pedantic(
        _run_instrumented, args=(workload,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\n{workload} (telemetry on): "
          f"{branches_per_second:,.0f} branches/second")
    # Collection adds one observer call and ~20 counter increments per
    # branch; anything below this floor means the collector grew a
    # pathological hot path.
    assert branches_per_second > 3000
    # The contract the overhead is paid for: identical results.
    assert stats_fingerprint(stats) == \
        stats_fingerprint(_run_plain(workload))


def test_trace_sink_overhead(benchmark, tmp_path):
    path = str(tmp_path / "bench.jsonl")
    stats = benchmark.pedantic(
        _run_instrumented, args=("transactions", path), rounds=3,
        iterations=1, warmup_rounds=1,
    )
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\ntransactions (telemetry + trace): "
          f"{branches_per_second:,.0f} branches/second")
    # One json.dumps + write per branch dominates; the floor only
    # catches order-of-magnitude regressions in the sink.
    assert branches_per_second > 1000
    assert stats.branches == BRANCHES
