"""X7 — telemetry overhead (the observability layer's own cost).

Not a paper experiment: measures what attaching a `TelemetrySession`
costs relative to a plain run — across the full backend × engine-mode
matrix — and pins the contract that matters more than the absolute
numbers: telemetry *off* is free (the engines keep their ``observer is
None`` fast loops and produce byte-identical fingerprints), and
telemetry *on* never changes results (fingerprint-identical stats).
Uses real pytest-benchmark rounds like `bench_simulator_throughput`.
"""

import itertools

import pytest

from repro.configs import z15_config
from repro.engine import FunctionalEngine, create_predictor
from repro.obs import TelemetrySession
from repro.obs.spans import SpanTracer
from repro.verification.differential import stats_fingerprint
from repro.workloads import get_workload

BRANCHES = 3000

#: The matrix both the overhead numbers and the identity assertions
#: cover: every predictor backend crossed with every engine drive mode.
MATRIX = list(itertools.product(("object", "array"), ("reference", "fast")))


def _run_plain(workload: str, backend: str = "object",
               engine_mode: str = "reference", spans=None):
    engine = FunctionalEngine(create_predictor(z15_config(), backend),
                              engine_mode=engine_mode, spans=spans)
    return engine.run_program(get_workload(workload),
                              max_branches=BRANCHES, warmup_branches=0)


def _run_instrumented(workload: str, trace_path=None,
                      backend: str = "object",
                      engine_mode: str = "reference"):
    predictor = create_predictor(z15_config(), backend)
    session = TelemetrySession(
        predictor=predictor if backend == "object" else None,
        interval=500, trace_path=trace_path)
    if trace_path:
        session.begin(workload=workload, predictor="z15", seed=1,
                      branches=BRANCHES)
    engine = FunctionalEngine(predictor, telemetry=session,
                              engine_mode=engine_mode)
    stats = engine.run_program(get_workload(workload),
                               max_branches=BRANCHES, warmup_branches=0)
    session.finish(stats)
    return stats


@pytest.mark.parametrize("backend,engine_mode", MATRIX)
@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_telemetry_collection_overhead(benchmark, workload, backend,
                                       engine_mode):
    if engine_mode == "fast":
        # Kernel compilation is cached process-wide; pay it outside the
        # timed rounds so they measure steady state (like any JIT).
        _run_plain(workload, backend=backend, engine_mode="fast")
    stats = benchmark.pedantic(
        _run_instrumented, args=(workload,),
        kwargs={"backend": backend, "engine_mode": engine_mode},
        rounds=3, iterations=1, warmup_rounds=1,
    )
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\n{workload} [{backend}/{engine_mode}] (telemetry on): "
          f"{branches_per_second:,.0f} branches/second")
    # Collection adds one observer call and ~20 counter increments per
    # branch; anything below this floor means the collector grew a
    # pathological hot path.
    assert branches_per_second > 3000
    # The contract the overhead is paid for: identical results.
    assert stats_fingerprint(stats) == stats_fingerprint(
        _run_plain(workload, backend=backend, engine_mode=engine_mode)
    )


@pytest.mark.parametrize("workload", ["compute-kernel", "transactions"])
def test_telemetry_off_is_identity(workload):
    """Telemetry-off runs are byte-identical across the whole matrix:
    no observability hook may perturb results when disabled, and a span
    tracer (which only *times* phases) must not perturb them either."""
    reference = stats_fingerprint(_run_plain(workload))
    for backend, engine_mode in MATRIX:
        fingerprint = stats_fingerprint(
            _run_plain(workload, backend=backend, engine_mode=engine_mode)
        )
        assert fingerprint == reference, (
            f"telemetry-off fingerprint diverged on {backend}/{engine_mode}"
        )
        traced = stats_fingerprint(
            _run_plain(workload, backend=backend, engine_mode=engine_mode,
                       spans=SpanTracer())
        )
        assert traced == reference, (
            f"span tracing perturbed results on {backend}/{engine_mode}"
        )


def test_trace_sink_overhead(benchmark, tmp_path):
    path = str(tmp_path / "bench.jsonl")
    stats = benchmark.pedantic(
        _run_instrumented, args=("transactions", path), rounds=3,
        iterations=1, warmup_rounds=1,
    )
    seconds = benchmark.stats.stats.mean
    branches_per_second = BRANCHES / seconds
    print(f"\ntransactions (telemetry + trace): "
          f"{branches_per_second:,.0f} branches/second")
    # One json.dumps + write per branch dominates; the floor only
    # catches order-of-magnitude regressions in the sink.
    assert branches_per_second > 1000
    assert stats.branches == BRANCHES
