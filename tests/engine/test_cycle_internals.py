"""Unit tests for the cycle engine's internal timing math."""

import pytest

from repro.configs import TimingConfig, z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine.cycle import CycleEngine, _Clocks
from repro.frontend.icache import CacheLevelConfig, InstructionCacheHierarchy


def tiny_icache(memory_latency=100):
    return InstructionCacheHierarchy(
        levels=[
            CacheLevelConfig("L1I", 2048, line_size=128, associativity=2,
                             latency=4),
        ],
        memory_latency=memory_latency,
    )


def make_engine(**kwargs):
    return CycleEngine(LookaheadBranchPredictor(z15_config()),
                       icache=tiny_icache(), **kwargs)


class TestClocks:
    def test_clocks_created_per_thread(self):
        engine = make_engine()
        a = engine._clocks_for(0)
        b = engine._clocks_for(1)
        assert a is not b
        assert engine._clocks_for(0) is a

    def test_restart_resyncs_all_clocks_of_thread(self):
        engine = make_engine()
        clocks = engine._clocks_for(0)
        clocks.now = 100.0
        clocks.bpl_ready = 50.0
        clocks.fetch_clock = 60.0
        engine._apply_restart(clocks, penalty=35, resync_to=0x2000)
        assert clocks.now == 135.0
        assert clocks.bpl_ready == 135.0
        assert clocks.fetch_clock == 135.0
        assert clocks.fetch_point == 0x2000
        assert engine.stats.restart_cycles == 35
        assert engine.stats.restarts == 1

    def test_restart_without_resync_keeps_fetch_point(self):
        engine = make_engine()
        clocks = engine._clocks_for(0)
        clocks.fetch_point = 0x1234
        engine._apply_restart(clocks, penalty=8, resync_to=None)
        assert clocks.fetch_point == 0x1234


class TestFetchLines:
    def test_cold_miss_fully_exposed_when_bpl_not_ahead(self):
        engine = make_engine()
        clocks = engine._clocks_for(0)
        # BPL b0 at the same time fetch arrives: no lead, full exposure.
        engine._fetch_lines(clocks, 0x1000, 0x1004, bpl_b0_time=0.0)
        # Memory latency 100 beyond the 4-cycle L1 hit; one line touched.
        assert engine.stats.exposed_miss_cycles == 96
        assert engine.stats.hidden_miss_cycles == 0
        assert clocks.fetch_clock == pytest.approx(96.0)

    def test_lead_hides_latency(self):
        engine = make_engine()
        clocks = engine._clocks_for(0)
        clocks.fetch_clock = 150.0  # fetch arrives late; BPL searched at 0
        engine._fetch_lines(clocks, 0x1000, 0x1004, bpl_b0_time=10.0)
        # Lead = 150 - 10 = 140 >= effective latency 96: fully hidden.
        assert engine.stats.exposed_miss_cycles == 0
        assert engine.stats.hidden_miss_cycles == 96
        assert clocks.fetch_clock == pytest.approx(150.0)

    def test_hit_costs_nothing_extra(self):
        engine = make_engine()
        clocks = engine._clocks_for(0)
        engine.icache.access(0x1000)  # warm the line
        before = clocks.fetch_clock
        engine._fetch_lines(clocks, 0x1000, 0x1004, bpl_b0_time=0.0)
        assert clocks.fetch_clock == before
        assert engine.stats.exposed_miss_cycles == 0

    def test_prefetch_disabled_charges_beyond_l1(self):
        engine = make_engine(lookahead_prefetch=False)
        clocks = engine._clocks_for(0)
        engine._fetch_lines(clocks, 0x1000, 0x1004, bpl_b0_time=1000.0)
        # Exposure is latency minus the L1 hit cost, regardless of lead.
        timing = TimingConfig()
        assert engine.stats.exposed_miss_cycles == 100 - timing.l1i_latency

    def test_empty_range_is_noop(self):
        engine = make_engine()
        clocks = engine._clocks_for(0)
        engine._fetch_lines(clocks, 0x1000, 0x1000, bpl_b0_time=0.0)
        assert engine.icache.demand_accesses == 0


class TestRates:
    def test_intervals_by_mode(self):
        st = make_engine(smt2=False)
        smt = make_engine(smt2=True)
        assert st._search_interval == 1
        assert smt._search_interval == 2
        assert st._taken_interval == 5
        assert smt._taken_interval == 6
        assert st._fetch_bytes_per_cycle == 32
        assert smt._fetch_bytes_per_cycle == 16
