"""The warm-pool rebuild's own contract: serialize-once transfer,
chunked dispatch, ordered streaming, and failure attribution at
chunk sizes the legacy runner never had.

`test_parallel.py` pins the original sweep contract (which the rebuild
must keep verbatim at ``chunk_size=1``); this module locks down what
the warm pool *adds* — each distinct payload pickled once in the
parent and installed once per worker, multi-cell chunks whose failures
are caught per cell, an incremental result stream that never reorders
or drops a row, and resume via pre-filled ``completed`` slots.
"""

import copy

import pytest

from repro.configs import z15_config
from repro.engine.parallel import (
    CellError,
    PayloadRegistry,
    SweepCell,
    SweepResult,
    make_grid,
    run_cells,
    stream_cells,
)

from tests.conftest import (
    build_medium_program,
    build_small_program,
    small_predictor_config,
)
from tests.engine.test_parallel import (
    _baseline_fingerprints,
    _boom_prelude,
    _crash_prelude,
    _hang_prelude,
    _tiny_cells,
)


def _grid(seeds=(1, 2, 3, 4)):
    return make_grid(
        configs=[("tiny", small_predictor_config()), ("z15", z15_config())],
        workloads=[build_small_program(), "compute-kernel"],
        seeds=seeds,
        branches=300,
        warmup=100,
    )


# ----------------------------------------------------------------------
# Chunked dispatch: equivalence does not depend on chunk geometry
# ----------------------------------------------------------------------


@pytest.mark.parametrize("chunk_size", [2, 3, 16])
def test_chunked_parallel_matches_sequential(chunk_size):
    cells = _grid()
    sequential = run_cells(copy.deepcopy(cells), workers=1)
    parallel = run_cells(cells, workers=2, chunk_size=chunk_size)
    assert [r.fingerprint for r in parallel] == [
        r.fingerprint for r in sequential
    ]
    assert [(r.label, r.workload, r.seed) for r in parallel] == [
        (c.label, c.workload_name, c.seed) for c in cells
    ]


def test_chunk_size_must_be_positive():
    with pytest.raises(ValueError):
        run_cells(_tiny_cells(), workers=2, chunk_size=0)


def test_legacy_chunksize_alias_still_accepted():
    cells = _tiny_cells()
    stats: dict = {}
    results = run_cells(cells, workers=2, chunksize=3, pool_stats=stats)
    assert stats["chunk_size"] == 3
    assert [r.fingerprint for r in results] == _baseline_fingerprints()


# ----------------------------------------------------------------------
# Serialize-once transfer accounting
# ----------------------------------------------------------------------


def test_shared_program_is_pickled_once_in_parent():
    # 8 cells all referencing the SAME Program object: the registry must
    # pickle it once, not once per cell.
    program = build_medium_program()
    config = small_predictor_config()
    cells = [
        SweepCell(label="shared", config=config, workload=program,
                  seed=seed, branches=300, warmup=100)
        for seed in range(1, 9)
    ]
    stats: dict = {}
    results = run_cells(cells, workers=2, chunk_size=4, pool_stats=stats)
    assert all(isinstance(r, SweepResult) for r in results)
    # One Program + one PredictorConfig = two parent pickles, two blobs.
    assert stats["parent_pickle_calls"] == 2
    assert stats["payload_blobs"] == 2
    assert stats["payload_bytes"] > 0


def test_equal_content_programs_share_one_blob():
    # Distinct objects with identical content dedup on the wire: two
    # pickle calls (identity memo misses) but a single transferred blob.
    registry = PayloadRegistry()
    first = registry.register(build_medium_program(seed=7))
    second = registry.register(build_medium_program(seed=7))
    assert first == second
    assert registry.pickle_calls == 2
    assert len(registry.blobs) == 1


def test_each_worker_installs_payloads_exactly_once():
    program = build_medium_program()
    cells = [
        SweepCell(label="w", config=small_predictor_config(),
                  workload=program, seed=seed, branches=300, warmup=100)
        for seed in range(1, 7)
    ]
    stats: dict = {}
    run_cells(cells, workers=2, chunk_size=2, pool_stats=stats)
    assert stats["mode"] == "warm-pool"
    assert stats["workers"], "no worker instrumentation captured"
    for pid, worker in stats["workers"].items():
        assert worker["installs"] == 1, (
            f"worker {pid} re-received the payload cache "
            f"{worker['installs']} times"
        )
        assert worker["payload_blobs"] == stats["payload_blobs"]
    # Every cell materialised its own pristine copies in some worker.
    total_cells = sum(w["cells_run"] for w in stats["workers"].values())
    assert total_cells == len(cells)


def test_sequential_path_reports_same_transfer_accounting():
    program = build_medium_program()
    config = small_predictor_config()
    cells = [
        SweepCell(label="s", config=config, workload=program,
                  seed=seed, branches=300, warmup=100)
        for seed in (1, 2, 3)
    ]
    stats: dict = {}
    run_cells(cells, workers=1, pool_stats=stats)
    assert stats["mode"] == "sequential"
    assert stats["parent_pickle_calls"] == 2
    assert stats["payload_blobs"] == 2


# ----------------------------------------------------------------------
# Failure attribution inside multi-cell chunks
# ----------------------------------------------------------------------


def test_error_in_chunk_spares_chunkmates():
    # chunk_size=3 packs the failing seed-2 cell WITH its neighbours in
    # one chunk; the per-cell catch inside _run_chunk must confine the
    # error to its own slot.
    cells = _tiny_cells()
    cells[1].prelude = _boom_prelude
    stats: dict = {}
    results = run_cells(cells, workers=2, chunk_size=3, retries=1,
                        backoff=0.0, pool_stats=stats)
    assert results[1].kind == "error"
    assert results[1].attempts == 2
    assert "injected cell failure" in results[1].message
    baseline = _baseline_fingerprints()
    assert [results[0].fingerprint, results[2].fingerprint] == [
        baseline[0], baseline[2]
    ]
    # The error never broke the pool: no isolation rounds were needed.
    assert stats["pool_breaks"] == 0
    assert stats["isolation_attempts"] == 0


def test_crash_in_chunk_is_attributed_by_isolation_rounds():
    cells = _tiny_cells()
    cells[1].prelude = _crash_prelude
    stats: dict = {}
    results = run_cells(cells, workers=2, chunk_size=3, retries=1,
                        backoff=0.0, pool_stats=stats)
    assert results[1].kind == "crash"
    assert results[1].stats is None
    baseline = _baseline_fingerprints()
    assert [results[0].fingerprint, results[2].fingerprint] == [
        baseline[0], baseline[2]
    ]
    # The crash took the chunk down; isolation rounds assigned blame.
    assert stats["pool_breaks"] >= 1
    assert stats["isolation_attempts"] >= 1


def test_hang_in_chunk_is_attributed_by_isolation_rounds():
    cells = _tiny_cells()
    cells[1].prelude = _hang_prelude
    results = run_cells(cells, workers=2, chunk_size=3, timeout=3.0,
                        retries=0, backoff=0.0)
    assert results[1].kind == "timeout"
    baseline = _baseline_fingerprints()
    assert [results[0].fingerprint, results[2].fingerprint] == [
        baseline[0], baseline[2]
    ]


# ----------------------------------------------------------------------
# Streaming: ordered, lossless, resumable
# ----------------------------------------------------------------------


def test_stream_yields_rows_in_submission_order():
    cells = _grid(seeds=(1, 2, 3))
    expected = [r.fingerprint for r in run_cells(copy.deepcopy(cells),
                                                 workers=1)]
    streamed = []
    for row in stream_cells(cells, workers=2, chunk_size=2):
        streamed.append(row)
    assert [r.fingerprint for r in streamed] == expected
    assert [(r.label, r.workload, r.seed) for r in streamed] == [
        (c.label, c.workload_name, c.seed) for c in cells
    ]


def test_stream_with_failing_cell_never_drops_or_reorders():
    cells = _tiny_cells()
    cells[1].prelude = _boom_prelude
    rows = list(stream_cells(cells, workers=2, chunk_size=2, retries=0,
                             backoff=0.0))
    assert len(rows) == len(cells)
    assert isinstance(rows[1], CellError)
    assert [r.seed for r in rows] == [c.seed for c in cells]


def test_stream_completed_slots_are_not_rerun():
    cells = _tiny_cells()
    full = run_cells(copy.deepcopy(cells), workers=1)
    # Pre-fill slot 0 and 2; poison their preludes so any re-run would
    # blow up the results.
    cells[0].prelude = _boom_prelude_always
    cells[2].prelude = _boom_prelude_always
    stats: dict = {}
    rows = run_cells(cells, workers=2, retries=0, backoff=0.0,
                     completed={0: full[0], 2: full[2]}, pool_stats=stats)
    assert stats["resumed_cells"] == 2
    assert [r.fingerprint for r in rows] == [r.fingerprint for r in full]
    assert rows[0] is full[0] and rows[2] is full[2]


def test_stream_rejects_out_of_range_completed_index():
    with pytest.raises(ValueError):
        list(stream_cells(_tiny_cells(), completed={17: None}))


def test_abandoned_stream_tears_down_its_pool():
    cells = _grid()
    stream = stream_cells(cells, workers=2, chunk_size=1)
    first = next(stream)
    assert isinstance(first, SweepResult)
    # Closing mid-sweep must terminate the warm workers promptly rather
    # than joining queued chunks (the killed-sweep scenario).
    stream.close()


def _boom_prelude_always(spec):
    raise RuntimeError("resumed slot must not re-run")


# ----------------------------------------------------------------------
# Batched result IPC: one pickled blob per chunk
# ----------------------------------------------------------------------


def test_chunk_results_cross_the_pipe_as_one_blob():
    """Each dispatched chunk returns exactly one pickled outcome blob;
    the accounting shows what per-cell pickling would have cost."""
    cells = _grid()
    stats: dict = {}
    results = run_cells(cells, workers=2, chunk_size=4, pool_stats=stats)
    assert all(isinstance(r, SweepResult) for r in results)
    assert stats["result_blobs"] == stats["chunks_dispatched"]
    assert stats["result_blobs"] < len(cells)
    assert stats["result_bytes"] > 0
    assert stats["result_bytes_unbatched"] >= stats["result_bytes"]
    assert stats["result_bytes_saved"] == (
        stats["result_bytes_unbatched"] - stats["result_bytes"]
    )


def test_multi_cell_chunks_save_result_bytes():
    """Chunkmates share one pickle memo (class descriptors, provider
    keys, framing), so batching must genuinely shrink the transfer."""
    cells = _grid()
    stats: dict = {}
    run_cells(cells, workers=2, chunk_size=8, pool_stats=stats)
    assert stats["result_bytes_saved"] > 0


def test_single_cell_chunks_still_account_blobs():
    """chunk_size=1 degenerates to one-cell blobs: accounting stays
    coherent (a blob per cell, ~zero savings — the list framing can even
    cost a few bytes) rather than vanishing."""
    cells = _tiny_cells()
    stats: dict = {}
    results = run_cells(cells, workers=2, chunk_size=1, pool_stats=stats)
    assert len(results) == len(cells)
    assert stats["result_blobs"] == len(cells)
    assert stats["result_bytes_saved"] == (
        stats["result_bytes_unbatched"] - stats["result_bytes"]
    )
    assert abs(stats["result_bytes_saved"]) < 64 * len(cells)


def test_error_rows_attribute_through_chunked_blobs():
    """Per-cell attribution survives the batched return path: an error
    outcome lands in its own submission slot, chunkmates in theirs."""
    cells = _tiny_cells()
    cells[1].prelude = _boom_prelude
    stats: dict = {}
    results = run_cells(cells, workers=2, chunk_size=3, retries=1,
                        backoff=0.0, pool_stats=stats)
    assert isinstance(results[1], CellError)
    assert results[1].kind == "error"
    baseline = _baseline_fingerprints()
    assert [results[0].fingerprint, results[2].fingerprint] == [
        baseline[0], baseline[2]
    ]
    # The mixed ok/error chunk still crossed as blobs.
    assert stats["result_blobs"] >= 1


def test_sequential_path_has_no_result_blob_accounting():
    """workers=1 runs cells in-process — nothing crosses a pipe, so the
    result-IPC counters must stay zero rather than invent traffic."""
    stats: dict = {}
    run_cells(_tiny_cells(), workers=1, pool_stats=stats)
    assert stats["result_blobs"] == 0
    assert stats["result_bytes"] == 0
    assert stats["result_bytes_saved"] == 0
