"""Unit contract of the config-specialized kernel generator.

The equivalence battery (``test_fast_mode_equivalence.py``) proves the
compiled kernels *behave* identically; this module pins the generator
machinery itself — shape derivation, source hygiene (no unexpanded
template markers), process-wide caching, and the mode-resolution rules
(`fast` silently falls back to `reference` for baseline predictors,
unknown modes are rejected loudly).
"""

import pytest

from repro.baselines import BimodalPredictor
from repro.configs import GENERATIONS, z15_config
from repro.core.predictor import LookaheadBranchPredictor
from repro.engine.specialize import (
    ENGINE_MODES,
    SpecializedKernels,
    clear_kernel_cache,
    config_shape,
    effective_engine_mode,
    generate_kernel_source,
    kernels_for,
    kernels_for_config,
)
from tests.conftest import small_predictor_config

KERNEL_NAMES = (
    "counted_bare", "counted_observed", "warmup_bare", "warmup_observed",
    "events_bare", "events_observed", "predict_flat",
)


def test_config_shape_is_hashable_and_config_dependent():
    z15 = config_shape(z15_config())
    tiny = config_shape(small_predictor_config())
    assert hash(z15) is not None
    assert z15 != tiny
    assert z15 == config_shape(z15_config())


@pytest.mark.parametrize("generation", sorted(GENERATIONS))
def test_every_generation_compiles_all_kernels(generation):
    factory, _ = GENERATIONS[generation]
    kernels = kernels_for_config(factory())
    assert isinstance(kernels, SpecializedKernels)
    for name in KERNEL_NAMES:
        assert callable(getattr(kernels, name)), name


def test_generated_source_has_no_unexpanded_markers():
    """Every ``#IF``/``#ELSE``/``#ENDIF``/``#APPLY`` marker and every
    ``$TOKEN`` must be resolved at generation time — a leftover marker
    means a template branch silently shipped as a comment."""
    for config in (z15_config(), small_predictor_config()):
        source = generate_kernel_source(config_shape(config))
        for marker in ("#IF", "#ELSE", "#ENDIF", "#APPLY", "$"):
            assert marker not in source, f"unexpanded {marker!r} in source"


def test_kernels_are_cached_per_shape():
    clear_kernel_cache()
    first = kernels_for_config(z15_config())
    second = kernels_for_config(z15_config())
    assert first is second
    other = kernels_for_config(small_predictor_config())
    assert other is not first
    clear_kernel_cache()
    assert kernels_for_config(z15_config()) is not first


def test_kernels_for_predictor_uses_its_config():
    predictor = LookaheadBranchPredictor(z15_config())
    assert kernels_for(predictor) is kernels_for_config(z15_config())


def test_effective_engine_mode_validates():
    predictor = LookaheadBranchPredictor(z15_config())
    assert effective_engine_mode("reference", predictor) == "reference"
    assert effective_engine_mode("fast", predictor) == "fast"
    with pytest.raises(ValueError):
        effective_engine_mode("warp", predictor)


def test_fast_mode_falls_back_for_baselines():
    """Baselines have no PredictorConfig to specialize on; requesting
    fast mode on one is a silent no-op, not an error — sweeps may mix
    baselines into a fast grid."""
    assert effective_engine_mode("fast", BimodalPredictor()) == "reference"


def test_engine_modes_tuple_is_the_public_axis():
    assert ENGINE_MODES == ("reference", "fast")
