"""Tests for the cycle-level engine."""

import pytest

from repro.configs import TimingConfig, z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import CycleEngine
from repro.frontend.icache import CacheLevelConfig, InstructionCacheHierarchy
from repro.workloads import get_workload
from repro.workloads.generators import loop_nest_program


def run_cycle(name="compute-kernel", branches=3000, smt2=False,
              prefetch=True, seed=1):
    engine = CycleEngine(
        LookaheadBranchPredictor(z15_config()),
        smt2=smt2,
        lookahead_prefetch=prefetch,
    )
    stats = engine.run_program(get_workload(name, seed), max_branches=branches,
                               seed=seed)
    return stats


def test_basic_accounting():
    stats = run_cycle()
    assert stats.cycles > 0
    assert stats.instructions > 0
    assert stats.branches == 3000
    assert stats.cpi > 0
    assert stats.ipc == pytest.approx(1.0 / stats.cpi, rel=1e-6)


def test_mispredictions_cost_restart_cycles():
    stats = run_cycle("footprint-small")
    assert stats.restarts > 0
    assert stats.restart_cycles >= stats.restarts * 8


def test_timing_validation():
    with pytest.raises(Exception):
        TimingConfig(taken_interval_cpred=10, taken_interval_st=5).validate()
    with pytest.raises(Exception):
        TimingConfig(search_bytes_per_cycle=16,
                     fetch_bytes_per_cycle=32).validate()


def test_smt2_is_slower_than_st():
    st = run_cycle("compute-kernel", branches=2000, smt2=False)
    smt = run_cycle("compute-kernel", branches=2000, smt2=True)
    assert smt.cycles > st.cycles


def test_cpred_accelerates_redirects():
    stats = run_cycle("compute-kernel", branches=3000)
    assert stats.taken_redirects > 0
    assert stats.cpred_redirects > 0
    assert stats.cpred_redirects <= stats.taken_redirects


def test_accuracy_stats_embedded():
    stats = run_cycle("patterned", branches=2000)
    assert stats.accuracy.branches == 2000
    assert stats.accuracy.instructions == stats.instructions


def test_cache_level_stats_present():
    stats = run_cycle()
    assert "L1I" in stats.cache_levels
    assert stats.cache_levels["L1I"]["accesses"] > 0


def test_prefetch_hides_miss_latency():
    """With lookahead prefetch, exposed I-miss cycles shrink on a
    footprint that misses the L1I."""
    def run(prefetch):
        icache = InstructionCacheHierarchy(
            levels=[
                CacheLevelConfig("L1I", 4 * 1024, line_size=128,
                                 associativity=2, latency=4),
                CacheLevelConfig("L2I", 512 * 1024, line_size=128,
                                 associativity=8, latency=12),
            ],
            memory_latency=100,
        )
        engine = CycleEngine(
            LookaheadBranchPredictor(z15_config()),
            icache=icache,
            lookahead_prefetch=prefetch,
        )
        return engine.run_program(get_workload("footprint-medium"),
                                  max_branches=4000)

    with_prefetch = run(True)
    without_prefetch = run(False)
    assert with_prefetch.hidden_miss_cycles > 0
    assert (
        with_prefetch.exposed_miss_cycles
        < without_prefetch.exposed_miss_cycles
    )


def test_report_renders():
    stats = run_cycle(branches=500)
    text = stats.report("test")
    assert "CPI" in text
    assert "restart cycles" in text
