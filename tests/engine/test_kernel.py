"""Direct contract of :mod:`repro.engine.kernel` — the shared consume
sequence every engine drives.

Until now this module was only exercised through the engines; these
tests pin its own guarantees: the observer chain order (explicit
observer → telemetry → injector), single-consumer unwrapping (no
indirection for the common one-hook case), and the ``run_warmup``
dry-stream edge where the stream ends before warmup does.
"""

from repro.engine.kernel import (
    _chain_observers,
    drive_counted,
    predict_one,
    run_warmup,
)


class _Hook:
    """A telemetry-/injector-shaped consumer: has ``observe``."""

    def __init__(self, log, name):
        self.log = log
        self.name = name

    def observe(self, outcome):
        self.log.append((self.name, outcome))


# ----------------------------------------------------------------------
# _chain_observers
# ----------------------------------------------------------------------


def test_chain_order_is_observer_then_telemetry_then_injector():
    log = []
    chained = _chain_observers(
        lambda outcome: log.append(("observer", outcome)),
        _Hook(log, "telemetry"),
        _Hook(log, "injector"),
    )
    chained("o1")
    assert [name for name, _ in log] == ["observer", "telemetry", "injector"]
    assert all(outcome == "o1" for _, outcome in log)


def test_chain_with_nothing_attached_is_none():
    """The engines key their per-branch fast path on ``observer is
    None``; an empty chain must collapse to None, not a no-op callable."""
    assert _chain_observers(None, None, None) is None


def test_single_consumer_is_returned_unwrapped():
    def observer(outcome):
        pass

    telemetry = _Hook([], "telemetry")
    injector = _Hook([], "injector")
    assert _chain_observers(observer, None, None) is observer
    # Bound methods are equal (not identical) across attribute lookups.
    assert _chain_observers(None, telemetry, None) == telemetry.observe
    assert _chain_observers(None, None, injector) == injector.observe


def test_two_consumer_chain_skips_the_missing_slot():
    log = []
    chained = _chain_observers(
        lambda outcome: log.append(("observer", outcome)),
        None,
        _Hook(log, "injector"),
    )
    chained("o1")
    assert [name for name, _ in log] == ["observer", "injector"]


# ----------------------------------------------------------------------
# predict_one / drive_counted: consume-sequence order
# ----------------------------------------------------------------------


def test_predict_one_runs_observer_before_record():
    log = []
    outcome = predict_one(
        lambda branch: f"outcome-{branch}",
        "b1",
        lambda outcome: log.append(("observer", outcome)),
        lambda outcome: log.append(("record", outcome)),
    )
    assert outcome == "outcome-b1"
    assert log == [("observer", "outcome-b1"), ("record", "outcome-b1")]


def test_predict_one_without_observer_still_records():
    log = []
    predict_one(lambda branch: branch, "b1", None, log.append)
    assert log == ["b1"]


def test_drive_counted_order_with_all_consumers():
    log = []
    drive_counted(
        lambda branch: branch,
        iter(["b1", "b2"]),
        lambda outcome: log.append(("record", outcome)),
        observer=lambda outcome: log.append(("observer", outcome)),
        extra=lambda outcome: log.append(("extra", outcome)),
    )
    assert log == [
        ("observer", "b1"), ("record", "b1"), ("extra", "b1"),
        ("observer", "b2"), ("record", "b2"), ("extra", "b2"),
    ]


def test_drive_counted_bare_path_records_everything():
    recorded = []
    drive_counted(lambda branch: branch, iter(range(5)), recorded.append)
    assert recorded == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# run_warmup
# ----------------------------------------------------------------------


def test_run_warmup_consumes_exactly_the_prefix():
    stream = iter(["b1", "b2", "b3", "b4"])
    consumed = run_warmup(lambda branch: branch, stream, 2, None)
    assert consumed == 2
    assert list(stream) == ["b3", "b4"]


def test_run_warmup_shows_warmup_branches_to_the_observer():
    seen = []
    consumed = run_warmup(lambda branch: branch.upper(), iter(["b1", "b2"]),
                          2, seen.append)
    assert consumed == 2
    assert seen == ["B1", "B2"]


def test_run_warmup_dry_stream_reports_short_count():
    """A stream shorter than the warmup budget must report how many
    branches it actually consumed — the engines use the exact-match
    return to decide whether the instruction baseline is trustworthy."""
    consumed = run_warmup(lambda branch: branch, iter(["b1"]), 10, None)
    assert consumed == 1
    assert run_warmup(lambda branch: branch, iter([]), 10, None) == 0
