"""The checkpoint stream contract: a killed sweep resumed from its
partial JSONL stream reproduces the uninterrupted run exactly.

Covers the row codec (SweepResult and CellError round trips), the torn
tail left by a killed writer, stream validation on resume (wrong sweep,
conflicting duplicates, out-of-grid indices) and the end-to-end
kill/resume equivalence that makes streaming safe to rely on for
thousand-cell fleets.
"""

import copy
import json

import pytest

from repro.common.errors import SweepStreamError
from repro.engine.parallel import (
    CellError,
    PayloadRegistry,
    SweepCell,
    run_cells,
    stream_cells,
)
from repro.engine.stream import (
    STREAM_SCHEMA,
    RestoredStats,
    SweepStreamWriter,
    load_stream,
    restore_completed,
    result_to_row,
    row_to_result,
)

from tests.conftest import build_medium_program, small_predictor_config
from tests.engine.test_parallel import _tiny_cells


def _cells():
    program = build_medium_program(seed=3)
    config = small_predictor_config()
    return [
        SweepCell(label="ckpt", config=config, workload=program,
                  seed=seed, branches=300, warmup=100)
        for seed in (1, 2, 3, 4)
    ]


def _comparable_row(row):
    """A stream row minus the fields that legitimately differ between
    the run that produced a cell and the run that resumed past it."""
    row = json.loads(json.dumps(row))  # deep copy
    row.pop("elapsed", None)
    return row


# ----------------------------------------------------------------------
# Row codec
# ----------------------------------------------------------------------


def test_ok_row_round_trips():
    cells = _cells()[:1]
    result = run_cells(cells, workers=1)[0]
    registry = PayloadRegistry()
    row = result_to_row(0, cells[0], result, registry)
    assert row["schema"] == STREAM_SCHEMA
    assert row["status"] == "ok"
    restored = row_to_result(row)
    assert restored.fingerprint == result.fingerprint
    assert isinstance(restored.stats, RestoredStats)
    assert restored.stats.branches == result.stats.branches
    assert restored.stats.mpki == result.stats.mpki
    # Re-encoding the restored result reproduces the identical row.
    assert (_comparable_row(result_to_row(0, cells[0], restored, registry))
            == _comparable_row(row))


def test_cycle_row_round_trips_with_nested_accuracy():
    cell = SweepCell(label="cyc", config=small_predictor_config(),
                     workload="compute-kernel", seed=2, branches=300,
                     engine="cycle")
    result = run_cells([cell], workers=1)[0]
    row = result_to_row(0, cell, result)
    restored = row_to_result(row)
    assert restored.stats.cycles == result.stats.cycles
    assert restored.stats.cpi == result.stats.cpi
    assert isinstance(restored.stats.accuracy, RestoredStats)
    assert (restored.stats.accuracy.mispredicted_branches
            == result.stats.accuracy.mispredicted_branches)


def test_error_row_round_trips():
    cells = _tiny_cells()[:1]
    error = CellError(label="tiny", workload="compute-kernel", seed=1,
                      branches=400, warmup=100, kind="timeout",
                      message="no result within 3.0s", attempts=2)
    row = result_to_row(0, cells[0], error)
    assert row["status"] == "error"
    restored = row_to_result(row)
    assert isinstance(restored, CellError)
    assert restored.kind == "timeout"
    assert restored.attempts == 2
    assert restored.fingerprint == "cell-error:timeout"


# ----------------------------------------------------------------------
# Stream file tolerance and validation
# ----------------------------------------------------------------------


def test_load_stream_drops_torn_tail(tmp_path):
    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    path = str(tmp_path / "stream.jsonl")
    registry = PayloadRegistry()
    with SweepStreamWriter(path) as writer:
        for index in (0, 1):
            writer.write(result_to_row(index, cells[index], results[index],
                                       registry))
    with open(path, "a") as stream:
        stream.write('{"schema": "repro-sweep-str')  # killed mid-write
    rows = load_stream(path)
    assert len(rows) == 2
    assert [row["cell"]["index"] for row in rows] == [0, 1]


def test_load_stream_rejects_mid_stream_corruption(tmp_path):
    path = str(tmp_path / "stream.jsonl")
    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    good = json.dumps(result_to_row(0, cells[0], results[0]))
    with open(path, "w") as stream:
        stream.write("not json at all\n")
        stream.write(good + "\n")
    with pytest.raises(SweepStreamError):
        load_stream(path)


def test_load_stream_rejects_foreign_schema(tmp_path):
    path = str(tmp_path / "stream.jsonl")
    with open(path, "w") as stream:
        stream.write(json.dumps({"schema": "other/v1"}) + "\n")
    with pytest.raises(SweepStreamError):
        load_stream(path)


def test_restore_rejects_stream_from_different_sweep(tmp_path):
    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    rows = [result_to_row(0, cells[0], results[0])]
    other = _cells()
    other[0].seed = 40  # same slot, different cell identity
    with pytest.raises(SweepStreamError) as excinfo:
        restore_completed(rows, other)
    assert "different sweep" in str(excinfo.value)


def test_restore_rejects_out_of_grid_index():
    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    rows = [result_to_row(3, cells[3], results[3])]
    with pytest.raises(SweepStreamError):
        restore_completed(rows, cells[:2])


def test_restore_rejects_conflicting_duplicates():
    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    row = result_to_row(0, cells[0], results[0])
    conflicting = json.loads(json.dumps(row))
    conflicting["fingerprint"] = "something-else"
    with pytest.raises(SweepStreamError):
        restore_completed([row, conflicting], cells)


def test_restore_accepts_agreeing_duplicates():
    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    row = result_to_row(0, cells[0], results[0])
    completed = restore_completed([row, row], cells)
    assert set(completed) == {0}


# ----------------------------------------------------------------------
# Kill / resume end to end
# ----------------------------------------------------------------------


def test_killed_sweep_resumed_from_stream_matches_uninterrupted(tmp_path):
    cells = _cells()
    registry = PayloadRegistry()
    path = str(tmp_path / "stream.jsonl")

    # Uninterrupted reference: all rows, streamed to a full checkpoint.
    reference = run_cells(copy.deepcopy(cells), workers=1)
    reference_rows = [
        _comparable_row(result_to_row(i, cells[i], reference[i], registry))
        for i in range(len(cells))
    ]

    # "Killed" run: the consumer dies after two rows; the writer has
    # flushed those rows plus a torn tail from the in-flight write.
    writer = SweepStreamWriter(path)
    stream = stream_cells(copy.deepcopy(cells), workers=2, chunk_size=1)
    for index, result in enumerate(stream):
        writer.write(result_to_row(index, cells[index], result, registry))
        if index == 1:
            stream.close()
            break
    writer.close()
    with open(path, "a") as handle:
        handle.write('{"schema": "repro-sweep-stream/v1", "cell": {"ind')

    # Resume from the partial stream.
    completed = restore_completed(load_stream(path), cells, registry)
    assert set(completed) == {0, 1}
    stats: dict = {}
    resumed = run_cells(cells, workers=2, completed=completed,
                        pool_stats=stats)
    assert stats["resumed_cells"] == 2
    resumed_rows = [
        _comparable_row(result_to_row(i, cells[i], resumed[i], registry))
        for i in range(len(cells))
    ]
    assert resumed_rows == reference_rows
    assert [r.fingerprint for r in resumed] == [
        r.fingerprint for r in reference
    ]


def test_fully_streamed_sweep_resumes_to_a_no_op(tmp_path):
    cells = _cells()
    registry = PayloadRegistry()
    path = str(tmp_path / "stream.jsonl")
    results = run_cells(copy.deepcopy(cells), workers=1)
    with SweepStreamWriter(path) as writer:
        for index, result in enumerate(results):
            writer.write(result_to_row(index, cells[index], result,
                                       registry))
    # Poison every prelude: any re-run would produce error rows.
    for cell in cells:
        cell.prelude = _forbidden_rerun
    completed = restore_completed(load_stream(path), cells, registry)
    stats: dict = {}
    resumed = run_cells(cells, workers=2, completed=completed,
                        pool_stats=stats)
    assert stats["resumed_cells"] == len(cells)
    assert [r.fingerprint for r in resumed] == [
        r.fingerprint for r in results
    ]


def _forbidden_rerun(spec):
    raise RuntimeError("fully-checkpointed sweep must not re-run cells")


# ----------------------------------------------------------------------
# Embedded run manifests
# ----------------------------------------------------------------------


def test_manifest_embeds_as_first_line_and_is_skipped(tmp_path):
    from repro.engine.stream import load_stream_manifest
    from repro.obs.manifest import build_manifest

    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    path = str(tmp_path / "stream.jsonl")
    registry = PayloadRegistry()
    manifest = build_manifest("sweep", grid={"cells": len(cells)})
    with SweepStreamWriter(path, manifest=manifest) as writer:
        for index, result in enumerate(results):
            writer.write(result_to_row(index, cells[index], result,
                                       registry))
    first = json.loads(open(path).readline())
    assert first["schema"] == "repro-manifest/v1"
    # Result consumers never see the manifest row...
    rows = load_stream(path)
    assert len(rows) == len(cells)
    assert all(row["schema"] == STREAM_SCHEMA for row in rows)
    # ...and the manifest reader returns exactly it.
    recovered = load_stream_manifest(path)
    assert recovered == json.loads(json.dumps(manifest))


def test_manifest_headed_stream_resumes(tmp_path):
    from repro.obs.manifest import build_manifest

    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    path = str(tmp_path / "stream.jsonl")
    registry = PayloadRegistry()
    with SweepStreamWriter(path,
                           manifest=build_manifest("sweep")) as writer:
        for index in (0, 1):
            writer.write(result_to_row(index, cells[index], results[index],
                                       registry))
    completed = restore_completed(load_stream(path), cells, registry)
    assert sorted(completed) == [0, 1]


def test_load_stream_manifest_none_for_plain_streams(tmp_path):
    from repro.engine.stream import load_stream_manifest

    cells = _cells()
    results = run_cells(copy.deepcopy(cells), workers=1)
    path = str(tmp_path / "plain.jsonl")
    with SweepStreamWriter(path) as writer:
        writer.write(result_to_row(0, cells[0], results[0]))
    assert load_stream_manifest(path) is None


def test_load_stream_manifest_tolerates_torn_single_line(tmp_path):
    from repro.engine.stream import load_stream_manifest

    path = str(tmp_path / "torn.jsonl")
    with open(path, "w") as stream:
        stream.write('{"schema": "repro-manif')
    assert load_stream_manifest(path) is None


def test_writer_rejects_invalid_manifest(tmp_path):
    from repro.obs.manifest import ManifestError

    with pytest.raises(ManifestError):
        SweepStreamWriter(str(tmp_path / "bad.jsonl"),
                          manifest={"schema": "nope"})
