"""The backends × engine-modes differential battery.

``--engine-mode fast`` claims byte-identical behaviour to the reference
interpreter: same committed branch stream, same
:class:`~repro.stats.metrics.RunStats` invariants, same learned table
fingerprints, byte-identical ``state_io`` checkpoints — on every
backend, every generation config, with telemetry, fault injection and
observers on or off, through every run entry point (``run_program``,
``run_branches``, ``run_events``/``run_interleaved``, the cycle
engine).  This module is the proof, and — like the cross-backend
battery — it also proves the *detector* detects, so a clean run means
equivalence rather than a broken comparison.

Workload Programs are stateful (behaviours carry loop counters and
pattern positions), so every run here builds its workload fresh; a
shared Program diverges even reference-vs-reference.
"""

import pytest

from repro.configs import GENERATIONS, z15_config
from repro.core.entries import BtbEntry
from repro.engine import CycleEngine, FunctionalEngine, create_predictor
from repro.isa.instructions import BranchKind
from repro.obs import TelemetrySession
from repro.resilience import FaultInjector, FaultPlan
from repro.structures.saturating import TwoBitDirectionCounter
from repro.verification.differential import (
    comparable_stats,
    cross_backend_report,
    cross_engine_report,
    cross_mode_report,
    observer_into,
    predictor_fingerprint,
    replay_report,
)
from repro.workloads import STANDARD_WORKLOADS, get_workload
from repro.workloads.executor import Executor
from repro.workloads.multi import InterleavedRun
from tests.conftest import DEFAULT_TEST_SEED


def _run_mode(mode, backend="object", workload="transactions",
              branches=1500, config_factory=z15_config, telemetry=False,
              fault_plan=None, observe=False, warmup=0):
    """One functional run in *mode* with optional attachments; returns
    (observations, stats, predictor).  The workload is built fresh —
    Programs are stateful and must never be shared across runs."""
    observations = []
    predictor = create_predictor(config_factory(), backend)
    session = None
    if telemetry:
        session = TelemetrySession(predictor=predictor, interval=500,
                                   skip=warmup).begin(
            workload=workload, predictor="z15", seed=DEFAULT_TEST_SEED,
            branches=branches,
        )
    injector = FaultInjector(predictor, fault_plan) if fault_plan else None
    engine = FunctionalEngine(
        predictor,
        observer=observer_into(observations) if observe else None,
        telemetry=session,
        injector=injector,
        engine_mode=mode,
    )
    stats = engine.run_program(
        get_workload(workload, DEFAULT_TEST_SEED), max_branches=branches,
        warmup_branches=warmup, seed=DEFAULT_TEST_SEED,
    )
    return observations, stats, predictor


# ----------------------------------------------------------------------
# The matrix: workloads × backends × generations
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(STANDARD_WORKLOADS))
def test_suite_workload_cross_mode_equivalence(workload):
    """Every standard workload, object backend: identical stream,
    invariants, fingerprints and byte-identical checkpoints."""
    report = cross_mode_report(
        workload, branches=1200, seed=DEFAULT_TEST_SEED
    )
    assert report.clean, report.summary()
    assert report.branches_compared == 1200


@pytest.mark.parametrize("backend", ["object", "array"])
@pytest.mark.parametrize("generation", sorted(GENERATIONS))
def test_generation_cross_mode_equivalence(generation, backend):
    """Every generation preset on both backends — including configs with
    no BTB2, no SKOOT and no speculative overrides, which compile to
    genuinely different kernel shapes."""
    factory, _ = GENERATIONS[generation]
    report = cross_mode_report(
        "transactions", branches=1200, seed=DEFAULT_TEST_SEED,
        config_factory=factory, backend=backend,
    )
    assert report.clean, report.summary()


@pytest.mark.parametrize("generation", sorted(GENERATIONS))
def test_fast_mode_cross_backend_equivalence(generation):
    """The other diagonal of the matrix: object vs array compared while
    *both* run fast mode."""
    factory, _ = GENERATIONS[generation]
    report = cross_backend_report(
        "compute-kernel", branches=1200, seed=DEFAULT_TEST_SEED,
        config_factory=factory, engine_mode="fast",
    )
    assert report.clean, report.summary()


def test_fast_mode_replay_is_deterministic():
    report = replay_report("dispatch", branches=1200,
                           seed=DEFAULT_TEST_SEED, engine_mode="fast")
    assert report.clean, report.summary()


# ----------------------------------------------------------------------
# Attachments: observer, telemetry, fault injector, warmup
# ----------------------------------------------------------------------


def test_observed_kernels_match_reference_with_observer():
    obs_ref, stats_ref, pred_ref = _run_mode("reference", observe=True)
    obs_fast, stats_fast, pred_fast = _run_mode("fast", observe=True)
    assert obs_ref == obs_fast
    assert comparable_stats(stats_ref) == comparable_stats(stats_fast)
    assert predictor_fingerprint(pred_ref) == predictor_fingerprint(pred_fast)


def test_telemetry_session_matches_reference():
    """Telemetry harvests component counters mid-run, so the observed
    kernels must keep per-branch attribute updates visible — locals-only
    counter caching would silently zero every interval."""
    _, stats_ref, pred_ref = _run_mode("reference", telemetry=True,
                                       warmup=300)
    _, stats_fast, pred_fast = _run_mode("fast", telemetry=True, warmup=300)
    assert comparable_stats(stats_ref) == comparable_stats(stats_fast)
    assert predictor_fingerprint(pred_ref) == predictor_fingerprint(pred_fast)


def test_fault_injection_matches_reference():
    """The injector rides the observer seam and mutates tables between
    branches; the deterministic plan must fire identically in both
    modes, fault for fault."""
    plan = FaultPlan(seed=77, rate=0.02).validate()
    _, stats_ref, pred_ref = _run_mode(
        "reference", fault_plan=FaultPlan(seed=77, rate=0.02).validate()
    )
    _, stats_fast, pred_fast = _run_mode("fast", fault_plan=plan)
    assert comparable_stats(stats_ref) == comparable_stats(stats_fast)
    assert predictor_fingerprint(pred_ref) == predictor_fingerprint(pred_fast)


def test_warmup_split_matches_reference():
    """Warmup branches train but are not counted; the fast warmup kernel
    must hand the stream to the counted kernel at exactly the same
    branch."""
    _, stats_ref, pred_ref = _run_mode("reference", warmup=700,
                                       branches=1000)
    _, stats_fast, pred_fast = _run_mode("fast", warmup=700, branches=1000)
    assert stats_ref.branches == stats_fast.branches == 1000
    assert comparable_stats(stats_ref) == comparable_stats(stats_fast)
    assert predictor_fingerprint(pred_ref) == predictor_fingerprint(pred_fast)


# ----------------------------------------------------------------------
# The other entry points: run_branches, run_events, cycle engine
# ----------------------------------------------------------------------


def _recorded_branches(workload="services", count=800):
    """Materialise a branch list once, straight off the executor."""
    executor = Executor(get_workload(workload, DEFAULT_TEST_SEED),
                        seed=DEFAULT_TEST_SEED)
    return list(executor.run(max_branches=count))


def test_run_branches_matches_reference():
    branches = _recorded_branches()
    results = []
    for mode in ("reference", "fast"):
        predictor = create_predictor(z15_config(), "object")
        engine = FunctionalEngine(predictor, engine_mode=mode)
        stats = engine.run_branches(list(branches))
        results.append((comparable_stats(stats),
                        stats.instructions_approximate,
                        predictor_fingerprint(predictor)))
    assert results[0] == results[1]


def test_run_interleaved_matches_reference():
    """The events kernel handles ContextSwitch records inline; an
    interleaved multi-context run must commit identically."""
    results = []
    for mode in ("reference", "fast"):
        progs = [get_workload("compute-kernel", DEFAULT_TEST_SEED),
                 get_workload("dispatch", DEFAULT_TEST_SEED)]
        run = InterleavedRun(progs, quantum_branches=150,
                             seed=DEFAULT_TEST_SEED)
        predictor = create_predictor(z15_config(), "object")
        engine = FunctionalEngine(predictor, engine_mode=mode)
        stats = engine.run_interleaved(run, total_branches=900)
        results.append((comparable_stats(stats),
                        predictor_fingerprint(predictor)))
    assert results[0] == results[1]


@pytest.mark.parametrize("backend", ["object", "array"])
def test_cycle_engine_fast_mode_matches_reference(backend):
    results = []
    for mode in ("reference", "fast"):
        predictor = create_predictor(z15_config(), backend)
        engine = CycleEngine(predictor, engine_mode=mode)
        stats = engine.run_program(
            get_workload("transactions", DEFAULT_TEST_SEED),
            max_branches=900, seed=DEFAULT_TEST_SEED,
        )
        results.append((stats.cycles, comparable_stats(stats.accuracy),
                        predictor_fingerprint(predictor)))
    assert results[0] == results[1]


def test_cycle_cross_engine_report_in_fast_mode():
    report = cross_engine_report("compute-kernel", branches=600,
                                 seed=DEFAULT_TEST_SEED, engine_mode="fast")
    assert report.clean, report.summary()


# ----------------------------------------------------------------------
# The detector detects
# ----------------------------------------------------------------------


def _poison(predictor):
    """Preload one wrong BTB1 entry so the two runs genuinely diverge."""
    entry = BtbEntry(
        tag=0,
        offset=0,
        length=4,
        kind=BranchKind.UNCONDITIONAL_RELATIVE,
        target=0x9999,
        bht=TwoBitDirectionCounter(TwoBitDirectionCounter.STRONG_TAKEN),
    )
    predictor.btb1.install(0x4000, 0, entry)


def test_cross_mode_report_detects_divergence():
    report = cross_mode_report(
        "transactions", branches=800, seed=DEFAULT_TEST_SEED,
        prepare_right=_poison,
    )
    assert not report.clean
    assert (report.first_divergence is not None
            or report.aggregate_mismatches)
