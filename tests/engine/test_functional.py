"""Tests for the functional engine."""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.workloads import InterleavedRun, get_workload
from repro.workloads.executor import Executor
from repro.workloads.generators import loop_nest_program, pattern_program


def run(name, branches=4000, warmup=1000, seed=1):
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    return engine.run_program(get_workload(name, seed), max_branches=branches,
                              warmup_branches=warmup)


def test_stats_accounting_consistent():
    stats = run("compute-kernel")
    assert stats.branches == 4000
    assert stats.dynamic_predictions + stats.surprise_branches == stats.branches
    assert stats.instructions > stats.branches
    assert 0 <= stats.direction_accuracy <= 1.0
    assert stats.mpki >= 0


def test_predictable_workload_converges():
    stats = run("patterned")
    assert stats.direction_accuracy > 0.99
    assert stats.mpki < 1.0


def test_warmup_excluded_from_counts():
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    stats = engine.run_program(
        get_workload("compute-kernel"), max_branches=1000, warmup_branches=500
    )
    assert stats.branches == 1000


def test_run_branches_from_list():
    program = loop_nest_program(depths=(5, 3))
    branches = list(Executor(program).run(max_branches=500))
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    stats = engine.run_branches(branches, instructions=2000)
    assert stats.branches == 500
    assert stats.instructions == 2000


def test_run_branches_estimates_instructions():
    program = loop_nest_program(depths=(5, 3))
    branches = list(Executor(program).run(max_branches=100))
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    stats = engine.run_branches(branches)
    assert stats.instructions == 400  # 1-in-4 density assumption


def test_run_interleaved_multi_context():
    programs = [loop_nest_program(depths=(5, 3)),
                pattern_program([[True, False]])]
    run_obj = InterleavedRun(programs, quantum_branches=100, seed=2)
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    stats = engine.run_interleaved(run_obj, total_branches=800)
    assert stats.branches == 800
    assert engine.predictor.context_switches == 8
    assert stats.instructions == run_obj.instructions_executed


def test_report_renders():
    stats = run("patterned", branches=500, warmup=100)
    text = stats.report("patterned")
    assert "MPKI" in text
    assert "direction providers" in text
