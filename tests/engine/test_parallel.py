"""The parallel sweep runner's determinism contract.

A sweep fanned over worker processes must be indistinguishable from the
sequential loop it replaces: same per-cell stats (checked via the
differential suite's fingerprinting), same result order, and Program
inputs must come back untouched (each cell runs a pristine copy).
"""

import copy

from repro.configs import z15_config
from repro.engine.parallel import SweepCell, make_grid, run_cells
from repro.verification.differential import stats_fingerprint

from tests.conftest import (
    build_small_program,
    build_medium_program,
    small_predictor_config,
)


def _small_grid():
    return make_grid(
        configs=[("tiny", small_predictor_config()), ("z15", z15_config())],
        workloads=[build_small_program(), "compute-kernel"],
        seeds=(1, 7),
        branches=600,
        warmup=100,
    )


def test_parallel_matches_sequential_fingerprints():
    cells = _small_grid()
    sequential = run_cells(copy.deepcopy(cells), workers=1)
    parallel = run_cells(cells, workers=2)
    assert len(sequential) == len(parallel) == len(cells)
    for seq, par in zip(sequential, parallel):
        assert (seq.label, seq.workload, seq.seed) == (
            par.label, par.workload, par.seed
        )
        assert seq.fingerprint == par.fingerprint
        assert stats_fingerprint(seq.stats) == stats_fingerprint(par.stats)


def test_results_preserve_cell_order():
    cells = _small_grid()
    results = run_cells(cells, workers=2)
    assert [(r.label, r.workload, r.seed) for r in results] == [
        (c.label, c.workload_name, c.seed) for c in cells
    ]


def test_program_inputs_stay_pristine():
    # Behaviours are stateful; the runner must deep-copy Program inputs,
    # so running the same cell twice gives the same fingerprint.
    program = build_medium_program()
    cell = SweepCell(label="m", config=z15_config(), workload=program,
                     branches=500, warmup=0)
    first = run_cells([cell], workers=1)[0]
    second = run_cells([cell], workers=1)[0]
    assert first.fingerprint == second.fingerprint


def test_cycle_cells_fingerprint_identically():
    cells = [
        SweepCell(label="c", config=z15_config(), workload="compute-kernel",
                  branches=400, engine="cycle"),
        SweepCell(label="f", config=z15_config(), workload="compute-kernel",
                  branches=400, warmup=0, engine="functional"),
    ]
    sequential = run_cells(copy.deepcopy(cells), workers=1)
    parallel = run_cells(cells, workers=2)
    assert [r.fingerprint for r in sequential] == [
        r.fingerprint for r in parallel
    ]
    # The cycle cell really ran the cycle engine.
    assert sequential[0].stats.cycles > 0


def test_named_workloads_resolve_per_seed():
    cells = make_grid(
        configs=[("z15", z15_config())],
        workloads=["compute-kernel"],
        seeds=(1, 2),
        branches=400,
        warmup=0,
    )
    results = run_cells(cells, workers=1)
    assert results[0].seed == 1 and results[1].seed == 2
    # Each cell ran its own seed's workload and stats.
    assert all(r.stats.branches == 400 for r in results)


def test_telemetry_cells_do_not_change_results():
    # Satellite guarantee for PR 4: a sweep with telemetry attached is
    # fingerprint-identical to one without, sequentially and in workers.
    base = SweepCell(label="t", config=small_predictor_config(),
                     workload=build_medium_program(), branches=600,
                     warmup=100)
    instrumented = copy.deepcopy(base)
    instrumented.telemetry = True
    instrumented.telemetry_interval = 200
    sequential = run_cells([base, instrumented], workers=1)
    parallel = run_cells([copy.deepcopy(base),
                          copy.deepcopy(instrumented)], workers=2)
    fingerprints = {r.fingerprint for r in sequential + parallel}
    assert len(fingerprints) == 1
    assert sequential[0].telemetry is None
    for result in (sequential[1], parallel[1]):
        assert result.telemetry is not None
        assert result.telemetry["counters"]["engine.branches"] == 600
        assert len(result.telemetry["samples"]) == 3
    # The registry export itself is deterministic across worker counts.
    assert sequential[1].telemetry == parallel[1].telemetry


def test_cycle_cell_telemetry_counts_all_branches():
    cell = SweepCell(label="c", config=z15_config(),
                     workload="compute-kernel", branches=400,
                     engine="cycle", telemetry=True)
    plain = SweepCell(label="c", config=z15_config(),
                      workload="compute-kernel", branches=400,
                      engine="cycle")
    result, reference = run_cells([cell, plain], workers=1)
    assert result.fingerprint == reference.fingerprint
    # No warmup phase in the cycle engine: every branch is counted.
    assert result.telemetry["counters"]["engine.branches"] == 400
