"""The parallel sweep runner's determinism contract.

A sweep fanned over worker processes must be indistinguishable from the
sequential loop it replaces: same per-cell stats (checked via the
differential suite's fingerprinting), same result order, and Program
inputs must come back untouched (each cell runs a pristine copy).
"""

import copy

from repro.configs import z15_config
from repro.engine.parallel import SweepCell, make_grid, run_cells
from repro.verification.differential import stats_fingerprint

from tests.conftest import (
    build_small_program,
    build_medium_program,
    small_predictor_config,
)


def _small_grid():
    return make_grid(
        configs=[("tiny", small_predictor_config()), ("z15", z15_config())],
        workloads=[build_small_program(), "compute-kernel"],
        seeds=(1, 7),
        branches=600,
        warmup=100,
    )


def test_parallel_matches_sequential_fingerprints():
    cells = _small_grid()
    sequential = run_cells(copy.deepcopy(cells), workers=1)
    parallel = run_cells(cells, workers=2)
    assert len(sequential) == len(parallel) == len(cells)
    for seq, par in zip(sequential, parallel):
        assert (seq.label, seq.workload, seq.seed) == (
            par.label, par.workload, par.seed
        )
        assert seq.fingerprint == par.fingerprint
        assert stats_fingerprint(seq.stats) == stats_fingerprint(par.stats)


def test_results_preserve_cell_order():
    cells = _small_grid()
    results = run_cells(cells, workers=2)
    assert [(r.label, r.workload, r.seed) for r in results] == [
        (c.label, c.workload_name, c.seed) for c in cells
    ]


def test_mixed_backend_cells_fingerprint_identically():
    """A sweep mixing predictor backends must produce identical
    fingerprints per (config, workload, seed) — backends are equivalent,
    so `SweepCell.backend` can never change a result."""
    cells = [
        SweepCell(label=backend, config=z15_config(),
                  workload="compute-kernel", seed=3, branches=800,
                  warmup=100, backend=backend)
        for backend in ("object", "array")
    ]
    object_result, array_result = run_cells(cells, workers=2)
    assert object_result.fingerprint == array_result.fingerprint
    assert (stats_fingerprint(object_result.stats)
            == stats_fingerprint(array_result.stats))


def test_make_grid_stamps_backend_on_every_cell():
    grid = make_grid(
        configs=[("z15", z15_config())],
        workloads=["compute-kernel"],
        seeds=(1, 2),
        branches=400,
        warmup=0,
        backend="array",
    )
    assert all(cell.backend == "array" for cell in grid)
    results = run_cells(grid, workers=1)
    assert all(result.stats is not None for result in results)


def test_program_inputs_stay_pristine():
    # Behaviours are stateful; the runner must deep-copy Program inputs,
    # so running the same cell twice gives the same fingerprint.
    program = build_medium_program()
    cell = SweepCell(label="m", config=z15_config(), workload=program,
                     branches=500, warmup=0)
    first = run_cells([cell], workers=1)[0]
    second = run_cells([cell], workers=1)[0]
    assert first.fingerprint == second.fingerprint


def test_cycle_cells_fingerprint_identically():
    cells = [
        SweepCell(label="c", config=z15_config(), workload="compute-kernel",
                  branches=400, engine="cycle"),
        SweepCell(label="f", config=z15_config(), workload="compute-kernel",
                  branches=400, warmup=0, engine="functional"),
    ]
    sequential = run_cells(copy.deepcopy(cells), workers=1)
    parallel = run_cells(cells, workers=2)
    assert [r.fingerprint for r in sequential] == [
        r.fingerprint for r in parallel
    ]
    # The cycle cell really ran the cycle engine.
    assert sequential[0].stats.cycles > 0


def test_named_workloads_resolve_per_seed():
    cells = make_grid(
        configs=[("z15", z15_config())],
        workloads=["compute-kernel"],
        seeds=(1, 2),
        branches=400,
        warmup=0,
    )
    results = run_cells(cells, workers=1)
    assert results[0].seed == 1 and results[1].seed == 2
    # Each cell ran its own seed's workload and stats.
    assert all(r.stats.branches == 400 for r in results)


def test_telemetry_cells_do_not_change_results():
    # Satellite guarantee for PR 4: a sweep with telemetry attached is
    # fingerprint-identical to one without, sequentially and in workers.
    base = SweepCell(label="t", config=small_predictor_config(),
                     workload=build_medium_program(), branches=600,
                     warmup=100)
    instrumented = copy.deepcopy(base)
    instrumented.telemetry = True
    instrumented.telemetry_interval = 200
    sequential = run_cells([base, instrumented], workers=1)
    parallel = run_cells([copy.deepcopy(base),
                          copy.deepcopy(instrumented)], workers=2)
    fingerprints = {r.fingerprint for r in sequential + parallel}
    assert len(fingerprints) == 1
    assert sequential[0].telemetry is None
    for result in (sequential[1], parallel[1]):
        assert result.telemetry is not None
        assert result.telemetry["counters"]["engine.branches"] == 600
        assert len(result.telemetry["samples"]) == 3
    # The registry export itself is deterministic across worker counts.
    assert sequential[1].telemetry == parallel[1].telemetry


def test_cycle_cell_telemetry_counts_all_branches():
    cell = SweepCell(label="c", config=z15_config(),
                     workload="compute-kernel", branches=400,
                     engine="cycle", telemetry=True)
    plain = SweepCell(label="c", config=z15_config(),
                      workload="compute-kernel", branches=400,
                      engine="cycle")
    result, reference = run_cells([cell, plain], workers=1)
    assert result.fingerprint == reference.fingerprint
    # No warmup phase in the cycle engine: every branch is counted.
    assert result.telemetry["counters"]["engine.branches"] == 400


# ----------------------------------------------------------------------
# Hardening: failures surface as CellError rows, sweeps never abort
# ----------------------------------------------------------------------
#
# The preludes live at module level so they pickle into worker
# processes; each targets seed 2, leaving the neighbouring cells
# innocent — their fingerprints must match a clean baseline run.


def _tiny_cells():
    return [
        SweepCell(label="tiny", config=small_predictor_config(),
                  workload="compute-kernel", seed=seed, branches=400,
                  warmup=100)
        for seed in (1, 2, 3)
    ]


def _boom_prelude(cell):
    if cell.seed == 2:
        raise RuntimeError("injected cell failure")


def _crash_prelude(cell):
    if cell.seed == 2:
        import os

        os._exit(13)  # simulates a worker killed mid-cell


def _hang_prelude(cell):
    if cell.seed == 2:
        import time

        time.sleep(60)


def _flaky_prelude(marker, cell):
    """Fails the first attempt only — proves the retry path recovers."""
    import os

    if cell.seed == 2 and not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("transient failure")


def _baseline_fingerprints():
    return [r.fingerprint for r in run_cells(_tiny_cells(), workers=1)]


def test_failing_cell_becomes_error_row_sequential():
    cells = _tiny_cells()
    cells[1].prelude = _boom_prelude
    results = run_cells(cells, workers=1, retries=1, backoff=0.0)
    error = results[1]
    assert error.kind == "error"
    assert error.attempts == 2  # first try + one retry
    assert "injected cell failure" in error.message
    assert error.stats is None
    assert error.fingerprint == "cell-error:error"
    baseline = _baseline_fingerprints()
    assert [results[0].fingerprint, results[2].fingerprint] == [
        baseline[0], baseline[2]
    ]


def test_failing_cell_becomes_error_row_parallel():
    cells = _tiny_cells()
    cells[1].prelude = _boom_prelude
    results = run_cells(cells, workers=2, retries=1, backoff=0.0)
    assert results[1].kind == "error"
    assert results[1].attempts == 2
    baseline = _baseline_fingerprints()
    assert [results[0].fingerprint, results[2].fingerprint] == [
        baseline[0], baseline[2]
    ]


def test_crashed_worker_is_isolated_and_attributed():
    cells = _tiny_cells()
    cells[1].prelude = _crash_prelude
    results = run_cells(cells, workers=2, retries=1, backoff=0.0)
    assert results[1].kind == "crash"
    assert results[1].stats is None
    # Innocent neighbours still complete with baseline-identical stats.
    baseline = _baseline_fingerprints()
    assert [results[0].fingerprint, results[2].fingerprint] == [
        baseline[0], baseline[2]
    ]


def test_hung_worker_times_out():
    cells = _tiny_cells()
    cells[1].prelude = _hang_prelude
    results = run_cells(cells, workers=2, timeout=3.0, retries=0,
                        backoff=0.0)
    assert results[1].kind == "timeout"
    assert "3.0" in results[1].message
    baseline = _baseline_fingerprints()
    assert [results[0].fingerprint, results[2].fingerprint] == [
        baseline[0], baseline[2]
    ]


def test_retry_recovers_transient_failure(tmp_path):
    import functools

    cells = _tiny_cells()
    cells[1].prelude = functools.partial(
        _flaky_prelude, str(tmp_path / "attempted.marker")
    )
    results = run_cells(cells, workers=1, retries=1, backoff=0.0)
    # The flaky cell recovered on retry: a full SweepResult, identical
    # to what a clean run produces (retries preserve determinism).
    baseline = _baseline_fingerprints()
    assert [r.fingerprint for r in results] == baseline


def test_fault_plan_rides_cells_and_rate_zero_is_identity():
    from repro.resilience import FaultPlan

    clean = _tiny_cells()
    faulted = _tiny_cells()
    for cell in faulted:
        cell.fault_plan = FaultPlan(seed=5, rate=0.02)
    inert = _tiny_cells()
    for cell in inert:
        cell.fault_plan = FaultPlan(seed=5, rate=0.0)
    clean_results = run_cells(clean, workers=1)
    faulted_results = run_cells(faulted, workers=2)
    inert_results = run_cells(inert, workers=1)
    for result in faulted_results:
        assert result.faults is not None
        assert result.faults["branches_seen"] == 500  # branches + warmup
    # rate=0: the injector rides along but never perturbs the run.
    assert [r.fingerprint for r in inert_results] == [
        r.fingerprint for r in clean_results
    ]
    assert all(r.faults["injected"] == 0 for r in inert_results)
