"""Tests for the cycle engine's two-thread SMT2 mode."""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import CycleEngine
from repro.workloads import get_workload
from repro.workloads.generators import loop_nest_program, pattern_program


def run_smt2(branches=4000, **engine_kwargs):
    engine = CycleEngine(LookaheadBranchPredictor(z15_config()), smt2=True,
                         **engine_kwargs)
    stats = engine.run_smt2(
        loop_nest_program(depths=(8, 4), start=0x20000),
        pattern_program([[True, False]], start=0x90000),
        max_branches=branches,
    )
    return stats, engine


def test_basic_accounting():
    stats, engine = run_smt2()
    assert stats.branches == 4000
    assert stats.instructions > stats.branches
    assert stats.cycles > 0
    assert stats.accuracy.branches == 4000


def test_cycles_track_slower_thread():
    stats, engine = run_smt2()
    clocks = list(engine._clocks.values())
    assert len(clocks) == 2
    assert stats.cycles == int(max(clock.now for clock in clocks))


def test_both_threads_make_progress():
    _, engine = run_smt2()
    for clock in engine._clocks.values():
        assert clock.now > 0


def test_smt2_combined_throughput_beats_one_thread():
    single_engine = CycleEngine(LookaheadBranchPredictor(z15_config()),
                                smt2=False)
    single = single_engine.run_program(
        loop_nest_program(depths=(8, 4), start=0x20000), max_branches=2000
    )
    smt2, _ = run_smt2(branches=4000)
    assert smt2.ipc > single.ipc


def test_accuracy_remains_high_for_predictable_threads():
    stats, _ = run_smt2()
    assert stats.accuracy.direction_accuracy > 0.95
