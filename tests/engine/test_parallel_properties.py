"""Property battery: a random sweep grid run through the warm pool is
byte-identical to the sequential loop, whatever the grid shape.

Hypothesis draws the whole execution geometry — grid composition
(concrete Programs and named suite workloads, mixed backends, telemetry
cells, fault-plan cells, functional and cycle engines), chunk size and
worker count — and the property is always the same string comparison:
the parallel fingerprint list equals the sequential one, row for row.

Examples are kept deliberately tiny (hundreds of branches, a handful of
cells) because every example spawns a real process pool; the value is
in the geometry coverage, not the cell size.
"""

import copy

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configs import z15_config
from repro.engine.parallel import SweepCell, run_cells
from repro.resilience import FaultPlan

from tests.conftest import (
    build_medium_program,
    build_small_program,
    small_predictor_config,
)

_CONFIGS = {
    "tiny": small_predictor_config,
    "z15": z15_config,
}

#: Workload axis: two concrete Program builders plus named suite
#: workloads resolved per (name, seed) inside the cell body.
_WORKLOADS = ("small-program", "medium-program", "compute-kernel",
              "dispatch")


def _workload_for(name: str, seed: int):
    if name == "small-program":
        return build_small_program()
    if name == "medium-program":
        return build_medium_program(seed=seed)
    return name


@st.composite
def sweep_cells(draw):
    """One random cell: every axis the fleet grid crosses, in miniature."""
    config_name = draw(st.sampled_from(sorted(_CONFIGS)))
    workload_name = draw(st.sampled_from(_WORKLOADS))
    seed = draw(st.integers(min_value=1, max_value=50))
    engine = draw(st.sampled_from(["functional", "functional", "cycle"]))
    telemetry = draw(st.booleans())
    faulted = draw(st.booleans())
    return SweepCell(
        label=config_name,
        config=_CONFIGS[config_name](),
        workload=_workload_for(workload_name, seed),
        seed=seed,
        branches=draw(st.sampled_from([150, 200, 300])),
        warmup=draw(st.sampled_from([0, 50])),
        engine=engine,
        backend=draw(st.sampled_from(["object", "array"])),
        telemetry=telemetry,
        telemetry_interval=draw(st.sampled_from([0, 100])) if telemetry
        else 0,
        fault_plan=FaultPlan(seed=seed, rate=draw(
            st.sampled_from([0.0, 0.02]))) if faulted else None,
    )


@st.composite
def sweep_geometry(draw):
    cells = draw(st.lists(sweep_cells(), min_size=2, max_size=5))
    chunk_size = draw(st.integers(min_value=1, max_value=4))
    workers = draw(st.sampled_from([2, 2, 3]))
    return cells, chunk_size, workers


@given(sweep_geometry())
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_grid_parallel_matches_sequential(geometry):
    cells, chunk_size, workers = geometry
    sequential = run_cells(copy.deepcopy(cells), workers=1)
    parallel = run_cells(cells, workers=workers, chunk_size=chunk_size)
    assert [r.fingerprint for r in parallel] == [
        r.fingerprint for r in sequential
    ]
    # Row identity (not just digests) survives the fan-out: telemetry
    # exports and fault counters are observer data, but they too must be
    # deterministic across worker counts.
    for seq, par in zip(sequential, parallel):
        assert (seq.label, seq.workload, seq.seed) == (
            par.label, par.workload, par.seed
        )
        assert seq.telemetry == par.telemetry
        assert seq.faults == par.faults


@given(chunk_size=st.integers(min_value=1, max_value=6),
       workers=st.sampled_from([1, 2, 4]))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fixed_grid_invariant_to_execution_geometry(chunk_size, workers):
    """Same fixed grid, every (chunk_size, workers) drawn: one canonical
    fingerprint list."""
    program = build_medium_program(seed=9)
    config = small_predictor_config()
    cells = [
        SweepCell(label="geo", config=config, workload=program,
                  seed=seed, branches=250, warmup=50)
        for seed in (1, 2, 3, 4)
    ]
    reference = run_cells(copy.deepcopy(cells), workers=1)
    results = run_cells(cells, workers=workers, chunk_size=chunk_size)
    assert [r.fingerprint for r in results] == [
        r.fingerprint for r in reference
    ]
