"""The cross-backend differential battery.

The array backend (:mod:`repro.engine.array`) claims bit-identical
behaviour to the object reference model.  This module is the proof: for
every workload-suite generator and every predictor generation, the same
stimulus through both backends must commit the same branch stream, the
same :class:`~repro.stats.metrics.RunStats` invariants, and the same
final learned table state — and the comparison machinery itself is
tested to *detect* seeded divergence, so a clean battery means
equivalence, not a broken detector.

Hypothesis properties extend the directed sweep to randomly shaped
programs and raw incoherent event streams (the shared strategies from
``tests/conftest.py``), where hand-picked workloads have no coverage.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configs import GENERATIONS, z15_config
from repro.core.entries import BtbEntry
from repro.core.predictor import LookaheadBranchPredictor
from repro.engine import FunctionalEngine, create_predictor, predictor_class
from repro.engine.array import ArrayLookaheadBranchPredictor
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter
from repro.verification.differential import (
    BranchObservation,
    comparable_stats,
    cross_backend_report,
    cross_engine_report,
    observer_into,
    predictor_fingerprint,
    state_roundtrip_report,
)
from repro.workloads import STANDARD_WORKLOADS, get_workload
from tests.conftest import (
    DEFAULT_TEST_SEED,
    branch_events,
    dynamic_branch_from_event,
    program_shapes,
    small_predictor_config,
)


def _run_backend(backend, program, branches, config=None, seed=DEFAULT_TEST_SEED):
    """One functional run; returns (observations, stats, predictor)."""
    observations = []
    predictor = create_predictor(config or z15_config(), backend)
    engine = FunctionalEngine(predictor, observer=observer_into(observations))
    stats = engine.run_program(program, max_branches=branches, seed=seed)
    return observations, stats, predictor


# ----------------------------------------------------------------------
# Every workload generator, both backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(STANDARD_WORKLOADS))
def test_suite_workload_equivalence(workload):
    """Every standard workload: identical committed stream, identical
    invariants, identical final table fingerprints, clean audits."""
    report = cross_backend_report(
        workload, branches=1500, seed=DEFAULT_TEST_SEED
    )
    assert report.clean, report.summary()
    assert report.branches_compared == 1500


@pytest.mark.parametrize("generation", sorted(GENERATIONS))
def test_generation_equivalence(generation):
    """Every generation preset — including the ones with no BTB2, no
    long-history TAGE table or no perceptron — stays equivalent."""
    factory, _info = GENERATIONS[generation]
    report = cross_backend_report(
        "transactions", branches=1500, seed=DEFAULT_TEST_SEED,
        config_factory=factory,
    )
    assert report.clean, report.summary()


@pytest.mark.parametrize("generation", sorted(GENERATIONS))
def test_generation_array_cross_engine(generation):
    """The array backend composes with the cycle engine too: functional
    vs cycle on the array backend agrees for every generation."""
    factory, _info = GENERATIONS[generation]
    report = cross_engine_report(
        "compute-kernel", branches=600, seed=DEFAULT_TEST_SEED,
        config_factory=factory, backend="array",
    )
    assert report.clean, report.summary()


def test_stats_are_byte_identical_not_just_clean():
    """Belt and braces: compare the raw comparable_stats dicts and the
    observation streams directly, not only through the report object."""
    program = get_workload("patterned", DEFAULT_TEST_SEED)
    obs_o, stats_o, pred_o = _run_backend("object", program, 2000)
    program = get_workload("patterned", DEFAULT_TEST_SEED)
    obs_a, stats_a, pred_a = _run_backend("array", program, 2000)
    assert obs_o == obs_a
    assert comparable_stats(stats_o) == comparable_stats(stats_a)
    assert predictor_fingerprint(pred_o) == predictor_fingerprint(pred_a)
    assert pred_a.audit() == []


# ----------------------------------------------------------------------
# The detector detects
# ----------------------------------------------------------------------


def _poison_btb1(predictor):
    """Preload one wrong entry so the backends genuinely diverge."""
    entry = BtbEntry(
        tag=0,
        offset=0,
        length=4,
        kind=BranchKind.UNCONDITIONAL_RELATIVE,
        target=0x9999,
        bht=TwoBitDirectionCounter(TwoBitDirectionCounter.STRONG_TAKEN),
    )
    predictor.btb1.install(0x4000, 0, entry)


def test_cross_backend_report_detects_divergence():
    report = cross_backend_report(
        "compute-kernel", branches=500, seed=DEFAULT_TEST_SEED,
        prepare_right=_poison_btb1,
    )
    assert not report.clean


def test_cross_backend_fingerprint_mismatch_is_reported():
    """Divergence that only shows in learned state (not the stream)
    still fails: poison a row the workload never reaches."""

    def poison_far_away(predictor):
        entry = BtbEntry(
            tag=0,
            offset=2,
            length=4,
            kind=BranchKind.CONDITIONAL_RELATIVE,
            target=0x700000,
            bht=TwoBitDirectionCounter(TwoBitDirectionCounter.STRONG_NOT_TAKEN),
        )
        predictor.btb1.install(0x6FF000, 3, entry)

    report = cross_backend_report(
        "compute-kernel", branches=200, seed=DEFAULT_TEST_SEED,
        prepare_right=poison_far_away,
    )
    assert not report.clean
    assert any(
        metric == "predictor_fingerprint"
        for metric, _l, _r in report.aggregate_mismatches
    )


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------


def test_predictor_class_registry():
    assert predictor_class("object") is LookaheadBranchPredictor
    assert predictor_class("array") is ArrayLookaheadBranchPredictor
    assert ArrayLookaheadBranchPredictor.backend == "array"
    assert LookaheadBranchPredictor.backend == "object"
    with pytest.raises(ValueError, match="unknown predictor backend"):
        predictor_class("vectorised")


def test_create_predictor_builds_array_structures():
    from repro.structures.arrays import (
        ArrayBtb1,
        ArrayBtb2,
        ArrayPerceptron,
        ArrayTagePht,
    )

    predictor = create_predictor(z15_config(), "array")
    assert isinstance(predictor.btb1, ArrayBtb1)
    assert isinstance(predictor.btb2, ArrayBtb2)
    assert isinstance(predictor.tage, ArrayTagePht)
    assert isinstance(predictor.perceptron, ArrayPerceptron)


# ----------------------------------------------------------------------
# State round-trips across backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("save_backend,restore_backend", [
    ("array", None),        # array through itself
    ("object", "array"),    # object state into the array backend
    ("array", "object"),    # array state into the object backend
])
def test_state_roundtrip_across_backends(save_backend, restore_backend):
    _obs, _stats, warmed = _run_backend(
        save_backend, get_workload("transactions", DEFAULT_TEST_SEED), 2500
    )
    report = state_roundtrip_report(
        warmed, label=save_backend, restore_backend=restore_backend
    )
    assert report.clean, report.summary()


def test_cross_restored_predictors_run_identically(tmp_path):
    """An object checkpoint restored into each backend must produce the
    same downstream committed stream — warm state transfers exactly."""
    from repro.core import load_state, save_state

    _obs, _stats, warmed = _run_backend(
        "object", get_workload("transactions", DEFAULT_TEST_SEED), 2500
    )
    path = tmp_path / "state.json"
    save_state(warmed, path)

    streams = {}
    for backend in ("object", "array"):
        predictor = create_predictor(z15_config(), backend)
        load_state(predictor, path)
        observations = []
        engine = FunctionalEngine(
            predictor, observer=observer_into(observations)
        )
        engine.run_program(
            get_workload("transactions", DEFAULT_TEST_SEED),
            max_branches=1500, seed=DEFAULT_TEST_SEED,
        )
        streams[backend] = (observations, predictor_fingerprint(predictor))
    assert streams["object"] == streams["array"]


# ----------------------------------------------------------------------
# Hypothesis properties (shared strategies, `ci` profile in CI)
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(program=program_shapes(), seed=st.integers(min_value=0, max_value=999))
def test_random_programs_are_equivalent(program, seed):
    """Any runnable program shape: identical streams and fingerprints on
    the tiny config (fast, and eviction-heavy by construction)."""
    # Behavior objects (Loop counters etc.) are stateful; each run gets
    # its own copy so both backends see the same ground-truth stream.
    obs_o, stats_o, pred_o = _run_backend(
        "object", copy.deepcopy(program), 300,
        config=small_predictor_config(), seed=seed,
    )
    obs_a, stats_a, pred_a = _run_backend(
        "array", copy.deepcopy(program), 300,
        config=small_predictor_config(), seed=seed,
    )
    assert obs_o == obs_a
    assert comparable_stats(stats_o) == comparable_stats(stats_a)
    assert predictor_fingerprint(pred_o) == predictor_fingerprint(pred_a)
    assert pred_a.audit() == []


@settings(max_examples=20, deadline=None)
@given(events=st.lists(branch_events(), min_size=1, max_size=60))
def test_incoherent_event_streams_are_equivalent(events):
    """Raw stream-incoherent branch events — aliasing, thread mixing,
    context churn — through ``run_events`` on both backends."""
    results = {}
    for backend in ("object", "array"):
        observations = []
        predictor = create_predictor(small_predictor_config(), backend)
        engine = FunctionalEngine(
            predictor, observer=observer_into(observations)
        )
        stats = engine.run_events(
            dynamic_branch_from_event(index, event)
            for index, event in enumerate(events)
        )
        results[backend] = (
            observations,
            comparable_stats(stats),
            predictor_fingerprint(predictor),
            predictor.audit(),
        )
    assert results["object"] == results["array"]
    assert results["array"][3] == []


def test_observation_dataclass_equality_is_meaningful():
    """The battery compares BranchObservation values; make sure two
    differing observations actually compare unequal."""
    kwargs = dict(
        index=0, address=0x100, taken=True, predicted_taken=True,
        predicted_target=0x200, dynamic=True, mispredict_class="correct",
    )
    assert BranchObservation(**kwargs) == BranchObservation(**kwargs)
    assert BranchObservation(**{**kwargs, "predicted_taken": False}) != (
        BranchObservation(**kwargs)
    )
