"""Tests for the differential verification harness.

Covers the three check families (cross-engine equivalence, deterministic
replay, baseline cross-validation), proves the harness actually *detects*
divergence when a predictor table is corrupted, and sweeps randomized
programs through both engines with hypothesis.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LookaheadBranchPredictor
from repro.core.entries import BtbEntry
from repro.engine import CycleEngine, FunctionalEngine
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter
from repro.verification.differential import (
    BASELINE_EXPECTATIONS,
    DIRECTED_FAMILIES,
    BranchObservation,
    Divergence,
    DivergenceReport,
    always_taken_loop_program,
    cross_engine_report,
    cross_validate_baselines,
    diff_observations,
    observer_into,
    predictor_fingerprint,
    replay_report,
    run_differential_suite,
    state_roundtrip_report,
    stats_fingerprint,
)
from repro.workloads import get_workload

from tests.conftest import (
    DEFAULT_TEST_SEED,
    program_shapes,
    small_predictor_config,
)

#: Fast-but-representative workload families for cross-engine checks.
FAMILIES = ("compute-kernel", "services", "dispatch")


# ----------------------------------------------------------------------
# Cross-engine equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workload", FAMILIES)
def test_cross_engine_clean_on_standard_families(workload):
    report = cross_engine_report(workload, branches=800,
                                 seed=DEFAULT_TEST_SEED)
    assert report.clean, report.summary()
    assert report.branches_compared == 800
    assert report.first_divergence is None
    assert report.aggregate_mismatches == []


def test_cross_engine_observers_see_identical_streams():
    """The per-branch observation streams themselves must be equal, not
    just hash-equal aggregates."""
    program = get_workload("patterned", DEFAULT_TEST_SEED)
    functional_obs, cycle_obs = [], []
    from repro.configs import z15_config

    FunctionalEngine(
        LookaheadBranchPredictor(z15_config()),
        observer=observer_into(functional_obs),
    ).run_program(program, max_branches=400, seed=DEFAULT_TEST_SEED)
    CycleEngine(
        LookaheadBranchPredictor(z15_config()),
        observer=observer_into(cycle_obs),
    ).run_program(get_workload("patterned", DEFAULT_TEST_SEED),
                  max_branches=400, seed=DEFAULT_TEST_SEED)
    assert functional_obs == cycle_obs


def test_corrupted_table_produces_named_divergence():
    """Poisoning one BTB1 entry on the cycle side must surface as a
    DivergenceReport naming the first diverging branch."""
    program = always_taken_loop_program()
    branch_address = 0x4010  # start + 4 straight instructions

    def corrupt(predictor):
        poison = BtbEntry(
            tag=0,
            offset=0,
            length=4,
            kind=BranchKind.CONDITIONAL_RELATIVE,
            target=0x9999 & ~1,
            bht=TwoBitDirectionCounter(
                TwoBitDirectionCounter.STRONG_NOT_TAKEN
            ),
        )
        predictor.btb1.install(branch_address, 0, poison)

    report = cross_engine_report(
        program, branches=200, seed=DEFAULT_TEST_SEED, prepare_cycle=corrupt
    )
    assert not report.clean
    assert report.first_divergence is not None
    assert report.first_divergence.address == branch_address
    assert report.first_divergence.index == 0
    summary = report.summary()
    assert "DIVERGED" in summary
    assert hex(branch_address) in summary


def test_corruption_on_functional_side_also_detected():
    program = always_taken_loop_program()

    def corrupt(predictor):
        poison = BtbEntry(
            tag=0, offset=0, length=4,
            kind=BranchKind.CONDITIONAL_RELATIVE, target=0x4000,
            bht=TwoBitDirectionCounter(
                TwoBitDirectionCounter.STRONG_NOT_TAKEN
            ),
        )
        predictor.btb1.install(0x4010, 0, poison)

    report = cross_engine_report(
        program, branches=100, seed=DEFAULT_TEST_SEED,
        prepare_functional=corrupt,
    )
    assert not report.clean
    assert report.first_divergence is not None


# ----------------------------------------------------------------------
# Divergence localisation plumbing
# ----------------------------------------------------------------------


def _observation(index, **overrides):
    values = dict(
        index=index,
        address=0x1000 + index * 4,
        taken=True,
        predicted_taken=True,
        predicted_target=0x2000,
        dynamic=True,
        mispredict_class="none",
    )
    values.update(overrides)
    return BranchObservation(**values)


def test_diff_observations_finds_first_mismatch():
    left = [_observation(0), _observation(1), _observation(2)]
    right = [
        _observation(0),
        _observation(1, predicted_taken=False, mispredict_class="surprise-taken"),
        _observation(2, taken=False),
    ]
    divergence = diff_observations(left, right)
    assert divergence is not None
    assert divergence.index == 1
    assert divergence.field == "predicted_taken"
    assert divergence.left is True and divergence.right is False
    assert "#1" in divergence.describe()


def test_diff_observations_reports_length_mismatch():
    left = [_observation(0)]
    right = [_observation(0), _observation(1)]
    divergence = diff_observations(left, right)
    assert divergence is not None
    assert divergence.field == "stream_length"
    assert (divergence.left, divergence.right) == (1, 2)


def test_diff_observations_equal_streams():
    stream = [_observation(i) for i in range(5)]
    assert diff_observations(stream, list(stream)) is None


def test_divergence_report_summary_shapes():
    report = DivergenceReport(title="t", left_label="a", right_label="b")
    assert report.clean
    assert "CLEAN" in report.summary()
    report.first_divergence = Divergence(
        index=3, address=0x40, field="taken", left=True, right=False
    )
    report.aggregate_mismatches.append(("branches", 10, 11))
    assert not report.clean
    summary = report.summary()
    assert "DIVERGED" in summary and "branches" in summary


# ----------------------------------------------------------------------
# Deterministic replay
# ----------------------------------------------------------------------


def test_replay_is_bit_identical():
    report = replay_report("services", branches=600, seed=DEFAULT_TEST_SEED)
    assert report.clean, report.summary()


def test_stats_and_predictor_fingerprints_are_stable():
    def run():
        from repro.configs import z15_config

        predictor = LookaheadBranchPredictor(z15_config())
        engine = FunctionalEngine(predictor)
        stats = engine.run_program(
            get_workload("dispatch", DEFAULT_TEST_SEED),
            max_branches=500, seed=DEFAULT_TEST_SEED,
        )
        return stats_fingerprint(stats), predictor_fingerprint(predictor)

    assert run() == run()


def test_predictor_fingerprint_changes_with_state():
    predictor = LookaheadBranchPredictor(small_predictor_config())
    before = predictor_fingerprint(predictor)
    entry = BtbEntry(
        tag=0, offset=0, length=4,
        kind=BranchKind.UNCONDITIONAL_RELATIVE, target=0x2000,
    )
    predictor.btb1.install(0x1000, 0, entry)
    assert predictor_fingerprint(predictor) != before


def test_state_roundtrip_report_clean_on_warmed_predictor():
    from repro.configs import z15_config

    predictor = LookaheadBranchPredictor(z15_config())
    FunctionalEngine(predictor).run_program(
        get_workload("transactions", DEFAULT_TEST_SEED),
        max_branches=2000, seed=DEFAULT_TEST_SEED,
    )
    report = state_roundtrip_report(predictor, label="warmed")
    assert report.clean, report.summary()


# ----------------------------------------------------------------------
# Baseline cross-validation
# ----------------------------------------------------------------------


def test_expectation_table_covers_every_family():
    assert set(BASELINE_EXPECTATIONS) == set(DIRECTED_FAMILIES)


def test_cross_validate_baselines_all_pass():
    checks = cross_validate_baselines(seed=DEFAULT_TEST_SEED,
                                      branches=1200, warmup=400)
    failing = [check.describe() for check in checks if not check.ok]
    assert not failing, "\n".join(failing)
    # Every (family, predictor) expectation actually ran.
    expected_count = sum(
        1 for family in BASELINE_EXPECTATIONS
        for minimum in BASELINE_EXPECTATIONS[family].values()
        if minimum is not None
    )
    assert len(checks) == expected_count


def test_directed_families_have_the_advertised_shape():
    """The always-taken family really is 100% taken branches."""
    from repro.workloads.executor import Executor

    program = always_taken_loop_program()
    executor = Executor(program, seed=DEFAULT_TEST_SEED)
    outcomes = [branch.taken for branch in executor.run(max_branches=50)]
    assert all(outcomes)


# ----------------------------------------------------------------------
# The full suite
# ----------------------------------------------------------------------


def test_run_differential_suite_clean_and_summarised():
    result = run_differential_suite(
        seed=DEFAULT_TEST_SEED, branches=600,
        workloads=("compute-kernel", "services", "dispatch"),
    )
    assert result.clean
    assert result.divergence_count == 0
    # Per workload: cross-engine x (2 backends x 2 modes) + cross-mode
    # x 2 backends + cross-backend x 2 modes = 24, then replay x
    # (2 backends x 2 modes), 2 self round-trips and 2 cross-restores.
    assert len(result.reports) == 32
    summary = result.summary()
    assert "verdict: CLEAN" in summary
    assert summary.count("[CLEAN]") == 32
    assert "[array backend]" in summary
    assert "cross-backend" in summary
    assert "cross-mode" in summary
    assert "[fast mode]" in summary


def test_run_differential_suite_single_backend_shape():
    # The pre-array report structure is still reachable explicitly.
    result = run_differential_suite(
        seed=DEFAULT_TEST_SEED, branches=600,
        workloads=("compute-kernel", "services", "dispatch"),
        backends=("object",),
        engine_modes=("reference",),
    )
    assert result.clean
    # 3 cross-engine + replay + state round-trip.
    assert len(result.reports) == 5
    assert "cross-backend" not in result.summary()
    assert "cross-mode" not in result.summary()


def test_cli_verify_diff_exits_zero(capsys):
    from repro.__main__ import main

    main(["verify-diff", "--seed", "1234", "--branches", "500",
          "--workloads", "compute-kernel", "services", "patterned"])
    out = capsys.readouterr().out
    assert "verdict: CLEAN" in out
    assert "baseline cross-validation" in out


# ----------------------------------------------------------------------
# Hypothesis sweeps (randomized program shapes through both engines)
# ----------------------------------------------------------------------


@pytest.mark.slow
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program_shapes(), st.integers(min_value=0, max_value=2**16))
def test_random_programs_cross_engine_equivalent(program, seed):
    report = cross_engine_report(
        program, branches=250, seed=seed,
        config_factory=small_predictor_config,
    )
    assert report.clean, report.summary()


@pytest.mark.slow
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program_shapes(), st.integers(min_value=0, max_value=2**16))
def test_random_programs_replay_deterministically(program, seed):
    report = replay_report(
        program, branches=250, seed=seed,
        config_factory=small_predictor_config,
    )
    assert report.clean, report.summary()


@pytest.mark.slow
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=2**16))
def test_random_seeds_state_roundtrip_byte_identical(seed):
    predictor = LookaheadBranchPredictor(small_predictor_config())
    FunctionalEngine(predictor).run_program(
        get_workload("footprint-small", seed), max_branches=400, seed=seed
    )
    report = state_roundtrip_report(predictor, label=f"seed={seed}")
    assert report.clean, report.summary()
