"""Tests for the white-box verification environment."""

import pytest

from repro.common.errors import VerificationError
from repro.configs import z15_config
from repro.configs.predictor import Btb1Config, PredictorConfig
from repro.core import LookaheadBranchPredictor
from repro.core.entries import BtbEntry
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter
from repro.verification import (
    BtbInterfaceMonitor,
    StimulusConstraints,
    VerificationEnvironment,
    preload_from_branches,
    preload_random,
)
from repro.workloads.executor import Executor
from repro.workloads.generators import loop_nest_program


def small_dut():
    return LookaheadBranchPredictor(
        PredictorConfig(btb1=Btb1Config(rows=64, ways=4, policy="lru"),
                        name="dut").validate()
    )


def entry_for(target=0x9000):
    return BtbEntry(tag=0, offset=0, length=4,
                    kind=BranchKind.CONDITIONAL_RELATIVE, target=target,
                    bht=TwoBitDirectionCounter(2))


class TestMonitorTracking:
    def test_mirror_follows_installs(self):
        dut = small_dut()
        monitor = BtbInterfaceMonitor(dut.btb1)
        dut.btb1.install(0x1000, 0, entry_for())
        dut.btb1.install(0x2000, 0, entry_for())
        assert monitor.mirror.occupancy() == 2
        assert monitor.install_transactions == 2

    def test_mirror_follows_removals(self):
        dut = small_dut()
        monitor = BtbInterfaceMonitor(dut.btb1)
        dut.btb1.install(0x1000, 0, entry_for())
        hit = dut.btb1.lookup(0x1000, 0)
        dut.btb1.remove(hit)
        assert monitor.mirror.occupancy() == 0

    def test_clean_traffic_produces_no_failures(self):
        dut = small_dut()
        monitor = BtbInterfaceMonitor(dut.btb1)
        for index in range(50):
            dut.btb1.install(0x1000 + index * 8, 0, entry_for())
            dut.btb1.search_line(0x1000 + index * 8, 0)
        monitor.checkpoint()
        assert not monitor.failures
        monitor.assert_clean()

    def test_detach_stops_tracking(self):
        dut = small_dut()
        monitor = BtbInterfaceMonitor(dut.btb1)
        monitor.detach()
        dut.btb1.install(0x1000, 0, entry_for())
        assert monitor.install_transactions == 0


class TestFaultDetection:
    """Inject real defects and prove the checkers catch them — the point
    of white-box verification."""

    def test_checkpoint_catches_silent_corruption(self):
        dut = small_dut()
        monitor = BtbInterfaceMonitor(dut.btb1)
        result = dut.btb1.install(0x1000, 0, entry_for())
        # Corrupt the array behind the monitor's back (a "hardware bug").
        dut.btb1._table.invalidate(result.row, result.way)
        monitor.checkpoint()
        assert monitor.failures
        with pytest.raises(VerificationError):
            monitor.assert_clean()

    def test_read_side_catches_phantom_hits(self):
        dut = small_dut()
        monitor = BtbInterfaceMonitor(dut.btb1)
        result = dut.btb1.install(0x1000, 0, entry_for())
        # Corrupt the stored tag so searches report a mismatching hit.
        entry = dut.btb1.entry_at(result.row, result.way)
        entry.offset = 62  # silently moved
        dut.btb1.search_line(0x1000, 0)
        assert any(f.checker == "read-side" for f in monitor.failures)

    def test_write_side_catches_duplicates(self):
        dut = small_dut()
        monitor = BtbInterfaceMonitor(dut.btb1)
        dut.btb1.install(0x1000, 0, entry_for())
        # Bypass the dedup port to force a duplicate (defect injection).
        dup = entry_for()
        dup.tag = dut.btb1.tag_of(0x1000, 0)
        dup.offset = 0
        dup.line_base = 0x1000
        row = dut.btb1.row_of(0x1000)
        dut.btb1._table.write(row, 3, dup)
        # The next legitimate install attempt on that address must be
        # flagged: the mirror sees one copy, the hardware has two.
        monitor.checkpoint()
        assert monitor.failures

    def test_checkers_can_be_disabled(self):
        dut = small_dut()
        monitor = BtbInterfaceMonitor(dut.btb1, enabled_checkers=set())
        result = dut.btb1.install(0x1000, 0, entry_for())
        entry = dut.btb1.entry_at(result.row, result.way)
        entry.offset = 62
        dut.btb1.search_line(0x1000, 0)
        assert not monitor.failures


class TestPreload:
    def test_random_preload_populates(self):
        dut = small_dut()
        addresses = preload_random(dut, 50, seed=3, prime_btb2=False)
        assert len(addresses) >= 40
        # Row-conflict evictions are possible but rare at this density.
        assert dut.btb1.occupancy >= len(addresses) - 3
        present = sum(
            1 for address in addresses if dut.btb1.lookup(address, 0)
        )
        assert present >= len(addresses) - 3

    def test_preload_from_branch_stream(self):
        dut = LookaheadBranchPredictor(z15_config())
        program = loop_nest_program(depths=(5, 3))
        branches = list(Executor(program).run(max_branches=100))
        installed = preload_from_branches(dut, branches)
        assert installed >= 1
        # The preloaded branch predicts dynamically on first encounter.
        dut.restart(program.entry_point)
        outcome = dut.predict_and_resolve(branches[0])
        assert outcome.dynamic


class TestEnvironment:
    def test_clean_run_on_healthy_dut(self):
        dut = LookaheadBranchPredictor(z15_config())
        env = VerificationEnvironment(
            dut, StimulusConstraints(seed=11), checkpoint_interval=200
        )
        report = env.run(branches=1500, preload_entries=100)
        assert report.clean, report.summary()
        assert report.branches_driven == 1500
        assert report.checkpoints >= 7
        assert report.search_transactions > 0

    def test_summary_renders(self):
        dut = LookaheadBranchPredictor(z15_config())
        env = VerificationEnvironment(dut, StimulusConstraints(seed=5))
        report = env.run(branches=200)
        assert "verification run" in report.summary()

    def test_constraints_validation(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            StimulusConstraints(locality=1.5).validate()

    def test_environment_catches_injected_dut_bug(self):
        """Break the DUT's dedup port and let random stimulus find it."""
        dut = LookaheadBranchPredictor(z15_config())
        original_install = dut.btb1.install

        def broken_install(address, context, entry):
            # Defect: skip the read-before-write duplicate check by
            # writing straight into the array every 7th call.
            broken_install.calls += 1
            if broken_install.calls % 7 == 0:
                base = address - address % 64
                entry.tag = dut.btb1.tag_of(base, context)
                entry.offset = address - base
                entry.line_base = base
                row = dut.btb1.row_of(base)
                way = dut.btb1._table.victim_way(row)
                dut.btb1._table.write(row, way, entry)
                from repro.core.btb1 import InstallResult

                result = InstallResult(installed=True, duplicate=False,
                                       row=row, way=way)
                if dut.btb1.on_install is not None:
                    dut.btb1.on_install(address=address, context=context,
                                        entry=entry, result=result)
                return result
            return original_install(address, context, entry)

        broken_install.calls = 0
        dut.btb1.install = broken_install
        env = VerificationEnvironment(
            dut,
            StimulusConstraints(seed=21, revisit_rate=0.9,
                                address_span=0x2000),
            checkpoint_interval=100,
        )
        report = env.run(branches=2000)
        assert not report.clean
