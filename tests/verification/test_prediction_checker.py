"""Tests for the figure-8/figure-9 prediction-rule checker."""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.core.gpq import PredictionRecord
from repro.core.predictor import PredictionOutcome, SearchTrace
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.instructions import BranchKind
from repro.verification import PredictionRuleChecker
from repro.workloads import get_workload
from repro.workloads.executor import Executor


def make_outcome(**overrides):
    defaults = dict(
        sequence=0,
        address=0x1000,
        context=0,
        thread=0,
        kind=BranchKind.CONDITIONAL_RELATIVE,
        length=4,
        dynamic=True,
        predicted_taken=True,
        predicted_target=0x2000,
        direction_provider=DirectionProvider.BHT,
        target_provider=TargetProvider.BTB1,
    )
    defaults.update(overrides)
    record = PredictionRecord(**defaults)
    record.resolve(record.predicted_taken, record.predicted_target)
    return PredictionOutcome(record=record, trace=SearchTrace())


class TestCleanPredictions:
    def test_plain_dynamic(self):
        checker = PredictionRuleChecker()
        checker.check(make_outcome())
        assert not checker.failures

    def test_full_workload_sweep_clean(self):
        """The real predictor never violates the selection rules."""
        checker = PredictionRuleChecker()
        for name in ("patterned", "services", "dispatch", "transactions"):
            predictor = LookaheadBranchPredictor(z15_config())
            program = get_workload(name)
            predictor.restart(program.entry_point)
            for branch in Executor(program).run(max_branches=2000):
                checker.check(predictor.predict_and_resolve(branch))
            predictor.finalize()
        assert not checker.failures
        checker.assert_clean()


class TestViolationsDetected:
    def _violations(self, **overrides):
        checker = PredictionRuleChecker()
        checker.check(make_outcome(**overrides))
        return checker.failures

    def test_dynamic_with_static_provider(self):
        assert self._violations(direction_provider=DirectionProvider.STATIC)

    def test_unconditional_not_taken(self):
        assert self._violations(
            direction_provider=DirectionProvider.UNCONDITIONAL,
            predicted_taken=False, predicted_target=None,
            target_provider=TargetProvider.NONE,
        )

    def test_aux_without_bidirectional(self):
        assert self._violations(
            direction_provider=DirectionProvider.PHT_LONG,
            bidirectional_at_prediction=False,
        )

    def test_aux_with_bidirectional_is_clean(self):
        checker = PredictionRuleChecker()
        checker.check(make_outcome(
            direction_provider=DirectionProvider.PHT_LONG,
            bidirectional_at_prediction=True,
        ))
        assert not checker.failures

    def test_taken_without_target(self):
        assert self._violations(predicted_target=None,
                                target_provider=TargetProvider.NONE)

    def test_ctb_without_multi_target(self):
        assert self._violations(
            target_provider=TargetProvider.CTB,
            multi_target_at_prediction=False,
        )

    def test_crs_without_return_marking(self):
        assert self._violations(
            target_provider=TargetProvider.CRS,
            multi_target_at_prediction=True,
            marked_return_at_prediction=False,
        )

    def test_crs_on_blacklisted_branch(self):
        assert self._violations(
            target_provider=TargetProvider.CRS,
            multi_target_at_prediction=True,
            marked_return_at_prediction=True,
            blacklisted_at_prediction=True,
        )

    def test_surprise_with_dynamic_provider(self):
        assert self._violations(
            dynamic=False,
            direction_provider=DirectionProvider.BHT,
            predicted_taken=False,
            predicted_target=None,
            target_provider=TargetProvider.NONE,
        )

    def test_unconditional_surprise_guessed_not_taken(self):
        assert self._violations(
            dynamic=False,
            kind=BranchKind.UNCONDITIONAL_RELATIVE,
            direction_provider=DirectionProvider.STATIC,
            predicted_taken=False,
            predicted_target=None,
            target_provider=TargetProvider.NONE,
        )

    def test_assert_clean_raises(self):
        checker = PredictionRuleChecker()
        checker.check(make_outcome(
            direction_provider=DirectionProvider.STATIC))
        with pytest.raises(AssertionError):
            checker.assert_clean()


class TestEnvironmentIntegration:
    def test_environment_runs_rule_checker(self):
        from repro.verification import StimulusConstraints, VerificationEnvironment

        dut = LookaheadBranchPredictor(z15_config())
        env = VerificationEnvironment(dut, StimulusConstraints(seed=31))
        report = env.run(branches=1000)
        assert env.rule_checker.checked == 1000
        assert report.clean, report.summary()
