"""The fault-injection framework: plans, determinism, parity model.

The contract under test: a campaign is exactly reproducible from its
plan seed; parity detects every odd-weight corruption and recovers by
invalidation; omission faults are always silent; and no fault — of any
kind, at any rate — may ever leave a structure in an audit-illegal
state (corruptions are legal-but-wrong by construction).
"""

import pytest

from repro.common.errors import AuditError, ConfigError
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.resilience import (
    EVENT_LOG_LIMIT,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    assert_healthy,
    audit_predictor,
)
from repro.workloads import get_workload

from tests.conftest import small_predictor_config


def _warmed_predictor(branches=1200, plan=None):
    predictor = LookaheadBranchPredictor(small_predictor_config())
    injector = FaultInjector(predictor, plan) if plan is not None else None
    engine = FunctionalEngine(predictor, injector=injector)
    engine.run_program(get_workload("compute-kernel", 1),
                       max_branches=branches, warmup_branches=0, seed=1)
    return predictor, injector


class TestFaultPlan:
    def test_default_plan_is_valid(self):
        assert FaultPlan().validate().kinds == FAULT_KINDS

    @pytest.mark.parametrize("bad", [
        dict(rate=-0.1),
        dict(rate=1.5),
        dict(kinds=()),
        dict(kinds=("btb1", "bogus")),
        dict(audit_interval=-1),
        dict(refresh_suppress_span=0),
    ])
    def test_invalid_plans_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan(**bad).validate()

    def test_plan_is_frozen_and_picklable(self):
        import pickle

        plan = FaultPlan(seed=9, rate=0.5, kinds=("tage",))
        assert pickle.loads(pickle.dumps(plan)) == plan
        with pytest.raises(Exception):
            plan.rate = 0.9


class TestInjectorDeterminism:
    def test_same_seed_reproduces_campaign_exactly(self):
        events = []
        for _ in range(2):
            plan = FaultPlan(seed=11, rate=0.05, audit_interval=0)
            predictor, injector = _warmed_predictor(plan=plan)
            events.append([(e.index, e.kind, e.description, e.bits_flipped,
                            e.detected) for e in injector.events])
        assert events[0] == events[1]
        assert events[0]  # campaign actually fired

    def test_different_seeds_diverge(self):
        campaigns = []
        for seed in (1, 2):
            plan = FaultPlan(seed=seed, rate=0.05)
            _, injector = _warmed_predictor(plan=plan)
            campaigns.append([e.description for e in injector.events])
        assert campaigns[0] != campaigns[1]

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=1, rate=0.0)
        _, injector = _warmed_predictor(plan=plan)
        assert injector.injected == 0
        assert injector.attempts_empty == 0
        assert injector.events == []
        assert injector.branches_seen == 1200


class TestParityModel:
    def test_counter_identity(self):
        plan = FaultPlan(seed=3, rate=0.1)
        _, injector = _warmed_predictor(plan=plan)
        assert injector.injected == injector.detected + injector.silent
        assert injector.recovered == injector.detected
        for event in injector.events:
            assert event.detected == (event.bits_flipped % 2 == 1)
            assert event.recovered == event.detected

    def test_parity_off_everything_is_silent(self):
        plan = FaultPlan(seed=3, rate=0.1, parity=False)
        _, injector = _warmed_predictor(plan=plan)
        assert injector.injected > 0
        assert injector.detected == 0
        assert injector.recovered == 0
        assert injector.silent == injector.injected

    def test_omission_faults_are_always_silent(self):
        plan = FaultPlan(seed=5, rate=0.2, kinds=("staging", "refresh"))
        _, injector = _warmed_predictor(plan=plan)
        fired = [e for e in injector.events]
        assert fired, "omission campaign never fired"
        for event in fired:
            assert event.bits_flipped == 0
            assert not event.detected


class TestPerKindInjection:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_kind_fires_and_stays_audit_legal(self, kind):
        plan = FaultPlan(seed=7, rate=0.2, kinds=(kind,))
        predictor, injector = _warmed_predictor(plan=plan)
        assert injector.injected + injector.attempts_empty > 0
        assert audit_predictor(predictor) == []

    def test_detected_btb1_corruption_is_invalidated(self):
        predictor, _ = _warmed_predictor()
        occupancy = predictor.btb1.occupancy
        assert occupancy > 0
        injector = FaultInjector(
            predictor, FaultPlan(seed=1, rate=1.0, kinds=("btb1",))
        )
        # Fire until parity catches a single-bit flip; recovery must
        # drop exactly the corrupted entry.
        while injector.detected == 0:
            injector.inject()
        assert predictor.btb1.occupancy < occupancy + injector.injected

    def test_refresh_fault_suppresses_writebacks(self):
        plan = FaultPlan(seed=2, rate=0.05, kinds=("refresh",),
                         refresh_suppress_span=8)
        predictor, injector = _warmed_predictor(plan=plan)
        if predictor.btb2 is not None and injector.injected:
            assert predictor.btb2.refreshes_suppressed >= 0


class TestAuditing:
    def test_audit_interval_runs_periodically(self):
        plan = FaultPlan(seed=1, rate=0.01, audit_interval=300)
        _, injector = _warmed_predictor(plan=plan)
        assert injector.audits == 1200 // 300

    def test_assert_healthy_raises_with_violations(self):
        predictor, _ = _warmed_predictor()
        assert_healthy(predictor)  # clean after a normal run
        predictor.crs._amnesty_counter = 10**9
        with pytest.raises(AuditError) as caught:
            assert_healthy(predictor)
        assert caught.value.violations
        assert "amnesty" in str(caught.value)


class TestEventLogAndTelemetry:
    def test_event_log_is_capped_but_counters_are_not(self):
        plan = FaultPlan(seed=1, rate=1.0, parity=False)
        _, injector = _warmed_predictor(branches=EVENT_LOG_LIMIT * 2,
                                        plan=plan)
        assert len(injector.events) == EVENT_LOG_LIMIT
        assert injector.injected + injector.attempts_empty > EVENT_LOG_LIMIT

    def test_harvest_into_telemetry_registry(self):
        from repro.obs.telemetry import Telemetry

        plan = FaultPlan(seed=1, rate=0.05)
        _, injector = _warmed_predictor(plan=plan)
        telemetry = Telemetry()
        injector.harvest_into(telemetry)
        gauges = telemetry.to_dict()["gauges"]
        assert gauges["faults.branches_seen"] == 1200
        assert gauges["faults.injected"] == injector.injected
