"""Architectural equivalence: faults may only ever cost accuracy.

The predictor is a hint engine — its output steers fetch, but every
branch is resolved from program state and mispredictions restart the
pipeline.  So the committed branch stream (address, direction, target,
in commit order) of a faulted run must be *identical* to the fault-free
run, for every fault kind, at any rate.  A divergence here means
corruption leaked out of the prediction structures.
"""

import pytest

from repro.resilience import (
    FAULT_KINDS,
    ArchObservation,
    FaultPlan,
    diff_arch_observations,
    fault_equivalence_report,
    run_fault_suite,
)


class TestDiffArchObservations:
    def test_identical_streams_are_clean(self):
        stream = [ArchObservation(0, 0x100, True, 0x200),
                  ArchObservation(1, 0x104, False, None)]
        assert diff_arch_observations(stream, list(stream)) is None

    def test_field_divergence_is_localised(self):
        left = [ArchObservation(0, 0x100, True, 0x200)]
        right = [ArchObservation(0, 0x100, False, 0x200)]
        divergence = diff_arch_observations(left, right)
        assert divergence.field == "taken"
        assert divergence.index == 0

    def test_length_mismatch_reported(self):
        left = [ArchObservation(0, 0x100, True, 0x200)]
        divergence = diff_arch_observations(left, [])
        assert divergence.field == "stream_length"
        assert (divergence.left, divergence.right) == (1, 0)


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_every_fault_kind_is_architecturally_invisible(kind):
    plan = FaultPlan(seed=3, rate=0.05, kinds=(kind,), audit_interval=500)
    impact = fault_equivalence_report("transactions", plan, branches=1500,
                                      seed=1234)
    assert impact.report.clean, impact.report.summary()


def test_high_rate_campaign_still_equivalent_and_costs_accuracy():
    plan = FaultPlan(seed=9, rate=0.2, parity=False)
    impact = fault_equivalence_report("transactions", plan, branches=2500,
                                      seed=1234)
    assert impact.report.clean
    assert impact.fault_counters["injected"] > 100
    # A heavy silent campaign measurably perturbs the predictor...
    assert not impact.stats_identical
    # ...and graceful degradation means it *only* perturbs accuracy.
    assert impact.faulted_mpki != impact.baseline_mpki


def test_parity_recovery_softens_degradation():
    """With parity on, detected corruptions are invalidated instead of
    silently steering predictions — over the same campaign the recovered
    run must see no *more* silent corruption than the unprotected one."""
    base = dict(seed=4, rate=0.1)
    protected = fault_equivalence_report(
        "transactions", FaultPlan(parity=True, **base), branches=2000)
    exposed = fault_equivalence_report(
        "transactions", FaultPlan(parity=False, **base), branches=2000)
    assert protected.report.clean and exposed.report.clean
    assert protected.fault_counters["silent"] <= \
        exposed.fault_counters["silent"]
    assert protected.fault_counters["recovered"] > 0
    assert exposed.fault_counters["recovered"] == 0


def test_run_fault_suite_smoke():
    impacts = run_fault_suite(workloads=("compute-kernel",), branches=800,
                              kinds=("btb1", "staging"))
    assert len(impacts) == 2
    assert all(impact.report.clean for impact in impacts)
    kinds = [impact.plan.kinds for impact in impacts]
    assert kinds == [("btb1",), ("staging",)]
