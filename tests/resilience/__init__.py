"""Tests for the fault-injection & graceful-degradation subsystem."""
