"""Span tracer/writer/loader: timing capture, crash contract, nulls."""

import json

import pytest

from repro.obs.spans import (
    LATENCY_BOUNDS_MS,
    NULL_SPANS,
    SPAN_SCHEMA,
    NullSpanTracer,
    SpanSchemaError,
    SpanTracer,
    SpanWriter,
    load_spans,
)


class TestSpanTracer:
    def test_span_block_records_wall_and_cpu(self):
        tracer = SpanTracer()
        with tracer.span("serialize", chunk=3):
            sum(range(1000))
        (record,) = tracer.spans
        assert record["name"] == "serialize"
        assert record["chunk"] == 3
        assert record["wall"] >= 0.0
        assert record["cpu"] >= 0.0

    def test_observe_folds_external_durations(self):
        tracer = SpanTracer()
        tracer.observe("execute", 0.025, label="z15/object")
        (record,) = tracer.spans
        assert record["wall"] == 0.025
        assert record["cpu"] is None
        assert record["label"] == "z15/object"

    def test_span_recorded_even_when_block_raises(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("merge"):
                raise RuntimeError("boom")
        assert [span["name"] for span in tracer.spans] == ["merge"]

    def test_events_are_sequenced(self):
        tracer = SpanTracer()
        tracer.event("cell.retry", label="a")
        tracer.event("pool.break", pending=4)
        assert [event["seq"] for event in tracer.events] == [0, 1]
        assert tracer.events[1]["pending"] == 4

    def test_phase_latency_histograms_in_milliseconds(self):
        tracer = SpanTracer()
        tracer.observe("execute", 0.010)   # 10 ms
        tracer.observe("execute", 0.200)   # 200 ms
        tracer.observe("merge", 0.0002)    # 0.2 ms
        latency = tracer.phase_latency()
        assert sorted(latency) == ["execute", "merge"]
        assert latency["execute"]["count"] == 2
        assert latency["execute"]["bounds"] == list(LATENCY_BOUNDS_MS)
        assert latency["merge"]["p50"] == pytest.approx(0.2, rel=0.5)

    def test_to_dict_summarizes(self):
        tracer = SpanTracer()
        tracer.observe("execute", 0.01)
        tracer.event("cell.timeout", label="x")
        payload = tracer.to_dict()
        assert payload["schema"] == SPAN_SCHEMA
        assert payload["spans"] == 1
        assert payload["events"][0]["name"] == "cell.timeout"
        assert "execute" in payload["phase_latency"]


class TestNullTracer:
    def test_falsy_for_hot_path_guards(self):
        assert not NULL_SPANS
        assert not NullSpanTracer()
        assert bool(SpanTracer())

    def test_all_operations_are_no_ops(self):
        null = NullSpanTracer()
        with null.span("anything", extra=1):
            pass
        null.observe("x", 1.0)
        null.event("y")
        assert null.histograms() == {}
        assert null.phase_latency() == {}
        assert null.to_dict()["spans"] == 0


class TestWriterAndLoader:
    def traced_file(self, tmp_path, name="spans.jsonl"):
        path = str(tmp_path / name)
        with SpanWriter(path, kind="sweep",
                        context={"command": "sweep"}) as writer:
            tracer = SpanTracer(writer=writer)
            tracer.observe("serialize", 0.004)
            tracer.observe("execute", 0.120, label="z15/object")
            tracer.event("cell.retry", label="z15/object", attempt=1)
            writer.write_summary(tracer)
        return path

    def test_round_trip(self, tmp_path):
        document = load_spans(self.traced_file(tmp_path))
        assert document["header"]["kind"] == "sweep"
        assert document["header"]["context"] == {"command": "sweep"}
        assert [span["name"] for span in document["spans"]] == [
            "serialize", "execute",
        ]
        assert document["events"][0]["name"] == "cell.retry"
        assert document["summary"]["spans"] == 2
        assert "execute" in document["summary"]["phase_latency"]

    def test_writer_closes_on_error_path(self, tmp_path):
        path = str(tmp_path / "crash.jsonl")
        with pytest.raises(RuntimeError):
            with SpanWriter(path) as writer:
                SpanTracer(writer=writer).observe("execute", 0.01)
                raise RuntimeError("killed mid-run")
        # The error-path close left a loadable file.
        document = load_spans(path)
        assert len(document["spans"]) == 1
        assert document["summary"] is None

    def test_write_after_close_raises(self, tmp_path):
        writer = SpanWriter(str(tmp_path / "closed.jsonl"))
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.write({"type": "event", "name": "late"})

    def test_torn_tail_is_dropped(self, tmp_path):
        path = self.traced_file(tmp_path)
        with open(path, "a") as stream:
            stream.write('{"type": "span", "name": "trunc')
        document = load_spans(path)
        assert [span["name"] for span in document["spans"]] == [
            "serialize", "execute",
        ]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = self.traced_file(tmp_path)
        lines = open(path).read().splitlines()
        lines[1] = '{"type": "span", "name": "trunc'
        with open(path, "w") as stream:
            stream.write("\n".join(lines) + "\n")
        with pytest.raises(SpanSchemaError,
                           match=r":2 \(byte offset \d+\): malformed"):
            load_spans(path)

    def test_record_before_header_rejected(self, tmp_path):
        path = str(tmp_path / "headless.jsonl")
        with open(path, "w") as stream:
            stream.write(json.dumps({"type": "span", "name": "x",
                                     "wall": 1.0}) + "\n")
        with pytest.raises(SpanSchemaError, match="before header"):
            load_spans(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = str(tmp_path / "wrong.jsonl")
        with open(path, "w") as stream:
            stream.write(json.dumps({"type": "header",
                                     "schema": "repro-spans/v9"}) + "\n")
        with pytest.raises(SpanSchemaError, match="unsupported span schema"):
            load_spans(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = self.traced_file(tmp_path)
        with open(path, "a") as stream:
            stream.write(json.dumps({"type": "mystery"}) + "\n")
            stream.write("\n")  # trailing newline: not a torn tail
        with pytest.raises(SpanSchemaError, match="unknown record type"):
            load_spans(path)
