"""The report observatory: history, classification, trends, dashboard."""

import json

import pytest

from repro.obs.manifest import build_manifest
from repro.obs.observatory import (
    HISTORY_SCHEMA,
    ObservatoryError,
    append_history,
    classify_artifact,
    collect_artifacts,
    fleet_metrics,
    history_row,
    load_history,
    render_dashboard,
    throughput_metrics,
    trend_deltas,
)

THROUGHPUT = {
    "schema": "repro-throughput/v3",
    "backend": "object",
    "engine_mode": "reference",
    "cpu_count": 4,
    "grid": {"cells": 8},
    "sequential": {"wall_seconds": 1.0, "branches_per_second": 10_000.0},
    "parallel": {"workers": 2, "wall_seconds": 0.5,
                 "branches_per_second": 20_000.0},
    "speedup": 2.0,
    "equivalent": True,
    "workloads": {},
    "single_run": {
        "transactions": {
            "object": {
                "reference": {"branches_per_second": 30_000.0},
                "fast": {"branches_per_second": 45_000.0},
            },
        },
    },
}

FLEET = {
    "schema": "repro-fleet/v1",
    "cpu_count": 4,
    "grid": {"cells": 16},
    "sequential": {"wall_seconds": 2.0, "branches_per_second": 8_000.0},
    "parallel": {"workers": 2, "wall_seconds": 1.0,
                 "branches_per_second": 16_000.0, "pool_breaks": 0,
                 "chunks_dispatched": 4, "chunk_size": 4,
                 "phase_latency": {}},
    "speedup": 2.0,
    "equivalent": True,
    "failed_cells": 0,
    "rollups": {
        "by_backend": {
            "object": {"branches": 800, "branches_per_second": 9_000.0},
            "array": {"branches": 800, "branches_per_second": 11_000.0},
        },
        "by_workload": {
            "transactions": {"branches": 1600,
                             "branches_per_second": 10_000.0},
        },
    },
}


def scaled(payload, factor):
    clone = json.loads(json.dumps(payload))

    def walk(node):
        for key, value in node.items():
            if isinstance(value, dict):
                walk(value)
            elif key == "branches_per_second":
                node[key] = value * factor
    walk(clone)
    return clone


class TestMetrics:
    def test_throughput_metrics_flatten(self):
        metrics = throughput_metrics(THROUGHPUT)
        assert metrics["sweep.sequential.bps"] == 10_000.0
        assert metrics["sweep.speedup"] == 2.0
        assert metrics["single.transactions.object.fast.bps"] == 45_000.0

    def test_fleet_metrics_flatten_rollups(self):
        metrics = fleet_metrics(FLEET)
        assert metrics["fleet.parallel.bps"] == 16_000.0
        assert metrics["fleet.backend.array.bps"] == 11_000.0
        assert metrics["fleet.workload.transactions.bps"] == 10_000.0


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        manifest = build_manifest("bench")
        append_history(path, history_row(
            "throughput", throughput_metrics(THROUGHPUT),
            manifest=manifest, label="nightly"))
        (row,) = load_history(path)
        assert row["schema"] == HISTORY_SCHEMA
        assert row["kind"] == "throughput"
        assert row["label"] == "nightly"
        assert row["manifest"]["kind"] == "bench"

    def test_append_rejects_unschemaed_rows(self, tmp_path):
        with pytest.raises(ObservatoryError, match="schema"):
            append_history(str(tmp_path / "h.jsonl"), {"kind": "x"})

    def test_load_drops_torn_tail(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, history_row("fleet", {"a": 1.0}))
        with open(path, "a") as stream:
            stream.write('{"schema": "repro-bench-history/v1", "kin')
        assert len(load_history(path)) == 1

    def test_load_rejects_mid_file_corruption(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        with open(path, "w") as stream:
            stream.write("{broken\n")
            stream.write(json.dumps(history_row("fleet", {"a": 1.0})) + "\n")
        with pytest.raises(ObservatoryError, match="malformed"):
            load_history(path)

    def test_trend_deltas_use_newest_pair(self, tmp_path):
        history = [
            history_row("throughput", {"x.bps": 100.0}),
            history_row("throughput", {"x.bps": 200.0}),
            history_row("fleet", {"y.bps": 1.0}),
            history_row("throughput", {"x.bps": 150.0}),
        ]
        (delta,) = trend_deltas(history, "throughput")
        metric, before, after, change = delta
        assert (metric, before, after) == ("x.bps", 200.0, 150.0)
        assert change == pytest.approx(-0.25)
        assert trend_deltas(history, "fleet") == []  # only one row


class TestClassification:
    def test_bench_json_kinds(self, tmp_path):
        throughput = tmp_path / "BENCH_throughput.json"
        throughput.write_text(json.dumps(THROUGHPUT))
        fleet = tmp_path / "BENCH_fleet.json"
        fleet.write_text(json.dumps(FLEET))
        assert classify_artifact(str(throughput)) == "throughput"
        assert classify_artifact(str(fleet)) == "fleet"

    def test_manifest_headed_stream_classifies_as_stream(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        rows = [
            json.dumps(build_manifest("sweep")),
            json.dumps({"schema": "repro-sweep-stream/v1", "cell": {},
                        "status": "ok"}),
        ]
        path.write_text("\n".join(rows) + "\n")
        assert classify_artifact(str(path)) == "stream"

    def test_bare_manifest_classifies_as_manifest(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(build_manifest("run")))
        assert classify_artifact(str(path)) == "manifest"

    def test_unrecognised_and_binary_ignored(self, tmp_path):
        noise = tmp_path / "noise.txt"
        noise.write_text("not an artifact")
        binary = tmp_path / "blob.bin"
        binary.write_bytes(b"\x00\xff\x00\xff")
        assert classify_artifact(str(noise)) is None
        assert classify_artifact(str(binary)) is None

    def test_collect_scans_directories_one_level(self, tmp_path):
        (tmp_path / "BENCH_fleet.json").write_text(json.dumps(FLEET))
        (tmp_path / "noise.txt").write_text("noise")
        artifacts = collect_artifacts([str(tmp_path)])
        assert [kind for kind in artifacts] == ["fleet"]


class TestDashboard:
    def build_artifacts(self, tmp_path, regress=False):
        throughput = tmp_path / "BENCH_throughput.json"
        throughput.write_text(json.dumps(THROUGHPUT))
        fleet = tmp_path / "BENCH_fleet.json"
        fleet.write_text(json.dumps(FLEET))
        history = str(tmp_path / "history.jsonl")
        factor = 0.5 if regress else 1.02
        append_history(history, history_row(
            "throughput", throughput_metrics(THROUGHPUT)))
        append_history(history, history_row(
            "throughput", throughput_metrics(scaled(THROUGHPUT, factor))))
        return collect_artifacts([str(tmp_path)])

    def test_renders_sections_for_each_artifact_kind(self, tmp_path):
        text = render_dashboard(self.build_artifacts(tmp_path),
                                title="nightly observatory")
        assert text.startswith("# nightly observatory")
        assert "## Throughput" in text
        assert "## Fleet" in text
        assert "45,000" in text  # single-run table rendered

    def test_healthy_history_has_no_regression_section(self, tmp_path):
        text = render_dashboard(self.build_artifacts(tmp_path))
        assert "Regressions" not in text

    def test_regressions_highlighted(self, tmp_path):
        text = render_dashboard(self.build_artifacts(tmp_path, regress=True))
        assert "Regressions" in text
        assert "-50.0%" in text

    def test_empty_artifact_set_renders(self):
        text = render_dashboard({})
        assert "artifacts: none" in text
