"""Hypothesis battery for Telemetry.merge: the algebra the rollups rely
on.  Merging is how per-cell registries become per-(backend, engine-mode,
workload) groups and the fleet grand total, so it must behave like a
commutative monoid over registries — otherwise the rollup would depend
on cell completion order, which the pool does not guarantee.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.export import parse_openmetrics, to_openmetrics
from repro.obs.telemetry import NULL_TELEMETRY, Histogram, Telemetry

#: Small shared vocabulary so generated registries overlap (merges that
#: never collide on a name test nothing).
NAMES = ("btb1.hits", "btb1.misses", "gpq.occupancy", "sk.flips")

#: One shared bucket layout per histogram name — merge requires it.
BOUNDS = (1.0, 5.0, 25.0)

counts = st.integers(min_value=0, max_value=1_000)
#: Integer-valued floats: gauge/histogram sums then add exactly, so the
#: monoid laws hold as equalities rather than up-to-float-rounding.
gauge_values = st.integers(min_value=-10**6, max_value=10**6).map(float)
observations = st.lists(
    st.integers(min_value=0, max_value=100).map(float),
    max_size=8,
)


@st.composite
def registries(draw):
    telemetry = Telemetry()
    for name in draw(st.sets(st.sampled_from(NAMES), max_size=4)):
        kind = draw(st.sampled_from(("counter", "gauge", "histogram")))
        if kind == "counter":
            telemetry.inc(name, draw(counts))
        elif kind == "gauge":
            telemetry.gauge(name).set(draw(gauge_values))
        else:
            histogram = telemetry.histogram(name, bounds=BOUNDS)
            for value in draw(observations):
                histogram.observe(value)
    return telemetry


def canonical(telemetry: Telemetry) -> dict:
    return telemetry.to_dict()


def merged(*registries_):
    out = Telemetry()
    for registry in registries_:
        out.merge(registry)
    return out


@settings(max_examples=60, deadline=None)
@given(registries(), registries())
def test_merge_is_commutative(a, b):
    # Guard: a and b only both carry a name with the *same* instrument
    # kind if the strategies happened to agree; mismatched kinds raise,
    # which is outside the algebra.  Rebuild from dicts to keep a/b
    # unmutated by the merge itself.
    try:
        ab = canonical(merged(Telemetry.from_dict(canonical(a)), b))
        ba = canonical(merged(Telemetry.from_dict(canonical(b)), a))
    except (KeyError, ValueError, AttributeError):
        return  # kind collision: merge is defined only over like kinds
    assert ab == ba


@settings(max_examples=60, deadline=None)
@given(registries(), registries(), registries())
def test_merge_is_associative(a, b, c):
    try:
        left = canonical(
            merged(merged(Telemetry.from_dict(canonical(a)), b), c)
        )
        right_inner = merged(Telemetry.from_dict(canonical(b)), c)
        right = canonical(merged(Telemetry.from_dict(canonical(a)),
                                 right_inner))
    except (KeyError, ValueError, AttributeError):
        return
    assert left == right


@settings(max_examples=60, deadline=None)
@given(registries())
def test_empty_registry_is_identity(a):
    before = canonical(a)
    assert canonical(merged(Telemetry.from_dict(before),
                            Telemetry())) == before
    assert canonical(merged(Telemetry(),
                            Telemetry.from_dict(before))) == before


@settings(max_examples=60, deadline=None)
@given(registries())
def test_null_telemetry_merge_is_a_no_op(a):
    before = canonical(a)
    null = NULL_TELEMETRY.merge(a)
    assert not null
    assert canonical(a) == before


@settings(max_examples=60, deadline=None)
@given(registries())
def test_merge_accepts_payload_dicts(a):
    via_dict = canonical(merged(Telemetry(), canonical(a)))
    via_object = canonical(merged(Telemetry(), a))
    assert via_dict == via_object


@settings(max_examples=40, deadline=None)
@given(registries())
def test_openmetrics_round_trip_is_stable(a):
    """render(parse(render(x))) == render(x) for arbitrary registries —
    the exporter's determinism property, over generated content rather
    than the hand-built fixtures in test_export."""
    text = to_openmetrics(a)
    assert to_openmetrics(parse_openmetrics(text)) == text


def test_histogram_merge_requires_identical_bounds():
    import pytest

    left = Histogram("x", (1.0, 2.0))
    right = Histogram("x", (1.0, 3.0))
    with pytest.raises(ValueError):
        left.merge(right)
