"""TelemetrySession: zero perturbation, reconciliation, sampling."""

import pytest

from repro.core.predictor import LookaheadBranchPredictor
from repro.engine.cycle import CycleEngine
from repro.engine.functional import (
    INSTRUCTIONS_PER_BRANCH,
    FunctionalEngine,
    _chain_observers,
)
from repro.obs.sampler import IntervalSampler
from repro.obs.session import TelemetrySession
from repro.verification.differential import (
    comparable_stats,
    stats_fingerprint,
)

from tests.conftest import build_medium_program, small_predictor_config

BRANCHES = 900
WARMUP = 200


def plain_stats():
    engine = FunctionalEngine(
        LookaheadBranchPredictor(small_predictor_config())
    )
    return engine.run_program(build_medium_program(), max_branches=BRANCHES,
                              warmup_branches=WARMUP, seed=3)


def instrumented_stats(interval=300):
    predictor = LookaheadBranchPredictor(small_predictor_config())
    session = TelemetrySession(predictor=predictor, interval=interval,
                               skip=WARMUP)
    engine = FunctionalEngine(predictor, telemetry=session)
    stats = engine.run_program(build_medium_program(), max_branches=BRANCHES,
                               warmup_branches=WARMUP, seed=3)
    session.finish(stats)
    return stats, session


class TestZeroPerturbation:
    def test_telemetry_run_is_fingerprint_identical(self):
        # The tier-1 guarantee: attaching a session changes nothing the
        # predictor or stats can see.
        stats, _session = instrumented_stats()
        assert stats_fingerprint(stats) == stats_fingerprint(plain_stats())

    def test_off_mode_keeps_engine_fast_path(self):
        engine = FunctionalEngine(
            LookaheadBranchPredictor(small_predictor_config())
        )
        assert engine.observer is None and engine.telemetry is None

    def test_chain_observers_composition(self):
        calls = []
        assert _chain_observers(None, None) is None
        append = calls.append
        assert _chain_observers(append, None) is append

        class Probe:
            def __init__(self):
                self.seen = []

            def observe(self, outcome):
                self.seen.append(outcome)

        probe = Probe()
        assert _chain_observers(None, probe) == probe.observe
        both = _chain_observers(calls.append, probe)
        both("x")
        assert calls == ["x"] and probe.seen == ["x"]

    def test_cycle_engine_accepts_a_session(self):
        predictor = LookaheadBranchPredictor(small_predictor_config())
        session = TelemetrySession(predictor=predictor, interval=0)
        engine = CycleEngine(predictor, telemetry=session)
        stats = engine.run_program(build_medium_program(), max_branches=400,
                                   seed=3)
        session.finish()
        branches = session.telemetry.counter("engine.branches").value
        assert branches == stats.branches

        plain = CycleEngine(
            LookaheadBranchPredictor(small_predictor_config())
        ).run_program(build_medium_program(), max_branches=400, seed=3)
        assert stats_fingerprint(stats.accuracy) == \
            stats_fingerprint(plain.accuracy)


class TestReconciliation:
    def test_counters_match_run_stats_exactly(self):
        stats, session = instrumented_stats()
        reference = comparable_stats(stats)
        counters = session.telemetry.counters

        def value(name):
            counter = counters.get(name)
            return counter.value if counter is not None else 0

        assert value("engine.branches") == reference["branches"]
        assert value("engine.mispredicted_branches") == \
            reference["mispredicted_branches"]
        assert value("engine.taken_branches") == reference["taken_branches"]
        assert value("btb1.dynamic_hits") == reference["dynamic_predictions"]
        assert value("btb1.surprise_misses") == reference["surprise_branches"]
        assert value("search.lines_searched") == reference["lines_searched"]
        assert value("skoot.lines_skipped") == \
            reference["lines_skipped_by_skoot"]
        assert value("btb2.search_triggers") == reference["btb2_triggers"]

    def test_provider_split_matches_run_stats(self):
        stats, session = instrumented_stats()
        counters = session.telemetry.counters
        for provider, (count, correct) in stats.direction_providers.items():
            name = provider.value
            assert counters[f"direction.provider.{name}"].value == count
            observed = counters.get(f"direction.correct.{name}")
            assert (observed.value if observed else 0) == correct

    def test_mispredict_class_split_matches(self):
        stats, session = instrumented_stats()
        counters = session.telemetry.counters
        for klass, count in stats.classes.items():
            if count:
                assert counters[f"mispredict.{klass.value}"].value == count

    def test_component_harvest_exposes_core_counters(self):
        _stats, session = instrumented_stats()
        gauges = session.telemetry.gauges
        predictor_predictions = gauges["predictor.predictions"].value
        # The harvest is predictor-lifetime (warmup included).
        assert predictor_predictions == BRANCHES + WARMUP
        assert gauges["btb1.capacity"].value == 16 * 2
        assert "btb2.transfers_staged" in gauges
        assert "gpq.capacity" in gauges

    def test_skip_accounts_for_warmup_only_once(self):
        stats, session = instrumented_stats()
        assert session.telemetry.counter("engine.branches").value == \
            stats.branches == BRANCHES


class TestSampler:
    def test_windows_cover_the_counted_phase(self):
        stats, session = instrumented_stats(interval=300)
        samples = session.samples
        assert len(samples) == 3  # 900 branches / 300
        assert sum(sample["branches"] for sample in samples) == stats.branches
        assert samples[0]["branch_start"] == 0
        assert samples[-1]["branch_end"] == stats.branches
        for sample in samples:
            assert 0.0 <= sample["accuracy"] <= 1.0
            assert 0.0 <= sample["dynamic_coverage"] <= 1.0
            assert sum(sample["provider_share"].values()) == \
                pytest.approx(1.0)

    def test_partial_window_flushes(self):
        sampler = IntervalSampler(interval=100)
        assert sampler.flush_partial() is None
        stats, session = instrumented_stats(interval=400)
        # 900 = 2 * 400 + 100 -> flush emits the 100-branch tail.
        assert len(session.samples) == 3
        assert session.samples[-1]["branches"] == 100

    def test_mpki_approximation_uses_branch_density(self):
        _stats, session = instrumented_stats(interval=300)
        for sample in session.samples:
            expected = (1000.0 * sample["mispredicts"]
                        / (sample["branches"] * INSTRUCTIONS_PER_BRANCH))
            assert sample["mpki_approx"] == pytest.approx(expected)

    def test_interval_zero_disables_sampling(self):
        _stats, session = instrumented_stats(interval=0)
        assert session.samples == []

    def test_report_renders_components(self):
        _stats, session = instrumented_stats()
        report = session.report("tiny / medium")
        assert "== tiny / medium ==" in report
        assert "[engine]" in report and "[btb1]" in report
        assert "branches" in report

    def test_finish_is_idempotent(self):
        stats, session = instrumented_stats()
        before = session.to_dict()
        session.finish(stats)
        assert session.to_dict() == before
