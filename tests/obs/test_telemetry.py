"""The telemetry registry: instrument semantics and the null object."""

import pytest

from repro.obs.telemetry import (
    DEFAULT_BOUNDS,
    NULL_TELEMETRY,
    TELEMETRY_SCHEMA,
    Histogram,
    NullTelemetry,
    Telemetry,
    component_of,
)


class TestCounters:
    def test_created_on_first_use_and_cached(self):
        telemetry = Telemetry()
        counter = telemetry.counter("btb1.hits")
        assert counter.value == 0
        assert telemetry.counter("btb1.hits") is counter

    def test_inc_defaults_and_amounts(self):
        telemetry = Telemetry()
        telemetry.inc("btb1.hits")
        telemetry.inc("btb1.hits", 3)
        assert telemetry.counter("btb1.hits").value == 4

    def test_gauge_set(self):
        telemetry = Telemetry()
        telemetry.set_gauge("gpq.occupancy", 12)
        telemetry.set_gauge("gpq.occupancy", 7)
        assert telemetry.gauge("gpq.occupancy").value == 7


class TestHistogram:
    def test_bounds_are_inclusive_upper(self):
        histogram = Histogram("h", bounds=(0, 2, 4))
        for value in (0, 1, 2, 3, 4, 5):
            histogram.observe(value)
        # 0 -> bucket 0; 1,2 -> bucket 1; 3,4 -> bucket 2; 5 -> overflow.
        assert histogram.buckets == [1, 2, 2, 1]
        assert histogram.count == 6
        assert histogram.min == 0 and histogram.max == 5
        assert histogram.mean == pytest.approx(15 / 6)

    def test_empty_histogram_summary(self):
        histogram = Histogram("h")
        assert histogram.mean is None
        assert histogram.min is None and histogram.max is None
        assert histogram.to_dict()["count"] == 0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(4, 2))

    def test_registry_observe_uses_default_bounds(self):
        telemetry = Telemetry()
        telemetry.observe("search.lines", 3)
        histogram = telemetry.histogram("search.lines")
        assert histogram.bounds == DEFAULT_BOUNDS
        assert histogram.count == 1


class TestComponents:
    def test_component_of(self):
        assert component_of("btb1.hits") == "btb1"
        assert component_of("plain") == "plain"

    def test_components_span_all_instrument_kinds(self):
        telemetry = Telemetry()
        telemetry.inc("btb1.hits")
        telemetry.set_gauge("gpq.occupancy", 1)
        telemetry.observe("search.lines", 2)
        assert telemetry.components() == ["btb1", "gpq", "search"]
        names = [name for name, _ in telemetry.component_items("btb1")]
        assert names == ["btb1.hits"]

    def test_merge_counts_lands_as_prefixed_gauges(self):
        telemetry = Telemetry()
        telemetry.merge_counts("btb2", {"installs": 5, "occupancy": 9})
        assert telemetry.gauge("btb2.installs").value == 5
        assert telemetry.gauge("btb2.occupancy").value == 9


class TestExport:
    def test_to_dict_is_sorted_and_versioned(self):
        telemetry = Telemetry()
        telemetry.inc("z.last")
        telemetry.inc("a.first")
        payload = telemetry.to_dict()
        assert payload["schema"] == TELEMETRY_SCHEMA
        assert list(payload["counters"]) == ["a.first", "z.last"]

    def test_round_trip_through_from_dict(self):
        telemetry = Telemetry()
        telemetry.inc("btb1.hits", 7)
        telemetry.set_gauge("gpq.occupancy", 3)
        telemetry.observe("search.lines", 2)
        telemetry.observe("search.lines", 9)
        rebuilt = Telemetry.from_dict(telemetry.to_dict())
        assert rebuilt.to_dict() == telemetry.to_dict()


class TestNullTelemetry:
    def test_falsy_for_hot_path_guards(self):
        assert not NULL_TELEMETRY
        assert bool(Telemetry())
        assert NULL_TELEMETRY.enabled is False

    def test_all_operations_are_no_ops(self):
        null = NullTelemetry()
        null.inc("btb1.hits", 5)
        null.set_gauge("gpq.occupancy", 3)
        null.observe("search.lines", 2)
        null.merge_counts("btb2", {"installs": 1})
        assert null.components() == []
        assert list(null.component_items("btb1")) == []
        payload = null.to_dict()
        assert payload["counters"] == {}
        assert payload["gauges"] == {}
        assert payload["histograms"] == {}

    def test_returned_instruments_are_detached(self):
        null = NullTelemetry()
        null.counter("x").inc()
        # A fresh throwaway each time — nothing accumulates.
        assert null.counter("x").value == 0
