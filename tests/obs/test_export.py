"""OpenMetrics export: rendering, parsing, round trips and rollups."""

import pytest

from repro.obs.export import (
    OpenMetricsError,
    metric_name,
    parse_openmetrics,
    rollup_results,
    to_canonical_json,
    to_openmetrics,
)
from repro.obs.telemetry import Telemetry


def sample_registry(scale=1):
    telemetry = Telemetry()
    telemetry.inc("btb1.hits", 40 * scale)
    telemetry.inc("btb1.misses", 3 * scale)
    telemetry.set_gauge("gpq.occupancy", 5.0 * scale)
    for value in (1.0, 2.0, 40.0):
        telemetry.observe("gpq.occupancy", value * scale)
    return telemetry


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("btb1.hit_rate") == "btb1_hit_rate"

    def test_leading_digit_prefixed(self):
        assert metric_name("2nd.level")[0].isalpha() or \
            metric_name("2nd.level")[0] == "_"

    def test_hostile_characters_sanitised(self):
        assert '"' not in metric_name('x."quoted"{}')


class TestRender:
    def test_counter_families_take_total_suffix(self):
        text = to_openmetrics(sample_registry())
        assert "# TYPE btb1_hits counter" in text
        assert "btb1_hits_total 40" in text

    def test_histogram_families_take_dist_suffix(self):
        # A histogram may share its dotted name with a gauge (the
        # registry allows it); the _dist suffix keeps the families
        # from colliding.
        text = to_openmetrics(sample_registry())
        assert "# TYPE gpq_occupancy gauge" in text
        assert "# TYPE gpq_occupancy_dist histogram" in text
        assert 'gpq_occupancy_dist_bucket{le="+Inf"} 3' in text
        assert "gpq_occupancy_dist_count 3" in text

    def test_help_line_carries_dotted_name(self):
        text = to_openmetrics(sample_registry())
        assert "# HELP btb1_hits instrument btb1.hits" in text

    def test_document_is_eof_terminated(self):
        assert to_openmetrics(sample_registry()).endswith("# EOF\n")

    def test_groups_share_families_split_by_labels(self):
        groups = [
            ((("backend", "object"),), sample_registry(1)),
            ((("backend", "array"),), sample_registry(2)),
        ]
        text = to_openmetrics(groups)
        assert text.count("# TYPE btb1_hits counter") == 1
        assert 'btb1_hits_total{backend="array"} 80' in text
        assert 'btb1_hits_total{backend="object"} 40' in text

    def test_accepts_payload_dicts(self):
        payload = sample_registry().to_dict()
        assert to_openmetrics(payload) == to_openmetrics(sample_registry())

    def test_deterministic_output(self):
        assert to_openmetrics(sample_registry()) == \
            to_openmetrics(sample_registry())


class TestRoundTrip:
    def test_single_registry_round_trips(self):
        text = to_openmetrics(sample_registry())
        assert to_openmetrics(parse_openmetrics(text)) == text

    def test_grouped_registries_round_trip(self):
        groups = [
            ((("backend", "object"), ("workload", "transactions")),
             sample_registry(1)),
            ((("backend", "array"), ("workload", "transactions")),
             sample_registry(3)),
        ]
        text = to_openmetrics(groups)
        assert to_openmetrics(parse_openmetrics(text)) == text

    def test_parsed_values_match(self):
        parsed = parse_openmetrics(to_openmetrics(sample_registry()))
        ((labels, telemetry),) = parsed
        assert labels == ()
        assert telemetry.counters["btb1.hits"].value == 40
        assert telemetry.gauges["gpq.occupancy"].value == 5.0
        assert telemetry.histograms["gpq.occupancy"].count == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(OpenMetricsError):
            parse_openmetrics("btb1_hits_total not-a-number\n# EOF\n")

    def test_hostile_label_values_round_trip(self):
        # Quotes, backslashes, closing braces, spaces and newlines in a
        # label value must survive render -> parse exactly.
        groups = [((("workload", 'a"b\\c}d e\nf'),), sample_registry())]
        text = to_openmetrics(groups)
        ((labels, _),) = parse_openmetrics(text)
        assert labels == (("workload", 'a"b\\c}d e\nf'),)
        assert to_openmetrics(parse_openmetrics(text)) == text


class TestCanonicalJson:
    def test_single_registry_exports_to_dict(self):
        import json

        payload = json.loads(to_canonical_json(sample_registry()))
        assert payload == sample_registry().to_dict()

    def test_groups_export_labelled_list(self):
        import json

        groups = [((("backend", "object"),), sample_registry())]
        payload = json.loads(to_canonical_json(groups))
        assert payload["groups"][0]["labels"] == {"backend": "object"}


class FakeCell:
    def __init__(self, backend, engine_mode, workload):
        self.backend = backend
        self.engine_mode = engine_mode
        self.workload = workload


class FakeResult:
    def __init__(self, telemetry):
        self.telemetry = telemetry


class TestRollup:
    def test_groups_by_backend_mode_workload_plus_total(self):
        cells = [
            FakeCell("object", "reference", "transactions"),
            FakeCell("object", "reference", "transactions"),
            FakeCell("array", "fast", "dispatch"),
        ]
        results = [
            FakeResult(sample_registry(1).to_dict()),
            FakeResult(sample_registry(1).to_dict()),
            FakeResult(sample_registry(2).to_dict()),
        ]
        rollup = rollup_results(cells, results)
        labels = [dict(group_labels) for group_labels, _ in rollup]
        assert {"backend": "object", "engine_mode": "reference",
                "workload": "transactions"} in labels
        assert {} in labels  # the grand total
        by_labels = {group_labels: telemetry
                     for group_labels, telemetry in rollup}
        merged = by_labels[(("backend", "object"),
                            ("engine_mode", "reference"),
                            ("workload", "transactions"))]
        assert merged.counters["btb1.hits"].value == 80
        assert by_labels[()].counters["btb1.hits"].value == 160

    def test_cells_without_telemetry_are_skipped(self):
        cells = [FakeCell("object", "reference", "transactions")]
        assert rollup_results(cells, [FakeResult(None)]) == []

    def test_program_valued_workload_labelled_by_name(self):
        # Fleet cells carry materialised Programs, not suite names; the
        # label must be the program's name, never the object repr.
        class FakeProgram:
            name = "patterns"

        cells = [FakeCell("object", "reference", FakeProgram())]
        ((labels, _), _total) = rollup_results(
            cells, [FakeResult(sample_registry().to_dict())])
        assert ("workload", "patterns") in labels
