"""Run manifests: build/validate round trips and loader multiplexing."""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine.functional import FunctionalEngine
from repro.obs.manifest import (
    MANIFEST_KINDS,
    MANIFEST_SCHEMA,
    ManifestError,
    build_manifest,
    host_info,
    is_manifest,
    stats_digest,
    validate_manifest,
)
from repro.verification.differential import stats_fingerprint
from repro.workloads import get_workload


def run_stats(branches=400):
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    return engine.run_program(get_workload("transactions"),
                              max_branches=branches, warmup_branches=100)


class TestBuild:
    def test_minimal_manifest_validates(self):
        manifest = build_manifest("run")
        assert validate_manifest(manifest) is manifest
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["kind"] == "run"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ManifestError, match="unknown manifest kind"):
            build_manifest("orbit")

    def test_every_declared_kind_builds(self):
        for kind in MANIFEST_KINDS:
            validate_manifest(build_manifest(kind))

    def test_host_section_has_environment_slice(self):
        host = host_info()
        for key in ("platform", "python", "implementation", "cpu_count"):
            assert key in host

    def test_config_shape_is_the_specialization_key(self):
        from repro.engine.specialize import config_shape

        manifest = build_manifest("run", config=z15_config(),
                                  config_name="z15")
        assert manifest["config"]["name"] == "z15"
        assert manifest["config"]["shape"] == list(config_shape(z15_config()))

    def test_config_name_without_object_keeps_null_shape(self):
        manifest = build_manifest("run", config_name="l-tage")
        assert manifest["config"] == {"name": "l-tage", "shape": None}

    def test_stats_digest_carries_fingerprint_and_headlines(self):
        stats = run_stats()
        manifest = build_manifest("run", stats=stats)
        digest = manifest["stats"]
        assert digest["fingerprint"] == stats_fingerprint(stats)
        assert digest["branches"] == stats.branches
        assert digest["mpki"] == stats.mpki

    def test_stats_digest_none_for_no_stats(self):
        assert stats_digest(None) is None

    def test_grid_and_extra_merge_in(self):
        manifest = build_manifest("fleet", grid={"cells": 8},
                                  extra={"workers": 2})
        assert manifest["grid"] == {"cells": 8}
        assert manifest["workers"] == 2

    def test_timings_section(self):
        manifest = build_manifest("run", wall_seconds=1.5, cpu_seconds=1.2)
        assert manifest["timings"] == {"wall_seconds": 1.5,
                                       "cpu_seconds": 1.2}


class TestValidate:
    def test_rejects_non_dict(self):
        with pytest.raises(ManifestError, match="expected a JSON object"):
            validate_manifest(["not", "a", "manifest"])

    def test_rejects_wrong_schema(self):
        with pytest.raises(ManifestError, match="unsupported manifest"):
            validate_manifest({"schema": "repro-manifest/v9", "kind": "run",
                               "host": {}})

    def test_rejects_missing_required_field(self):
        with pytest.raises(ManifestError, match="missing fields"):
            validate_manifest({"schema": MANIFEST_SCHEMA, "kind": "run"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ManifestError, match="unknown manifest kind"):
            validate_manifest({"schema": MANIFEST_SCHEMA, "kind": "orbit",
                               "host": {}})

    def test_is_manifest_is_loose_but_schema_keyed(self):
        assert is_manifest(build_manifest("sweep"))
        assert not is_manifest({"schema": "repro-sweep-stream/v1"})
        assert not is_manifest(None)
        assert not is_manifest("repro-manifest/v1")
