"""JSONL trace round-trips, schema validation and reconciliation."""

import json

import pytest

from repro.core.predictor import LookaheadBranchPredictor
from repro.engine.functional import FunctionalEngine
from repro.obs.session import TelemetrySession
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceSchemaError,
    TraceWriter,
    reconcile_with_stats,
    validate_record,
)
from repro.stats.analysis import load_trace
from repro.verification.differential import comparable_stats

from tests.conftest import build_medium_program, small_predictor_config


def traced_run(tmp_path, branches=800, warmup=150, every=1, interval=250,
               name="run.jsonl"):
    """One instrumented run; returns (trace path, RunStats, session)."""
    path = str(tmp_path / name)
    predictor = LookaheadBranchPredictor(small_predictor_config())
    session = TelemetrySession(predictor=predictor, interval=interval,
                               trace_path=path, trace_every=every,
                               skip=warmup)
    session.begin(workload="medium", predictor="tiny", seed=5,
                  branches=branches)
    engine = FunctionalEngine(predictor, telemetry=session)
    stats = engine.run_program(build_medium_program(), max_branches=branches,
                               warmup_branches=warmup, seed=5)
    session.finish(stats)
    return path, stats, session


class TestRoundTrip:
    def test_loader_round_trips_a_full_trace(self, tmp_path):
        path, stats, _session = traced_run(tmp_path)
        document = load_trace(path)
        assert document.header["schema"] == TRACE_SCHEMA
        assert document.header["every"] == 1
        assert not document.sampled
        assert len(document.branches) == stats.branches
        assert document.intervals  # 800 branches / 250 window
        assert document.summary is not None
        # The stored summary is exactly the run's comparable slice.
        assert document.stats == json.loads(
            json.dumps(comparable_stats(stats))
        )

    def test_reconciles_clean_against_summary_and_stats(self, tmp_path):
        path, stats, _session = traced_run(tmp_path)
        document = load_trace(path)
        assert document.reconcile() == []
        assert reconcile_with_stats(document.branches, stats) == []
        aggregate = document.aggregate()
        assert aggregate["branches"] == stats.branches
        assert aggregate["mispredicted_branches"] == \
            stats.mispredicted_branches

    def test_telemetry_registry_rebuilds_from_summary(self, tmp_path):
        path, stats, session = traced_run(tmp_path)
        rebuilt = load_trace(path).telemetry()
        assert rebuilt.to_dict() == session.telemetry.to_dict()
        assert rebuilt.counter("engine.branches").value == stats.branches

    def test_sampled_trace_declares_itself_unreconcilable(self, tmp_path):
        path, stats, _session = traced_run(tmp_path, every=4)
        document = load_trace(path)
        assert document.sampled
        assert len(document.branches) == stats.branches // 4
        messages = document.reconcile()
        assert len(messages) == 1 and "sampled" in messages[0]

    def test_traces_of_seeded_runs_are_byte_identical(self, tmp_path):
        first, _, _ = traced_run(tmp_path, branches=400, name="a.jsonl")
        second, _, _ = traced_run(tmp_path, branches=400, name="b.jsonl")
        with open(first, "rb") as fa, open(second, "rb") as fb:
            assert fa.read() == fb.read()

    def test_detects_corrupted_branch_records(self, tmp_path):
        path, stats, _session = traced_run(tmp_path)
        document = load_trace(path)
        document.branches[0]["taken"] = not document.branches[0]["taken"]
        assert document.reconcile() != []


class TestSchemaValidation:
    def test_unknown_record_type(self):
        with pytest.raises(TraceSchemaError, match="unknown record type"):
            validate_record({"type": "bogus"}, 3)

    def test_missing_fields(self):
        with pytest.raises(TraceSchemaError, match="missing fields"):
            validate_record({"type": "branch", "i": 0}, 2)

    def test_non_object_line(self):
        with pytest.raises(TraceSchemaError, match="expected a JSON object"):
            validate_record([1, 2, 3], 1)

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({
            "type": "header", "schema": "repro-trace/v999", "workload": "w",
            "predictor": "p", "seed": 1, "branches": 1, "interval": 0,
            "every": 1,
        }) + "\n")
        with pytest.raises(TraceSchemaError, match="unsupported"):
            load_trace(str(path))

    def test_record_before_header(self, tmp_path):
        path, _, _ = traced_run(tmp_path)
        lines = open(path).read().splitlines()
        rewritten = tmp_path / "reordered.jsonl"
        rewritten.write_text("\n".join(lines[1:] + lines[:1]) + "\n")
        with pytest.raises(TraceSchemaError, match="before header"):
            load_trace(str(rewritten))

    def test_invalid_json_mid_file(self, tmp_path):
        path, _, _ = traced_run(tmp_path)
        lines = open(path).read().splitlines()
        lines.insert(len(lines) - 1, "{not json")
        with open(path, "w") as stream:
            stream.write("\n".join(lines) + "\n")
        with pytest.raises(TraceSchemaError,
                           match=r"\(byte offset \d+\): malformed"):
            load_trace(str(path))

    def test_torn_tail_line_is_dropped(self, tmp_path):
        # The crash contract: a killed writer tears at most the final
        # line, and the loader drops it instead of refusing the file.
        path, _, _ = traced_run(tmp_path)
        intact = load_trace(str(path))
        with open(path, "a") as stream:
            stream.write('{"type": "branch", "index": 99')
        torn = load_trace(str(path))
        assert len(torn.branches) == len(intact.branches)

    def test_missing_header_entirely(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceSchemaError, match="no header"):
            load_trace(str(path))


class TestWriter:
    def test_rejects_nonpositive_every(self, tmp_path):
        with pytest.raises(ValueError):
            TraceWriter(str(tmp_path / "t.jsonl"), every=0)

    def test_context_manager_flushes_on_error_path(self, tmp_path):
        path = str(tmp_path / "crash.jsonl")
        with pytest.raises(RuntimeError):
            with TraceWriter(path) as writer:
                writer.write_header(workload="w", predictor="p", seed=1,
                                    branches=10, interval=0)
                raise RuntimeError("run died mid-trace")
        # Buffered records reached disk despite the crash: the file is
        # loadable (no summary — exactly what a killed run looks like).
        document = load_trace(path)
        assert document.header["workload"] == "w"
        assert document.summary is None

    def test_write_after_close_raises(self, tmp_path):
        writer = TraceWriter(str(tmp_path / "t.jsonl"))
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.write_header(workload="w", predictor="p", seed=1,
                                branches=1, interval=0)
