"""The asyncio front end over real shard processes.

These tests boot a real :class:`PredictorServer` (worker processes via
the spawn-family start method — safe under pytest, whose main module is
importable) and speak the wire protocol through :class:`ServeClient`.
Kept deliberately small: one short stream per test; the heavy fault
matrix lives in the chaos harness.
"""

import asyncio

import pytest

from repro.serve import protocol
from repro.serve.client import (
    LoadGenerator,
    ServeClient,
    TenantPlan,
    reference_fingerprint,
)
from repro.serve.server import PredictorServer, ServeOptions


def _options(**overrides):
    base = dict(shards=1, heartbeat_interval=0.1, heartbeat_timeout=2.0,
                checkpoint_every=2)
    base.update(overrides)
    return ServeOptions(**base)


def _run(coro):
    return asyncio.run(coro)


async def _with_server(tmp_path, options, body):
    server = PredictorServer(tmp_path / "spool", options)
    await server.start()
    try:
        client = await ServeClient.connect("127.0.0.1", server.port)
        try:
            return await body(server, client)
        finally:
            await client.aclose()
    finally:
        await server.stop(reason="test")


def test_served_stream_matches_local_oracle(tmp_path):
    plan = TenantPlan("t0", workload="transactions", seed=9, branches=90,
                      batch_size=30)

    async def body(server, client):
        opened = await client.open("t0")
        assert opened["status"] == "ok"
        fingerprint = protocol.GENESIS_FINGERPRINT
        last = None
        for seq, rows in enumerate(plan.batches()):
            last = await client.predict("t0", seq, rows)
            assert last["status"] == "ok", last
            fingerprint = protocol.fold_fingerprint(fingerprint,
                                                    last["records"])
            assert last["fingerprint"] == fingerprint
        stats = await client.stats("t0")
        assert stats["status"] == "ok"
        metrics = await client.metrics()
        return last, stats, metrics

    last, stats, metrics = _run(_with_server(tmp_path, _options(), body))
    oracle = reference_fingerprint(plan)
    assert last["fingerprint"] == oracle["fingerprint"]
    assert stats["stats"]["branches"] == oracle["branches"]
    assert metrics["metrics"]["answered"] == 3
    assert metrics["metrics"]["accounted"]


def test_unknown_tenant_and_bad_sequence_reject_cleanly(tmp_path):
    plan = TenantPlan("t0", workload="dispatch", seed=2, branches=30,
                      batch_size=30)

    async def body(server, client):
        rows = plan.batches()[0]
        ghost = await client.predict("ghost", 0, rows)
        await client.open("t0")
        await client.predict("t0", 0, rows)
        stale = await client.predict("t0", 7, rows)
        bogus = await client.call("frobnicate")
        return ghost, stale, bogus, server.metrics.accounted()

    ghost, stale, bogus, accounted = _run(
        _with_server(tmp_path, _options(), body))
    assert ghost["status"] == "rejected"
    assert ghost["code"] == protocol.REJECT_UNKNOWN_TENANT
    assert stale["status"] == "rejected"
    assert stale["code"] == protocol.REJECT_BAD_SEQ
    assert bogus["status"] == "error"
    assert accounted


def test_shard_kill_recovers_from_journal_exactly(tmp_path):
    plan = TenantPlan("t0", workload="services", seed=4, branches=120,
                      batch_size=30)

    async def body(server, client):
        await client.open("t0")
        batches = plan.batches()
        fingerprint = protocol.GENESIS_FINGERPRINT
        for seq, rows in enumerate(batches):
            if seq == 2:
                await client.chaos(mode="kill", shard=0)
            for _attempt in range(200):
                response = await client.predict("t0", seq, rows)
                if response["status"] == "ok":
                    break
                assert response["status"] == "retry" or (
                    response["status"] == "rejected"
                    and response["code"] == protocol.REJECT_UNKNOWN_TENANT
                ), response
                if response.get("code") == protocol.REJECT_UNKNOWN_TENANT:
                    await client.open("t0")
                await asyncio.sleep(0.02)
            assert response["status"] == "ok", response
            fingerprint = protocol.fold_fingerprint(fingerprint,
                                                    response["records"])
        return response, fingerprint, server.metrics.restarts

    response, fingerprint, restarts = _run(
        _with_server(tmp_path, _options(), body))
    assert restarts >= 1
    # Chains agree with each other AND with the uninterrupted oracle:
    # the kill cost latency, never a byte of the stream.
    assert response["fingerprint"] == fingerprint
    assert fingerprint == reference_fingerprint(plan)["fingerprint"]


def test_queue_depth_backpressure_rejects_then_drains(tmp_path):
    plan = TenantPlan("t0", workload="correlated", seed=6, branches=240,
                      batch_size=20, burst=12)

    async def body(server, client):
        report = await LoadGenerator(
            "127.0.0.1", server.port).run([plan])
        return report, server.metrics.to_dict()

    report, metrics = _run(_with_server(
        tmp_path, _options(queue_depth=2, shed_highwater=4), body))
    assert report["complete"]
    assert report["chains_agree"]
    rejected = metrics["rejected"].get("queue-full", 0) + \
        metrics["rejected"].get("shed", 0)
    assert rejected > 0
    assert metrics["accounted"]


def test_lru_eviction_under_warm_cap_still_serves_exact_chains(tmp_path):
    plans = [
        TenantPlan(f"t{i}", workload="transactions", seed=10 + i,
                   branches=60, batch_size=20)
        for i in range(3)
    ]

    async def body(server, client):
        report = await LoadGenerator(
            "127.0.0.1", server.port).run(plans)
        return report, server.metrics.to_dict()

    report, metrics = _run(_with_server(
        tmp_path, _options(warm_tenants=1), body))
    assert report["complete"]
    assert report["chains_agree"]
    assert metrics["evictions"] > 0
    assert metrics["restores"] > 0
    assert metrics["accounted"]


def test_final_manifest_accounts_for_the_run(tmp_path):
    plan = TenantPlan("t0", workload="patterned", seed=3, branches=60,
                      batch_size=30)

    async def body(server, client):
        await client.open("t0")
        for seq, rows in enumerate(plan.batches()):
            response = await client.predict("t0", seq, rows)
            assert response["status"] == "ok"
        return None

    async def run():
        server = PredictorServer(tmp_path / "spool", _options())
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        try:
            await body(server, client)
        finally:
            await client.aclose()
        return await server.stop(reason="test-shutdown")

    manifest = _run(run())
    assert manifest["kind"] == "serve"
    assert manifest["serve"]["reason"] == "test-shutdown"
    assert manifest["serve"]["metrics"]["answered"] == 2
    assert manifest["serve"]["metrics"]["accounted"]
    assert (tmp_path / "spool" / "manifest.json").exists()
    assert (tmp_path / "spool" / "events.jsonl").exists()
