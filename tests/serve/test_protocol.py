"""Wire protocol: codecs, tenant names, the fingerprint chain."""

import json

import pytest

from repro.common.errors import ServeError
from repro.serve import protocol
from repro.serve.client import TenantPlan
from repro.workloads import get_workload
from repro.workloads.executor import Executor


def _branches(count=25, workload="transactions", seed=3):
    executor = Executor(get_workload(workload, seed), seed=seed)
    return list(executor.run(max_branches=count))


# -- tenant names --------------------------------------------------------

@pytest.mark.parametrize("name", ["t", "tenant-0", "A.b_c-9", "x" * 64])
def test_valid_tenant_names(name):
    assert protocol.validate_tenant(name) == name


@pytest.mark.parametrize("name", [
    "", ".hidden", "-lead", "has space", "a/b", "x" * 65, 7, None,
])
def test_invalid_tenant_names(name):
    with pytest.raises(ServeError):
        protocol.validate_tenant(name)


# -- messages ------------------------------------------------------------

def test_message_roundtrip():
    message = {"op": "predict", "id": 3, "branches": [[0, 1]]}
    line = protocol.encode_message(message)
    assert line.endswith(b"\n")
    assert protocol.decode_message(line) == message


def test_decode_message_rejects_garbage():
    with pytest.raises(ServeError):
        protocol.decode_message(b"{torn\n")
    with pytest.raises(ServeError):
        protocol.decode_message(b'"not an object"\n')


# -- branch codec --------------------------------------------------------

def test_branch_roundtrip_is_lossless():
    for branch in _branches():
        row = protocol.encode_branch(branch)
        # The row must survive a JSON trip (that is the wire).
        row = json.loads(json.dumps(row))
        decoded = protocol.decode_branch(row)
        assert decoded.instruction.address == branch.instruction.address
        assert decoded.instruction.kind == branch.instruction.kind
        assert decoded.taken == branch.taken
        assert decoded.target == branch.target
        assert decoded.context == branch.context
        assert decoded.thread == branch.thread
        # And re-encode to the identical row.
        assert protocol.encode_branch(decoded) == row


@pytest.mark.parametrize("row", [
    [], [1, 2], "nope", None, [0, "addr", 4, "cond-rel", 0, 1, 0, 0, 0],
])
def test_decode_branch_rejects_malformed_rows(row):
    with pytest.raises(ServeError):
        protocol.decode_branch(row)


# -- fingerprint chain ---------------------------------------------------

def test_genesis_fingerprint_is_schema_anchored():
    assert protocol.GENESIS_FINGERPRINT == \
        __import__("hashlib").sha256(
            protocol.PROTOCOL_SCHEMA.encode("ascii")).hexdigest()


def test_fold_fingerprint_is_deterministic_and_order_sensitive():
    records = [[[0, 100, 4], True, 120, False], [[1, 120, 4], False, 0, True]]
    a = protocol.fold_fingerprint(protocol.GENESIS_FINGERPRINT, records)
    b = protocol.fold_fingerprint(protocol.GENESIS_FINGERPRINT, records)
    assert a == b
    flipped = protocol.fold_fingerprint(protocol.GENESIS_FINGERPRINT,
                                        list(reversed(records)))
    assert flipped != a
    # Chaining differs from folding everything at once: the chain
    # commits to batch boundaries too.
    chained = protocol.fold_fingerprint(a, records)
    assert chained not in (a, flipped)


def test_tenant_plan_batches_are_deterministic():
    plan = TenantPlan("t0", workload="dispatch", seed=11, branches=60,
                      batch_size=25)
    first, second = plan.batches(), plan.batches()
    assert first == second
    assert [len(batch) for batch in first] == [25, 25, 10]
