"""Per-tenant durable artifacts: journal, snapshot, rotation, tearing."""

import pytest

from repro.common.errors import JournalError
from repro.serve.journal import (
    JOURNAL_SCHEMA,
    JournalWriter,
    TenantPaths,
    journal_header,
    load_journal,
    read_snapshot,
    write_snapshot,
)


def _writer(tmp_path, tenant="t0"):
    paths = TenantPaths(tmp_path, tenant).ensure()
    return paths, JournalWriter(paths.journal,
                                journal_header(tenant, "z15", "object"))


def test_journal_roundtrip(tmp_path):
    paths, writer = _writer(tmp_path)
    writer.append({"type": "batch", "seq": 0, "branches": [[1, 2]]})
    writer.append({"type": "evict", "seq": 1})
    writer.append({"type": "restore", "seq": 1})
    writer.close()
    header, events = load_journal(paths.journal)
    assert header["schema"] == JOURNAL_SCHEMA
    assert header["tenant"] == "t0"
    assert header["config"] == "z15"
    assert [event["type"] for event in events] == \
        ["batch", "evict", "restore"]


def test_reopen_appends_without_second_header(tmp_path):
    paths, writer = _writer(tmp_path)
    writer.append({"type": "batch", "seq": 0, "branches": []})
    writer.close()
    again = JournalWriter(paths.journal,
                          journal_header("t0", "z15", "object"))
    again.append({"type": "batch", "seq": 1, "branches": []})
    again.close()
    header, events = load_journal(paths.journal)
    assert [event["seq"] for event in events] == [0, 1]


def test_append_rejects_unknown_event_type(tmp_path):
    _, writer = _writer(tmp_path)
    with pytest.raises(JournalError):
        writer.append({"type": "frobnicate", "seq": 0})
    writer.close()


def test_rotate_compacts_to_header_only(tmp_path):
    paths, writer = _writer(tmp_path)
    for seq in range(5):
        writer.append({"type": "batch", "seq": seq, "branches": []})
    writer.rotate()
    writer.append({"type": "batch", "seq": 5, "branches": []})
    writer.close()
    header, events = load_journal(paths.journal)
    assert header["tenant"] == "t0"
    assert [event["seq"] for event in events] == [5]


def test_torn_tail_dropped_leniently_refused_strictly(tmp_path):
    paths, writer = _writer(tmp_path)
    writer.append({"type": "batch", "seq": 0, "branches": []})
    writer.close()
    with open(paths.journal, "a") as stream:
        stream.write('{"type": "batch", "seq": 1, "bra')  # killed writer
    _, events = load_journal(paths.journal)
    assert [event["seq"] for event in events] == [0]
    with pytest.raises(JournalError, match=r"torn final line"):
        load_journal(paths.journal, strict=True)


def test_corruption_mid_file_is_always_fatal(tmp_path):
    paths, writer = _writer(tmp_path)
    writer.append({"type": "batch", "seq": 0, "branches": []})
    writer.close()
    with open(paths.journal, "a") as stream:
        stream.write("{broken}\n")
        stream.write('{"type": "batch", "seq": 1, "branches": []}\n')
    with pytest.raises(JournalError, match=r":3 \(byte offset \d+\)"):
        load_journal(paths.journal)


def test_journal_without_header_is_fatal(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text('{"type": "batch", "seq": 0, "branches": []}\n')
    with pytest.raises(JournalError, match="before header"):
        load_journal(path)


def test_snapshot_roundtrip_and_missing(tmp_path):
    target = tmp_path / "snapshot.pickle"
    assert read_snapshot(target) is None
    write_snapshot(target, {"tenant": "t0", "seq": 4, "blob": [1, 2, 3]})
    snapshot = read_snapshot(target)
    assert snapshot["tenant"] == "t0"
    assert snapshot["seq"] == 4


def test_snapshot_corruption_is_fatal_not_silent(tmp_path):
    target = tmp_path / "snapshot.pickle"
    target.write_bytes(b"\x80\x04 definitely not a pickle")
    with pytest.raises(JournalError, match="unreadable snapshot"):
        read_snapshot(target)


def test_snapshot_schema_mismatch_is_fatal(tmp_path):
    import pickle

    target = tmp_path / "snapshot.pickle"
    target.write_bytes(pickle.dumps({"schema": "something-else/v9"}))
    with pytest.raises(JournalError, match="unsupported snapshot schema"):
        read_snapshot(target)


def test_tenant_paths_layout(tmp_path):
    paths = TenantPaths(tmp_path, "tenant-7")
    assert not paths.exists()
    paths.ensure()
    assert paths.directory == tmp_path / "tenants" / "tenant-7"
    assert paths.journal.parent == paths.directory
    assert paths.snapshot.parent == paths.directory
