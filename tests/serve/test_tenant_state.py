"""TenantState: the exactness contract, in-process.

Live serving, idempotent retries, crash recovery by journal replay and
the lossy evict tier are all exercised here without any processes or
sockets — the same compute path the shard workers run.
"""

import pytest

from repro.common.errors import JournalError
from repro.serve import protocol
from repro.serve.client import TenantPlan, reference_fingerprint
from repro.serve.shard import TenantState

PLAN = TenantPlan("t0", workload="transactions", seed=5, branches=120,
                  batch_size=30)


def _serve_all(state, batches, start=0):
    response = None
    for seq in range(start, len(batches)):
        response = state.predict(seq, batches[seq])
        assert "rejected" not in response, response
    return response


def test_live_stream_matches_uninterrupted_oracle(tmp_path):
    state = TenantState("t0", "z15", "object", tmp_path)
    state.open_fresh()
    last = _serve_all(state, PLAN.batches())
    oracle = reference_fingerprint(PLAN)
    assert last["fingerprint"] == oracle["fingerprint"]
    assert state.stats.branches == oracle["branches"]
    state.close()


def test_retry_of_last_batch_is_cached_and_identical(tmp_path):
    state = TenantState("t0", "z15", "object", tmp_path)
    state.open_fresh()
    batches = PLAN.batches()
    first = state.predict(0, batches[0])
    retried = state.predict(0, batches[0])
    assert retried["cached"] and not first["cached"]
    assert retried["records"] == first["records"]
    assert retried["fingerprint"] == first["fingerprint"]
    # And the retry did not advance the chain.
    second = state.predict(1, batches[1])
    assert second["next_seq"] == 2
    state.close()


def test_out_of_window_sequence_is_rejected(tmp_path):
    state = TenantState("t0", "z15", "object", tmp_path)
    state.open_fresh()
    batches = PLAN.batches()
    state.predict(0, batches[0])
    for bad in (5, -1, "0", None):
        response = state.predict(bad, batches[0])
        assert response["rejected"] == protocol.REJECT_BAD_SEQ
    # The rejection changed nothing.
    response = state.predict(1, batches[1])
    assert "rejected" not in response
    state.close()


def test_recover_after_clean_close_resumes_exactly(tmp_path):
    batches = PLAN.batches()
    half = len(batches) // 2
    state = TenantState("t0", "z15", "object", tmp_path)
    state.open_fresh()
    for seq in range(half):
        state.predict(seq, batches[seq])
    state.close()

    recovered = TenantState.recover("t0", tmp_path)
    assert recovered.next_seq == half
    # The pre-crash retry contract survives recovery too.
    cached = recovered.predict(half - 1, batches[half - 1])
    assert cached["cached"]
    last = _serve_all(recovered, batches, start=half)
    assert last["fingerprint"] == reference_fingerprint(PLAN)["fingerprint"]
    recovered.close()


def test_recover_from_journal_only_no_snapshot(tmp_path):
    batches = PLAN.batches()
    state = TenantState("t0", "z15", "object", tmp_path)  # no checkpointing
    state.open_fresh()
    for seq in range(2):
        state.predict(seq, batches[seq])
    state.journal.close()  # crash: no close(), no snapshot written

    recovered = TenantState.recover("t0", tmp_path)
    assert recovered.next_seq == 2
    last = _serve_all(recovered, batches, start=2)
    assert last["fingerprint"] == reference_fingerprint(PLAN)["fingerprint"]
    recovered.close()


def test_recover_with_torn_journal_tail_replays_prefix(tmp_path):
    batches = PLAN.batches()
    state = TenantState("t0", "z15", "object", tmp_path)
    state.open_fresh()
    for seq in range(3):
        state.predict(seq, batches[seq])
    state.journal.close()
    with open(state.paths.journal, "a") as stream:
        stream.write('{"type": "batch", "seq": 3, "branch')  # killed mid-append

    recovered = TenantState.recover("t0", tmp_path)
    # The torn batch was never acknowledged; the client resends it.
    assert recovered.next_seq == 3
    last = _serve_all(recovered, batches, start=3)
    assert last["fingerprint"] == reference_fingerprint(PLAN)["fingerprint"]
    recovered.close()


def test_evict_restore_chain_is_replayable(tmp_path):
    """The evict tier is lossy for accuracy but the *served* stream is
    still exact: offline replay of the journal reproduces it bit for
    bit, evictions included."""
    batches = PLAN.batches()
    state = TenantState("t0", "z15", "object", tmp_path)
    state.open_fresh()
    state.predict(0, batches[0])
    assert state.evict()
    assert not state.warm
    assert not state.evict()  # idempotent when cold
    # Next predict re-warms from the lossy tier (journaled as restore).
    response = state.predict(1, batches[1])
    assert response["restored"]
    for seq in range(2, len(batches)):
        state.predict(seq, batches[seq])
    served = state.fingerprint
    state.close()

    replayed = TenantState.recover("t0", tmp_path)
    assert replayed.fingerprint == served
    assert replayed.next_seq == len(batches)
    replayed.close()


def test_checkpoint_rotation_bounds_replay(tmp_path):
    from repro.serve.journal import load_journal

    batches = PLAN.batches()
    state = TenantState("t0", "z15", "object", tmp_path, checkpoint_every=2)
    state.open_fresh()
    for seq in range(len(batches)):
        state.predict(seq, batches[seq])
    served = state.fingerprint
    state.journal.close()  # crash without the closing checkpoint
    # Rotation kept the journal to at most checkpoint_every batches.
    _, events = load_journal(state.paths.journal)
    assert len([e for e in events if e["type"] == "batch"]) <= 2

    recovered = TenantState.recover("t0", tmp_path, checkpoint_every=2)
    assert recovered.fingerprint == served
    recovered.close()


def test_recover_unknown_tenant_raises(tmp_path):
    with pytest.raises(JournalError, match="nothing to recover"):
        TenantState.recover("ghost", tmp_path)
