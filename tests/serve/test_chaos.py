"""The chaos harness audits itself: scenarios must pass their checks.

One scenario per fault class runs in the tier-1 suite (the full
seven-scenario sweep is the ``serve-chaos`` CLI / CI job); each run
asserts the three invariant families — liveness, exactness,
accounting — on a live server with real shard processes.
"""

import asyncio

import pytest

from repro.common.errors import ServeError
from repro.serve.chaos import SCENARIOS, run_chaos, run_scenario


def _failures(report):
    return [check for check in report["checks"] if not check["passed"]]


def test_baseline_scenario_is_clean(tmp_path):
    report = asyncio.run(run_scenario("baseline", 11, tmp_path,
                                      tenants=2, branches=120, batch=40))
    assert report["passed"], _failures(report)
    # No faults → no restarts, and the ledger balanced.
    assert report["metrics"]["restarts"] == 0
    assert report["metrics"]["accounted"]


def test_kill_scenario_restarts_and_stays_exact(tmp_path):
    report = asyncio.run(run_scenario("kill", 11, tmp_path,
                                      tenants=2, branches=160, batch=40))
    assert report["passed"], _failures(report)
    assert report["injected"]["kills"] >= 1
    assert report["metrics"]["restarts"] >= 1
    names = [check["name"] for check in report["checks"]]
    assert "stream-identical-to-uninterrupted" in names


def test_flood_scenario_sheds_and_answers_everything(tmp_path):
    report = asyncio.run(run_scenario("flood", 11, tmp_path,
                                      tenants=3, branches=160, batch=20))
    assert report["passed"], _failures(report)
    shed = report["metrics"]["rejected"].get("queue-full", 0) + \
        report["metrics"]["rejected"].get("shed", 0)
    assert shed > 0


def test_churn_scenario_replay_oracle_holds(tmp_path):
    report = asyncio.run(run_scenario("churn", 11, tmp_path,
                                      branches=120, batch=40))
    assert report["passed"], _failures(report)
    assert report["metrics"]["evictions"] > 0
    names = [check["name"] for check in report["checks"]]
    assert "journal-replay-matches-served-stream" in names


def test_unknown_scenario_raises():
    with pytest.raises(ServeError, match="unknown scenario"):
        run_chaos(["definitely-not-real"], 1, "/tmp/unused")


def test_run_chaos_aggregates(tmp_path):
    report = run_chaos(["baseline"], 7, tmp_path, tenants=2,
                       branches=80, batch=40)
    assert report["schema"] == "repro-chaos/v1"
    assert report["passed"]
    assert [s["scenario"] for s in report["scenarios"]] == ["baseline"]
    assert set(SCENARIOS) >= {s["scenario"] for s in report["scenarios"]}
