"""Tests for configuration presets and validation."""

import pytest

from repro.common.errors import ConfigError
from repro.configs import (
    GENERATIONS,
    PredictorConfig,
    TimingConfig,
    z13_config,
    z14_config,
    z15_config,
    zec12_config,
)
from repro.configs.predictor import (
    Btb1Config,
    Btb2Config,
    CrsConfig,
    PerceptronConfig,
    PhtConfig,
)


class TestZ15Preset:
    """Every number the paper states must be in the z15 preset."""

    def test_btb1_geometry(self):
        config = z15_config()
        assert config.btb1.rows == 2048
        assert config.btb1.ways == 8
        assert config.btb1.capacity == 16 * 1024
        assert config.btb1.line_size == 64

    def test_btb2_geometry(self):
        config = z15_config()
        assert config.btb2.rows == 32768
        assert config.btb2.ways == 4
        assert config.btb2.capacity == 128 * 1024
        assert config.btb2.empty_search_threshold == 3
        # 32 lines x 4 ways = up to 128 branches per transfer.
        assert config.btb2.transfer_lines * config.btb2.ways == 128
        assert config.btb2.inclusive

    def test_gpv_depth(self):
        assert z15_config().gpv_depth == 17

    def test_tage_arrangement(self):
        config = z15_config()
        assert config.pht.tage
        assert config.pht.rows == 512
        assert config.pht.short_history == 9
        assert config.pht.long_history == 17
        assert config.pht.capacity == 8192

    def test_perceptron_geometry(self):
        config = z15_config()
        assert config.perceptron.capacity == 32
        assert config.perceptron.rows == 16
        assert config.perceptron.ways == 2
        assert config.perceptron.weight_count == 17

    def test_ctb_geometry(self):
        config = z15_config()
        assert config.ctb.capacity == 2048
        assert config.ctb.history == 17

    def test_features_enabled(self):
        config = z15_config()
        assert config.skoot_enabled
        assert config.crs.enabled
        assert config.cpred.enabled


class TestGenerationOrdering:
    def test_capacity_grows_monotonically(self):
        configs = [zec12_config(), z13_config(), z14_config(), z15_config()]
        btb1 = [c.btb1.capacity for c in configs]
        btb2 = [c.btb2.capacity for c in configs]
        assert btb1 == sorted(btb1)
        assert btb2 == sorted(btb2)
        assert btb1[0] < btb1[-1]

    def test_feature_introduction_points(self):
        assert not z13_config().perceptron.enabled
        assert z14_config().perceptron.enabled
        assert not z14_config().pht.tage
        assert z15_config().pht.tage
        assert not z14_config().skoot_enabled
        assert z15_config().skoot_enabled
        assert not z13_config().crs.enabled
        assert z14_config().crs.enabled

    def test_gpv_grows_at_z14(self):
        assert z13_config().gpv_depth == 9
        assert z14_config().gpv_depth == 17

    def test_inclusivity_change_at_z15(self):
        assert not z14_config().btb2.inclusive
        assert z15_config().btb2.inclusive

    def test_registry_metadata(self):
        assert list(GENERATIONS) == ["zEC12", "z13", "z14", "z15"]
        for name, (factory, info) in GENERATIONS.items():
            assert info.name == name
            assert factory().name == name
        # Paper-stated sizes must not be marked approximate.
        _, z15_info = GENERATIONS["z15"]
        assert z15_info.btb1_branches == 16384
        assert z15_info.btb2_branches == 131072
        assert not z15_info.approximate_fields
        _, zec12_info = GENERATIONS["zEC12"]
        assert zec12_info.btb1_branches == 4096
        assert zec12_info.btb2_branches == 24576


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            Btb1Config(rows=1000).validate()

    def test_history_exceeding_gpv_rejected(self):
        config = PredictorConfig(
            pht=PhtConfig(long_history=17), gpv_depth=9
        )
        with pytest.raises(ConfigError):
            config.validate()

    def test_perceptron_weights_exceeding_gpv_rejected(self):
        config = PredictorConfig(
            perceptron=PerceptronConfig(weight_count=40)
        )
        with pytest.raises(ConfigError):
            config.validate()

    def test_completion_delay_vs_gpq(self):
        config = PredictorConfig(completion_delay=200, gpq_capacity=128)
        with pytest.raises(ConfigError):
            config.validate()

    def test_crs_threshold(self):
        with pytest.raises(ConfigError):
            CrsConfig(distance_threshold=1).validate()

    def test_btb2_thresholds(self):
        with pytest.raises(ConfigError):
            Btb2Config(empty_search_threshold=0).validate()

    def test_defaults_are_valid(self):
        PredictorConfig().validate()
        TimingConfig().validate()


class TestTiming:
    def test_paper_numbers(self):
        timing = TimingConfig()
        assert timing.bpl_pipeline_depth == 6
        assert timing.taken_interval_st == 5
        assert timing.taken_interval_smt2 == 6
        assert timing.taken_interval_cpred == 2
        assert timing.search_bytes_per_cycle == 64
        assert timing.fetch_bytes_per_cycle == 32
        assert timing.restart_penalty == 26
        assert timing.statistical_restart_penalty == 35
        assert timing.l2i_extra_latency == 8
        assert timing.l3_extra_latency == 45
        assert timing.dispatch_width == 6
