"""Behavioural tests for the composed lookahead predictor.

Each scenario drives `predict_and_resolve` with a hand-built branch
sequence and checks the end-to-end behaviour the paper describes.
"""

import pytest

from repro.configs.predictor import (
    Btb1Config,
    Btb2Config,
    PredictorConfig,
)
from repro.configs import z15_config
from repro.core.predictor import LookaheadBranchPredictor
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction


def branch(address, taken, target=None, kind=BranchKind.CONDITIONAL_RELATIVE,
           static_target=None, sequence=0, context=0, length=4):
    if kind in (BranchKind.CONDITIONAL_INDIRECT, BranchKind.UNCONDITIONAL_INDIRECT):
        static = None
    else:
        static = static_target if static_target is not None else (target or 0x2000)
    instruction = Instruction(
        address=address, length=length, kind=kind, static_target=static
    )
    return DynamicBranch(
        sequence=sequence, instruction=instruction, taken=taken,
        target=target if taken else None, context=context,
    )


def quick_config(**overrides):
    """A small, fast config with immediate completion."""
    defaults = dict(
        btb1=Btb1Config(rows=64, ways=4, policy="lru"),
        btb2=Btb2Config(rows=256, ways=4, staging_capacity=16),
        completion_delay=0,
        name="test",
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults).validate()


def run_sequence(predictor, branches, start=None):
    """Feed a list of (address, taken, target, kind) branch specs."""
    outcomes = []
    if start is None:
        start = branches[0].address
    predictor.restart(start)
    for index, spec in enumerate(branches):
        updated = DynamicBranch(
            sequence=index,
            instruction=spec.instruction,
            taken=spec.taken,
            target=spec.target,
            context=spec.context,
        )
        outcomes.append(predictor.predict_and_resolve(updated))
    predictor.finalize()
    return outcomes


class TestSurpriseAndInstall:
    def test_first_encounter_is_surprise(self):
        predictor = LookaheadBranchPredictor(quick_config())
        out = run_sequence(predictor, [branch(0x1000, True, 0x2000)])
        assert not out[0].dynamic
        assert out[0].record.direction_provider is DirectionProvider.STATIC

    def test_taken_surprise_installed_and_predicted_next_time(self):
        predictor = LookaheadBranchPredictor(quick_config())
        b1 = branch(0x1000, True, 0x2000)
        back = branch(0x2008, True, 0x1000,
                      kind=BranchKind.UNCONDITIONAL_RELATIVE)
        out = run_sequence(predictor, [b1, back, b1, back, b1])
        assert not out[0].dynamic
        assert out[2].dynamic or out[4].dynamic

    def test_not_taken_conditional_surprise_not_installed(self):
        """Guessed-not-taken, resolved-not-taken surprises never enter
        the BTB (section IV)."""
        predictor = LookaheadBranchPredictor(quick_config())
        b = branch(0x1000, False)
        back = branch(0x1010, True, 0x1000,
                      kind=BranchKind.UNCONDITIONAL_RELATIVE)
        out = run_sequence(predictor, [b, back] * 4)
        conditionals = out[::2]
        assert all(not o.dynamic for o in conditionals)
        assert predictor.btb1.lookup(0x1000, 0) is None

    def test_guessed_taken_surprise_installed_even_if_not_taken(self):
        """Loop branches are statically guessed taken; even resolving NT
        they are installed."""
        predictor = LookaheadBranchPredictor(quick_config())
        b = branch(0x1000, False, kind=BranchKind.LOOP_RELATIVE,
                   static_target=0x0F00)
        run_sequence(predictor, [b])
        assert predictor.btb1.occupancy == 1

    def test_indirect_surprise_has_no_target(self):
        predictor = LookaheadBranchPredictor(quick_config())
        b = branch(0x1000, True, 0x2000, kind=BranchKind.UNCONDITIONAL_INDIRECT)
        out = run_sequence(predictor, [b])
        record = out[0].record
        assert record.predicted_taken  # statically guessed taken
        assert record.predicted_target is None
        assert record.target_provider is TargetProvider.NONE


class TestDynamicPrediction:
    def _warm(self, predictor, b, times=3):
        return run_sequence(predictor, [b] * times)

    def test_unconditional_predicted_taken_with_target(self):
        predictor = LookaheadBranchPredictor(quick_config())
        b = branch(0x1000, True, 0x2000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        back = branch(0x2008, True, 0x1000,
                      kind=BranchKind.UNCONDITIONAL_RELATIVE)
        out = run_sequence(predictor, [b, back] * 4)
        final = out[-2].record  # the last instance of b
        assert final.dynamic
        assert final.direction_provider is DirectionProvider.UNCONDITIONAL
        assert final.predicted_target == 0x2000
        assert not final.mispredicted

    def test_correct_taken_redirects_search(self):
        """After a correct taken prediction the search continues at the
        target: a branch there is found without restart."""
        predictor = LookaheadBranchPredictor(quick_config())
        a = branch(0x1000, True, 0x2000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        c = branch(0x2008, True, 0x1000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        sequence = [a, c] * 5
        out = run_sequence(predictor, sequence)
        # Steady state: both branches predicted dynamically.
        assert out[-1].dynamic and out[-2].dynamic
        assert not out[-1].mispredicted

    def test_wrong_target_escalates_to_multi_target(self):
        predictor = LookaheadBranchPredictor(quick_config())
        targets = [0x2000, 0x3000]
        backs = {
            0x2000: branch(0x2008, True, 0x1000,
                           kind=BranchKind.UNCONDITIONAL_RELATIVE),
            0x3000: branch(0x3008, True, 0x1000,
                           kind=BranchKind.UNCONDITIONAL_RELATIVE),
        }
        seq = []
        for index in range(12):
            target = targets[index % 2]
            seq.append(branch(0x1000, True, target,
                              kind=BranchKind.UNCONDITIONAL_INDIRECT))
            seq.append(backs[target])
        run_sequence(predictor, seq)
        hit = predictor.btb1.lookup(0x1000, 0)
        assert hit is not None
        assert hit.entry.multi_target
        assert predictor.ctb.installs >= 1


class TestGpqDelay:
    def test_updates_are_delayed(self):
        """With a completion delay, the BHT state lags the resolutions."""
        config = quick_config(completion_delay=4)
        predictor = LookaheadBranchPredictor(config)
        b = branch(0x1000, True, 0x2000, kind=BranchKind.LOOP_RELATIVE,
                   static_target=0x2000)
        predictor.restart(0x1000)
        # First encounter: surprise; install happens 4 branches later.
        for sequence in range(3):
            updated = DynamicBranch(sequence=sequence, instruction=b.instruction,
                                    taken=True, target=0x2000)
            out = predictor.predict_and_resolve(updated)
        assert predictor.btb1.occupancy == 0  # not yet completed
        for sequence in range(3, 8):
            updated = DynamicBranch(sequence=sequence, instruction=b.instruction,
                                    taken=True, target=0x2000)
            predictor.predict_and_resolve(updated)
        assert predictor.btb1.occupancy == 1

    def test_finalize_applies_everything(self):
        config = quick_config(completion_delay=8)
        predictor = LookaheadBranchPredictor(config)
        b = branch(0x1000, True, 0x2000)
        predictor.restart(0x1000)
        predictor.predict_and_resolve(
            DynamicBranch(sequence=0, instruction=b.instruction, taken=True,
                          target=0x2000)
        )
        assert predictor.btb1.occupancy == 0
        predictor.finalize()
        assert predictor.btb1.occupancy == 1


class TestSkoot:
    def test_skoot_trains_to_gap(self):
        """A taken branch whose target stream has empty lines learns the
        skip amount."""
        config = quick_config()
        predictor = LookaheadBranchPredictor(config)
        # a at 0x1000 jumps to 0x2000; next branch c at 0x2100 (4 lines on).
        a = branch(0x1000, True, 0x2000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        c = branch(0x2100, True, 0x1000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        run_sequence(predictor, [a, c] * 4)
        entry = predictor.btb1.lookup(0x1000, 0).entry
        assert entry.skoot == 4

    def test_skoot_skips_empty_searches(self):
        config = quick_config()
        predictor = LookaheadBranchPredictor(config)
        a = branch(0x1000, True, 0x2000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        c = branch(0x2100, True, 0x1000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        out = run_sequence(predictor, [a, c] * 6)
        # In steady state the walk to c skips the empty lines.
        assert out[-1].trace.lines_skipped_by_skoot == 4
        assert out[-1].trace.lines_searched == 1

    def test_skoot_disabled_config_searches_everything(self):
        config = quick_config(skoot_enabled=False)
        predictor = LookaheadBranchPredictor(config)
        a = branch(0x1000, True, 0x2000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        c = branch(0x2100, True, 0x1000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        out = run_sequence(predictor, [a, c] * 6)
        assert out[-1].trace.lines_skipped_by_skoot == 0
        assert out[-1].trace.lines_searched == 5

    def test_skoot_overshoot_recovers(self):
        """A new branch appearing inside the skipped region is first a
        surprise, then the skip shrinks (only-decreasing rule)."""
        config = quick_config()
        predictor = LookaheadBranchPredictor(config)
        a = branch(0x1000, True, 0x2000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        c = branch(0x2100, True, 0x1000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        run_sequence(predictor, [a, c] * 4)
        assert predictor.btb1.lookup(0x1000, 0).entry.skoot == 4
        # New branch at 0x2040 (1 line into the stream) starts executing.
        d = branch(0x2040, True, 0x1000, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        out = run_sequence(predictor, [a, d] * 4)
        entry = predictor.btb1.lookup(0x1000, 0).entry
        assert entry.skoot == 1
        # Steady state again: d predicted dynamically.
        assert out[-1].dynamic


class TestBtb2Flows:
    def test_cold_btb1_refilled_from_btb2(self):
        """Content evicted from a small BTB1 comes back from the BTB2
        after empty searches trigger a transfer."""
        config = quick_config(
            btb1=Btb1Config(rows=2, ways=2, policy="lru"),
            btb2=Btb2Config(
                rows=256, ways=4, staging_capacity=32,
                empty_search_threshold=3, transfer_lines=8,
                refresh_threshold=2, inclusive=True,
            ),
        )
        predictor = LookaheadBranchPredictor(config)
        # More distinct taken branches than the 4-entry BTB1 can hold.
        addresses = [0x1000 + i * 0x40 for i in range(12)]
        seq = []
        for _ in range(6):
            for index, address in enumerate(addresses):
                nxt = addresses[(index + 1) % len(addresses)]
                seq.append(branch(address, True, nxt,
                                  kind=BranchKind.UNCONDITIONAL_RELATIVE))
        out = run_sequence(predictor, seq)
        assert predictor.btb2 is not None
        assert predictor.btb2.searches > 0
        assert predictor.btb2.installs > 0

    def test_context_switch_primes_new_context(self):
        config = quick_config()
        predictor = LookaheadBranchPredictor(config)
        b_ctx1 = branch(0x1000, True, 0x2000,
                        kind=BranchKind.UNCONDITIONAL_RELATIVE, context=1)
        # Warm context 1 and let periodic state reach the BTB2 snapshot.
        predictor.restart(0x1000, context=1)
        for sequence in range(4):
            predictor.predict_and_resolve(
                DynamicBranch(sequence=sequence, instruction=b_ctx1.instruction,
                              taken=True, target=0x2000, context=1)
            )
        predictor.finalize()
        # Write the learned entry back (simulate refresh) then clear BTB1.
        entry = predictor.btb1.lookup(0x1000, 1).entry
        predictor.btb2.writeback_entry(entry)
        predictor.btb1.clear()
        # Context switch back into context 1 must prime the BTB1.
        predictor.context_switch(0x1000, 1)
        assert predictor.btb1.lookup(0x1000, 1) is not None


class TestBadPredictions:
    def test_aliased_entry_removed_on_walk(self):
        config = quick_config(btb1=Btb1Config(rows=4, ways=4, tag_bits=4,
                                              policy="lru"))
        predictor = LookaheadBranchPredictor(config)
        base = 0x1000
        # Find an aliasing line.
        alias = None
        for candidate in range(0x2000, 0x800000, 0x40):
            if predictor.btb1.row_of(candidate) == predictor.btb1.row_of(base) \
                    and predictor.btb1.tag_of(candidate, 0) == \
                    predictor.btb1.tag_of(base, 0):
                alias = candidate
                break
        assert alias is not None
        # Install a taken branch at base+8.
        b = branch(base + 8, True, base, kind=BranchKind.UNCONDITIONAL_RELATIVE)
        run_sequence(predictor, [b] * 3)
        assert predictor.btb1.occupancy == 1
        # Now walk through the aliased line: the entry matches at
        # alias+8 where no branch exists -> removed as bad.
        far = branch(alias + 0x20, True, base,
                     kind=BranchKind.UNCONDITIONAL_RELATIVE)
        predictor.restart(alias)
        out = predictor.predict_and_resolve(
            DynamicBranch(sequence=100, instruction=far.instruction,
                          taken=True, target=base)
        )
        assert out.trace.bad_predictions_removed == 1
        # The aliased entry is gone (the new surprise may have installed).
        assert predictor.btb1.lookup(base + 8, 0) is None


class TestCrsIntegration:
    def test_call_return_learned_end_to_end(self):
        config = quick_config()
        predictor = LookaheadBranchPredictor(config)
        call_a = branch(0x1000, True, 0x8000,
                        kind=BranchKind.UNCONDITIONAL_RELATIVE)
        call_b = branch(0x3000, True, 0x8000,
                        kind=BranchKind.UNCONDITIONAL_RELATIVE)
        ret_to_a = branch(0x8010, True, 0x1004,
                          kind=BranchKind.UNCONDITIONAL_INDIRECT)
        ret_to_b = branch(0x8010, True, 0x3004,
                          kind=BranchKind.UNCONDITIONAL_INDIRECT)
        jump_b = branch(0x1004 + 0x40, True, 0x3000,
                        kind=BranchKind.UNCONDITIONAL_RELATIVE)
        jump_a = branch(0x3004 + 0x40, True, 0x1000,
                        kind=BranchKind.UNCONDITIONAL_RELATIVE)
        # a calls f, f returns to a; hop to b; b calls f, returns to b...
        pattern = [call_a, ret_to_a,
                   branch(0x1044, True, 0x3000, kind=BranchKind.UNCONDITIONAL_RELATIVE),
                   call_b, ret_to_b,
                   branch(0x3044, True, 0x1000, kind=BranchKind.UNCONDITIONAL_RELATIVE)]
        out = run_sequence(predictor, pattern * 12)
        ret_entry = predictor.btb1.lookup(0x8010, 0)
        assert ret_entry is not None
        assert ret_entry.entry.multi_target
        assert ret_entry.entry.return_offset == 0
        # In steady state the CRS provides correct return targets.
        crs_uses = [
            o for o in out
            if o.record.target_provider is TargetProvider.CRS
        ]
        assert crs_uses, "CRS never provided a target"
        tail = crs_uses[len(crs_uses) // 2:]
        assert all(not o.record.target_wrong for o in tail)
