"""Tests for the call/return stack heuristic."""

import pytest

from repro.configs.predictor import CrsConfig
from repro.core.crs import CallReturnStack


def make_crs(threshold=1024, amnesty=4, enabled=True):
    return CallReturnStack(
        CrsConfig(
            enabled=enabled, distance_threshold=threshold, amnesty_period=amnesty
        )
    )


CALL_ADDRESS = 0x10000
FAR_TARGET = 0x20000  # distance 0x10000 >= threshold
NSIA = 0x10004


class TestDetectionSide:
    def test_far_taken_branch_pushes_stack(self):
        crs = make_crs()
        assert crs.observe_completed_taken(CALL_ADDRESS, FAR_TARGET, NSIA) is None
        assert crs.detection_stack_valid

    def test_near_branch_does_not_push(self):
        crs = make_crs()
        crs.observe_completed_taken(CALL_ADDRESS, CALL_ADDRESS + 0x10, NSIA)
        assert not crs.detection_stack_valid

    def test_return_detected_at_each_offset(self):
        for offset in (0, 2, 4, 6, 8):
            crs = make_crs()
            crs.observe_completed_taken(CALL_ADDRESS, FAR_TARGET, NSIA)
            matched = crs.observe_completed_taken(
                FAR_TARGET + 0x40, NSIA + offset, FAR_TARGET + 0x44
            )
            assert matched == offset
            assert not crs.detection_stack_valid  # consumed

    def test_non_matching_offset_not_detected(self):
        crs = make_crs()
        crs.observe_completed_taken(CALL_ADDRESS, FAR_TARGET, NSIA)
        matched = crs.observe_completed_taken(
            FAR_TARGET + 0x40, NSIA + 10, FAR_TARGET + 0x44
        )
        assert matched is None

    def test_stack_updated_by_second_call(self):
        """A second call-like branch replaces the stack (paper: the stack
        can continually be updated while valid)."""
        crs = make_crs()
        crs.observe_completed_taken(CALL_ADDRESS, FAR_TARGET, NSIA)
        second_nsia = 0x30004
        crs.observe_completed_taken(0x30000, 0x50000, second_nsia)
        matched = crs.observe_completed_taken(0x50040, second_nsia, 0x50044)
        assert matched == 0


class TestPredictionSide:
    def _primed(self):
        crs = make_crs()
        crs.note_predicted_taken(CALL_ADDRESS, FAR_TARGET, NSIA)
        return crs

    def test_marked_return_uses_stack(self):
        crs = self._primed()
        prediction = crs.predict_target(
            is_marked_return=True, return_offset=4, blacklisted=False
        )
        assert prediction.used
        assert prediction.target == NSIA + 4
        assert not crs.prediction_stack_valid  # invalidated after use

    def test_blacklisted_return_skipped(self):
        crs = self._primed()
        prediction = crs.predict_target(
            is_marked_return=True, return_offset=0, blacklisted=True
        )
        assert not prediction.used
        assert crs.prediction_stack_valid

    def test_unmarked_branch_skipped(self):
        crs = self._primed()
        assert not crs.predict_target(False, None, False).used

    def test_invalid_stack_skipped(self):
        crs = make_crs()
        assert not crs.predict_target(True, 0, False).used

    def test_near_predicted_taken_does_not_push(self):
        crs = make_crs()
        crs.note_predicted_taken(CALL_ADDRESS, CALL_ADDRESS + 8, NSIA)
        assert not crs.prediction_stack_valid

    def test_restart_flushes_prediction_stack(self):
        crs = self._primed()
        crs.flush_prediction_stack()
        assert not crs.prediction_stack_valid


class TestBlacklistAmnesty:
    def test_amnesty_every_nth_with_pair_match(self):
        crs = make_crs(amnesty=3)
        assert not crs.consider_amnesty(still_pair_matches=True)
        assert not crs.consider_amnesty(still_pair_matches=True)
        assert crs.consider_amnesty(still_pair_matches=True)
        assert crs.amnesties == 1

    def test_amnesty_denied_without_pair_match(self):
        crs = make_crs(amnesty=2)
        crs.consider_amnesty(still_pair_matches=False)
        assert not crs.consider_amnesty(still_pair_matches=False)
        assert crs.amnesties == 0

    def test_counter_resets_after_amnesty_window(self):
        crs = make_crs(amnesty=2)
        crs.consider_amnesty(True)
        assert crs.consider_amnesty(True)
        crs.consider_amnesty(True)
        assert crs.consider_amnesty(True)
        assert crs.amnesties == 2


class TestDisabled:
    def test_disabled_crs_is_inert(self):
        crs = make_crs(enabled=False)
        crs.note_predicted_taken(CALL_ADDRESS, FAR_TARGET, NSIA)
        assert not crs.prediction_stack_valid
        assert crs.observe_completed_taken(CALL_ADDRESS, FAR_TARGET, NSIA) is None
        assert not crs.predict_target(True, 0, False).used
        assert not crs.consider_amnesty(True)


class TestCheckpointRestore:
    def test_snapshot_restore_roundtrip(self):
        crs = make_crs()
        crs.note_predicted_taken(CALL_ADDRESS, FAR_TARGET, NSIA)
        snapshot = crs.snapshot_prediction_stack()
        crs.flush_prediction_stack()
        assert not crs.prediction_stack_valid
        crs.restore_prediction_stack(snapshot)
        assert crs.prediction_stack_valid
        prediction = crs.predict_target(True, 0, False)
        assert prediction.target == NSIA

    def test_snapshot_is_per_thread(self):
        crs = make_crs()
        crs.note_predicted_taken(CALL_ADDRESS, FAR_TARGET, NSIA, thread=0)
        snap0 = crs.snapshot_prediction_stack(thread=0)
        snap1 = crs.snapshot_prediction_stack(thread=1)
        assert snap0[0] and not snap1[0]

    def test_restore_survives_noise_mispredicts(self):
        """The predictor-level repair: a mispredicted branch between a
        call and its return restores the stack to the call's push."""
        crs = make_crs()
        crs.note_predicted_taken(CALL_ADDRESS, FAR_TARGET, NSIA)
        checkpoint = crs.snapshot_prediction_stack()
        # A wrong-path consequence trashes the stack...
        crs.note_predicted_taken(0x70000, 0x90000, 0x70004)
        # ...the restart at the mispredicted branch repairs it.
        crs.restore_prediction_stack(checkpoint)
        prediction = crs.predict_target(True, 0, False)
        assert prediction.used
        assert prediction.target == NSIA
