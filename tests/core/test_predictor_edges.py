"""Edge-case behaviour of the composed predictor."""

import pytest

from repro.configs.predictor import (
    Btb1Config,
    Btb2Config,
    PredictorConfig,
)
from repro.core.predictor import LookaheadBranchPredictor
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction


def branch(address, taken, target=None, kind=BranchKind.UNCONDITIONAL_RELATIVE,
           sequence=0, context=0, thread=0):
    indirect = kind in (BranchKind.CONDITIONAL_INDIRECT,
                        BranchKind.UNCONDITIONAL_INDIRECT)
    static = None if indirect else (target if target is not None else 0x2000)
    instruction = Instruction(address=address, length=4, kind=kind,
                              static_target=static)
    return DynamicBranch(sequence=sequence, instruction=instruction,
                         taken=taken, target=target if taken else None,
                         context=context, thread=thread)


def config(**overrides):
    defaults = dict(
        btb1=Btb1Config(rows=32, ways=2, policy="lru"),
        btb2=None,
        completion_delay=0,
        name="edge",
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults).validate()


class TestWriteQueue:
    def test_drain_keeps_up_with_install_rate(self):
        """One install per completed surprise, at least one drain credit
        per completion step: the queue never overflows in normal flows."""
        cfg = config(write_queue_capacity=2, write_drain_per_step=1,
                     completion_delay=0)
        predictor = LookaheadBranchPredictor(cfg)
        predictor.restart(0x1000)
        for index in range(40):
            address = 0x1000 + index * 0x40
            target = 0x1000 + ((index + 1) % 40) * 0x40
            predictor.predict_and_resolve(
                branch(address, True, target, sequence=index)
            )
        assert predictor.write_queue_drops == 0
        assert len(predictor.write_queue) <= 2
        predictor.finalize()
        assert predictor.btb1.occupancy <= predictor.btb1.capacity

    def test_stalled_drain_counts_drops(self):
        """With the drain disabled (a stalled write pipeline) the bounded
        queue rejects installs and counts every drop."""
        cfg = config(write_queue_capacity=2, write_drain_per_step=0,
                     completion_delay=0)
        predictor = LookaheadBranchPredictor(cfg)
        predictor.restart(0x1000)
        for index in range(10):
            address = 0x1000 + index * 0x40
            target = 0x1000 + ((index + 1) % 10) * 0x40
            predictor.predict_and_resolve(
                branch(address, True, target, sequence=index)
            )
        assert predictor.write_queue_drops == 8  # 10 installs, 2 slots
        predictor.finalize()


class TestGpqPressure:
    def test_gpq_occupancy_bounded_by_delay(self):
        """The validation constraint (delay < capacity) plus in-order
        completion keeps the GPQ below capacity — the forced-completion
        path stays a safety net."""
        cfg = config(gpq_capacity=8, completion_delay=6)
        predictor = LookaheadBranchPredictor(cfg)
        predictor.restart(0x1000)
        for index in range(30):
            address = 0x1000 + (index % 8) * 0x40
            target = 0x1000 + ((index + 1) % 8) * 0x40
            predictor.predict_and_resolve(
                branch(address, True, target, sequence=index)
            )
            assert len(predictor.gpq) <= cfg.completion_delay + 1
        assert predictor.gpq.forced_completions == 0
        predictor.finalize()
        assert len(predictor.gpq) == 0


class TestContextSeparation:
    def test_same_address_different_contexts_do_not_collide(self):
        predictor = LookaheadBranchPredictor(config())
        a = branch(0x1000, True, 0x2000)
        back = branch(0x2008, True, 0x1000)
        # Warm context 0.
        predictor.restart(0x1000, context=0)
        for index in range(8):
            event = a if index % 2 == 0 else back
            predictor.predict_and_resolve(
                DynamicBranch(sequence=index, instruction=event.instruction,
                              taken=True, target=event.target, context=0)
            )
        assert predictor.btb1.lookup(0x1000, 0) is not None
        # Context 5 sees a miss at the same address (tag mismatch).
        assert predictor.btb1.lookup(0x1000, 5) is None
        predictor.restart(0x1000, context=5)
        outcome = predictor.predict_and_resolve(
            DynamicBranch(sequence=100, instruction=a.instruction,
                          taken=True, target=0x2000, context=5)
        )
        assert not outcome.dynamic  # surprise in the new context


class TestWalkCap:
    def test_giant_gap_is_summarised(self):
        cfg = config(search_walk_cap=8)
        predictor = LookaheadBranchPredictor(cfg)
        predictor.restart(0x1000)
        far = branch(0x1000 + 1000 * 64, True, 0x1000)
        outcome = predictor.predict_and_resolve(
            DynamicBranch(sequence=0, instruction=far.instruction,
                          taken=True, target=0x1000)
        )
        assert outcome.trace.walk_capped
        # Summarised + walked lines together cover the full gap.
        assert outcome.trace.lines_searched == 1000 + 1


class TestInclusionPolicies:
    def _pressured(self, inclusive):
        cfg = config(
            btb1=Btb1Config(rows=2, ways=2, policy="lru"),
            btb2=Btb2Config(rows=256, ways=4, staging_capacity=16,
                            inclusive=inclusive, refresh_threshold=2),
        )
        predictor = LookaheadBranchPredictor(cfg)
        predictor.restart(0x1000)
        # 8 branches in a ring exceed the 4-entry BTB1.
        addresses = [0x1000 + i * 0x40 for i in range(8)]
        sequence = 0
        for _ in range(10):
            for index, address in enumerate(addresses):
                target = addresses[(index + 1) % 8]
                predictor.predict_and_resolve(
                    branch(address, True, target, sequence=sequence)
                )
                sequence += 1
        predictor.finalize()
        return predictor

    def test_exclusive_writes_victims_back(self):
        predictor = self._pressured(inclusive=False)
        assert predictor.btb2.writebacks > 0
        assert predictor.btb2.occupancy > 0

    def test_inclusive_relies_on_periodic_refresh(self):
        predictor = self._pressured(inclusive=True)
        # Victims were NOT written at eviction; only refresh writebacks.
        assert predictor.btb2.writebacks == predictor.btb2.refresh_writebacks


class TestThreadStateIsolation:
    def test_threads_have_independent_gpv(self):
        predictor = LookaheadBranchPredictor(config())
        predictor.restart(0x1000, thread=0)
        predictor.restart(0x9000, thread=1)
        predictor.predict_and_resolve(
            branch(0x1000, True, 0x2000, sequence=0, thread=0)
        )
        state0 = predictor._thread_state(0)
        state1 = predictor._thread_state(1)
        assert state0.gpv.snapshot() != 0
        assert state1.gpv.snapshot() == 0

    def test_restart_only_touches_its_thread(self):
        predictor = LookaheadBranchPredictor(config())
        predictor.restart(0x1000, thread=0)
        predictor.restart(0x9000, thread=1)
        state1_before = predictor._thread_state(1).search_address
        predictor.restart(0x5000, thread=0)
        assert predictor._thread_state(1).search_address == state1_before

    def test_gpv_property_is_thread_zero(self):
        predictor = LookaheadBranchPredictor(config())
        assert predictor.gpv is predictor._thread_state(0).gpv


class TestSkippedIndirectInstall:
    def test_guessed_taken_indirect_resolving_not_taken(self):
        predictor = LookaheadBranchPredictor(config())
        predictor.restart(0x1000)
        insn = Instruction(address=0x1000, length=4,
                           kind=BranchKind.CONDITIONAL_INDIRECT)
        # Conditional indirect is guessed NOT taken; use an unconditional
        # indirect that resolves... unconditional cannot resolve NT.
        # The skip path needs guessed-taken + resolved-NT + no target:
        # a loop-kind cannot be indirect, so drive the record directly
        # via an unconditional indirect marked not taken is illegal.
        # Instead verify the counter stays zero on normal flows.
        predictor.predict_and_resolve(
            DynamicBranch(sequence=0, instruction=insn, taken=False,
                          target=None)
        )
        predictor.finalize()
        assert predictor.skipped_indirect_installs == 0
        assert predictor.btb1.occupancy == 0  # guessed NT, resolved NT
