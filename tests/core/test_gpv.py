"""Tests for the Global Path Vector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.gpv import GlobalPathVector


def test_default_geometry_matches_z15():
    gpv = GlobalPathVector()
    assert gpv.depth == 17
    assert gpv.bits_per_branch == 2
    assert gpv.width == 34


def test_invalid_construction():
    with pytest.raises(ValueError):
        GlobalPathVector(depth=0)
    with pytest.raises(ValueError):
        GlobalPathVector(depth=9, bits_per_branch=0)


def test_starts_cleared():
    assert GlobalPathVector().value() == 0


def test_record_shifts_in_hash():
    gpv = GlobalPathVector(depth=4, bits_per_branch=2)
    gpv.record_taken(0x1000)
    expected = gpv.branch_hash(0x1000)
    assert gpv.value() == expected


def test_oldest_branch_falls_out():
    gpv = GlobalPathVector(depth=2, bits_per_branch=2)
    gpv.record_taken(0x1000)
    gpv.record_taken(0x2000)
    gpv.record_taken(0x3000)
    # Only the two youngest branches remain.
    expected = (
        (gpv.branch_hash(0x2000) << 2) | gpv.branch_hash(0x3000)
    )
    assert gpv.value() == expected


def test_value_depth_slices_youngest():
    gpv = GlobalPathVector(depth=17, bits_per_branch=2)
    for address in range(0x1000, 0x1000 + 17 * 4, 4):
        gpv.record_taken(address)
    short = gpv.value(depth=9)
    assert short == gpv.value() & ((1 << 18) - 1)


def test_value_depth_bounds():
    gpv = GlobalPathVector(depth=9)
    with pytest.raises(ValueError):
        gpv.value(depth=0)
    with pytest.raises(ValueError):
        gpv.value(depth=10)


def test_bits_lsb_first():
    gpv = GlobalPathVector(depth=2, bits_per_branch=2)
    gpv.restore(0b1010)
    assert gpv.bits() == (0, 1, 0, 1)


def test_snapshot_restore_roundtrip():
    gpv = GlobalPathVector(depth=9)
    for address in (0x100, 0x204, 0x3F8):
        gpv.record_taken(address)
    saved = gpv.snapshot()
    gpv.record_taken(0x999 * 2)
    gpv.restore(saved)
    assert gpv.snapshot() == saved


def test_clear():
    gpv = GlobalPathVector(depth=9)
    gpv.record_taken(0x500)
    gpv.clear()
    assert gpv.value() == 0


def test_different_addresses_usually_hash_differently():
    gpv = GlobalPathVector()
    hashes = {gpv.branch_hash(addr) for addr in range(0x1000, 0x1010, 2)}
    assert len(hashes) > 1


@given(st.lists(st.integers(min_value=0, max_value=2**40).map(lambda a: a * 2),
                min_size=1, max_size=40))
def test_width_invariant(addresses):
    gpv = GlobalPathVector(depth=5, bits_per_branch=2)
    for address in addresses:
        gpv.record_taken(address)
        assert 0 <= gpv.value() < (1 << gpv.width)


@given(st.integers(min_value=0, max_value=2**34 - 1))
def test_restore_masks_to_width(value):
    gpv = GlobalPathVector(depth=9, bits_per_branch=2)  # 18-bit
    gpv.restore(value)
    assert gpv.value() == value & ((1 << 18) - 1)
