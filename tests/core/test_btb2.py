"""Tests for the BTB2 system: triggers, transfers, refresh."""

import pytest

from repro.configs.predictor import Btb1Config, Btb2Config
from repro.core.btb1 import Btb1
from repro.core.btb2 import Btb2System
from repro.core.entries import BtbEntry
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter


def make_system(inclusive=True, staging=8, threshold=3, transfer_lines=4,
                refresh_threshold=4):
    btb1 = Btb1(Btb1Config(rows=16, ways=2, policy="lru"))
    config = Btb2Config(
        rows=64,
        ways=4,
        empty_search_threshold=threshold,
        transfer_lines=transfer_lines,
        staging_capacity=staging,
        refresh_threshold=refresh_threshold,
        inclusive=inclusive,
        surprise_trigger_count=3,
        surprise_trigger_window=16,
    )
    return btb1, Btb2System(config, btb1)


def entry_for(target=0x8000):
    return BtbEntry(
        tag=0,
        offset=0,
        length=4,
        kind=BranchKind.CONDITIONAL_RELATIVE,
        target=target,
        bht=TwoBitDirectionCounter.for_direction(True),
    )


def prime_btb2(btb2, addresses, context=0):
    """Put branches into the BTB2 directly (as if written back)."""
    for address in addresses:
        entry = entry_for(target=address + 0x100)
        entry.line_base = address - address % 64
        entry.offset = address % 64
        entry.context = context
        btb2.install_snapshot(address, context, entry)


class TestEmptySearchTrigger:
    def test_three_empty_searches_fire(self):
        _, btb2 = make_system()
        assert not btb2.note_search_outcome(0x1000, 0, hit=False)
        assert not btb2.note_search_outcome(0x1040, 0, hit=False)
        assert btb2.note_search_outcome(0x1080, 0, hit=False)
        assert btb2.searches == 1
        assert btb2.searches_empty_trigger == 1

    def test_hit_resets_counter(self):
        _, btb2 = make_system()
        btb2.note_search_outcome(0x1000, 0, hit=False)
        btb2.note_search_outcome(0x1040, 0, hit=False)
        btb2.note_search_outcome(0x1080, 0, hit=True)
        assert not btb2.note_search_outcome(0x10C0, 0, hit=False)
        assert not btb2.note_search_outcome(0x1100, 0, hit=False)
        assert btb2.searches == 0

    def test_restart_reset(self):
        _, btb2 = make_system()
        btb2.note_search_outcome(0x1000, 0, hit=False)
        btb2.note_search_outcome(0x1040, 0, hit=False)
        btb2.reset_empty_counter()
        assert not btb2.note_search_outcome(0x1080, 0, hit=False)


class TestSurpriseTrigger:
    def test_window_counts(self):
        _, btb2 = make_system()
        assert not btb2.note_surprise_branch(1, 0x1000, 0)
        assert not btb2.note_surprise_branch(2, 0x1000, 0)
        assert btb2.note_surprise_branch(3, 0x1000, 0)
        assert btb2.searches_surprise_trigger == 1

    def test_old_surprises_age_out(self):
        _, btb2 = make_system()
        btb2.note_surprise_branch(1, 0x1000, 0)
        btb2.note_surprise_branch(2, 0x1000, 0)
        # 100 is far outside the 16-branch window.
        assert not btb2.note_surprise_branch(100, 0x1000, 0)


class TestTransfers:
    def test_search_stages_and_installs(self):
        btb1, btb2 = make_system()
        prime_btb2(btb2, [0x1008, 0x1040, 0x10C0])
        staged = btb2.search(0x1000, 0)
        assert staged == 3
        installed = btb2.drain_staging()
        assert installed == 3
        assert btb1.lookup(0x1008, 0) is not None
        assert btb1.lookup(0x1040, 0) is not None

    def test_transfer_respects_line_window(self):
        btb1, btb2 = make_system(transfer_lines=2)
        prime_btb2(btb2, [0x1000, 0x1040, 0x1080])  # third is outside window
        staged = btb2.search(0x1000, 0)
        assert staged == 2

    def test_staging_overflow_counted(self):
        btb1, btb2 = make_system(staging=2)
        prime_btb2(btb2, [0x1000, 0x1008, 0x1010, 0x1018])
        staged = btb2.search(0x1000, 0)
        assert staged == 2
        assert btb2.staging_overflows == 2

    def test_duplicate_transfer_filtered_at_btb1(self):
        btb1, btb2 = make_system()
        prime_btb2(btb2, [0x1008])
        btb1.install(0x1008, 0, entry_for())
        btb2.search(0x1000, 0)
        installed = btb2.drain_staging()
        assert installed == 0
        assert btb1.duplicate_rejects == 1

    def test_context_switch_trigger(self):
        btb1, btb2 = make_system()
        prime_btb2(btb2, [0x1008], context=5)
        btb2.note_context_switch(0x1000, 5)
        btb2.drain_staging()
        assert btb1.lookup(0x1008, 5) is not None
        assert btb2.searches_context_trigger == 1


class TestPeriodicRefresh:
    def test_refresh_writes_back_lru_victim(self):
        btb1, btb2 = make_system(refresh_threshold=2)
        # Fill one BTB1 row completely.
        btb1.install(0x1000, 0, entry_for(target=0x1111))
        btb1.install(0x1008, 0, entry_for(target=0x2222))
        row_address = 0x1000
        # Two no-hit searches of that row reach the refresh threshold.
        btb2.note_search_outcome(row_address, 0, hit=False)
        btb2.note_search_outcome(row_address, 0, hit=False)
        assert btb2.refresh_writebacks == 1
        assert btb2.contains(0x1000, 0)  # the LRU entry was written back

    def test_refresh_skips_partially_filled_rows(self):
        btb1, btb2 = make_system(refresh_threshold=1)
        btb1.install(0x1000, 0, entry_for())
        btb2.note_search_outcome(0x1000, 0, hit=False)
        assert btb2.refresh_writebacks == 0

    def test_exclusive_design_has_no_periodic_refresh(self):
        btb1, btb2 = make_system(inclusive=False, refresh_threshold=1)
        btb1.install(0x1000, 0, entry_for())
        btb1.install(0x1008, 0, entry_for())
        btb2.note_search_outcome(0x1000, 0, hit=False)
        assert btb2.refresh_writebacks == 0


class TestEvictionHandling:
    def test_inclusive_eviction_is_silent(self):
        btb1, btb2 = make_system(inclusive=True)
        victim = entry_for()
        victim.line_base = 0x1000
        btb2.handle_btb1_eviction(victim)
        assert btb2.writebacks == 0

    def test_exclusive_eviction_writes_back(self):
        btb1, btb2 = make_system(inclusive=False)
        victim = entry_for()
        victim.line_base = 0x1000
        victim.offset = 8
        btb2.handle_btb1_eviction(victim)
        assert btb2.writebacks == 1
        assert btb2.contains(0x1008, 0)


class TestSnapshotRoundtrip:
    def test_metadata_survives_transfer(self):
        btb1, btb2 = make_system()
        entry = entry_for(target=0x7777)
        entry.bidirectional = True
        entry.multi_target = True
        entry.return_offset = 2
        entry.skoot = 4
        entry.line_base = 0x1000
        entry.offset = 0x08
        btb2.install_snapshot(0x1008, 0, entry)
        btb2.search(0x1000, 0)
        btb2.drain_staging()
        hit = btb1.lookup(0x1008, 0)
        assert hit is not None
        restored = hit.entry
        assert restored.bidirectional
        assert restored.multi_target
        assert restored.return_offset == 2
        assert restored.skoot == 4
        assert restored.target == 0x7777
