"""Tests for BTB entry records."""

from repro.core.entries import Btb2Entry, BtbEntry
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter


def make_entry(**overrides):
    defaults = dict(
        tag=0x12,
        offset=8,
        length=4,
        kind=BranchKind.CONDITIONAL_RELATIVE,
        target=0x2000,
        line_base=0x1000,
        context=0,
    )
    defaults.update(overrides)
    return BtbEntry(**defaults)


class TestBtbEntry:
    def test_unconditional_flags(self):
        assert make_entry(kind=BranchKind.UNCONDITIONAL_RELATIVE).is_unconditional
        assert make_entry(kind=BranchKind.UNCONDITIONAL_INDIRECT).is_unconditional
        assert not make_entry(kind=BranchKind.CONDITIONAL_RELATIVE).is_unconditional
        assert not make_entry(kind=BranchKind.LOOP_RELATIVE).is_unconditional

    def test_direction_aux_gating(self):
        entry = make_entry()
        assert not entry.may_use_direction_aux
        entry.bidirectional = True
        assert entry.may_use_direction_aux

    def test_unconditional_never_uses_direction_aux(self):
        entry = make_entry(kind=BranchKind.UNCONDITIONAL_RELATIVE)
        entry.bidirectional = True
        assert not entry.may_use_direction_aux

    def test_target_aux_gating(self):
        entry = make_entry()
        assert not entry.may_use_target_aux
        entry.multi_target = True
        assert entry.may_use_target_aux

    def test_address_in_line(self):
        entry = make_entry(offset=8)
        assert entry.address_in(0x4000) == 0x4008

    def test_skoot_unknown_then_set(self):
        entry = make_entry()
        assert entry.skoot is None
        entry.train_skoot(5, maximum=15)
        assert entry.skoot == 5

    def test_skoot_only_decreases(self):
        entry = make_entry()
        entry.train_skoot(5, maximum=15)
        entry.train_skoot(8, maximum=15)
        assert entry.skoot == 5
        entry.train_skoot(2, maximum=15)
        assert entry.skoot == 2

    def test_skoot_clamped_to_field_width(self):
        entry = make_entry()
        entry.train_skoot(100, maximum=15)
        assert entry.skoot == 15

    def test_skoot_never_negative(self):
        entry = make_entry()
        entry.train_skoot(-3, maximum=15)
        assert entry.skoot == 0


class TestBtb2Entry:
    def test_roundtrip_through_btb2(self):
        original = make_entry(
            bidirectional=True,
            multi_target=True,
            return_offset=4,
            skoot=3,
            bht=TwoBitDirectionCounter(TwoBitDirectionCounter.STRONG_TAKEN),
        )
        snapshot = Btb2Entry.from_btb1_entry(original, btb2_tag=0x77)
        assert snapshot.tag == 0x77
        assert snapshot.bht_value == TwoBitDirectionCounter.STRONG_TAKEN
        restored = snapshot.to_btb1_entry(btb1_tag=0x55)
        assert restored.tag == 0x55
        assert restored.offset == original.offset
        assert restored.kind == original.kind
        assert restored.target == original.target
        assert restored.bidirectional
        assert restored.multi_target
        assert restored.return_offset == 4
        assert restored.skoot == 3
        assert restored.bht.value == TwoBitDirectionCounter.STRONG_TAKEN
        assert restored.line_base == original.line_base

    def test_restored_bht_is_independent(self):
        original = make_entry()
        snapshot = Btb2Entry.from_btb1_entry(original, btb2_tag=1)
        restored = snapshot.to_btb1_entry(btb1_tag=2)
        restored.bht.update(taken=True)
        restored.bht.update(taken=True)
        assert original.bht.value != restored.bht.value or True  # no aliasing
        assert restored.bht is not original.bht

    def test_blacklist_not_carried_to_btb2(self):
        """The blacklist is prediction-side state; a re-primed entry gets
        a fresh chance."""
        original = make_entry(crs_blacklisted=True)
        snapshot = Btb2Entry.from_btb1_entry(original, btb2_tag=1)
        restored = snapshot.to_btb1_entry(btb1_tag=2)
        assert not restored.crs_blacklisted
