"""Tests for the speculative BHT/PHT overlays."""

from repro.configs.predictor import SpeculativeOverlayConfig
from repro.core.spec import SpeculativeOverlay, sbht_key, spht_key


def make_overlay(entries=4, enabled=True):
    return SpeculativeOverlay(
        SpeculativeOverlayConfig(enabled=enabled, entries=entries), "sbht"
    )


def test_miss_returns_none():
    overlay = make_overlay()
    assert overlay.lookup(("k", 1)) is None


def test_install_then_override():
    overlay = make_overlay()
    overlay.install(("k", 1), taken=True, installer_sequence=10)
    assert overlay.lookup(("k", 1)) is True
    assert overlay.overrides == 1


def test_reinstall_updates_direction():
    overlay = make_overlay()
    overlay.install(("k", 1), taken=True, installer_sequence=10)
    overlay.install(("k", 1), taken=False, installer_sequence=12)
    assert overlay.lookup(("k", 1)) is False
    assert len(overlay) == 1


def test_capacity_fifo_eviction():
    overlay = make_overlay(entries=2)
    overlay.install(("k", 1), True, 1)
    overlay.install(("k", 2), True, 2)
    overlay.install(("k", 3), True, 3)
    assert overlay.lookup(("k", 1)) is None
    assert overlay.lookup(("k", 2)) is True
    assert overlay.lookup(("k", 3)) is True


def test_retire_removes_completed_installers():
    overlay = make_overlay()
    overlay.install(("k", 1), True, 5)
    overlay.install(("k", 2), True, 9)
    removed = overlay.retire(sequence=5)
    assert removed == 1
    assert overlay.lookup(("k", 1)) is None
    assert overlay.lookup(("k", 2)) is True


def test_retire_is_inclusive_of_sequence():
    overlay = make_overlay()
    overlay.install(("k", 1), True, 5)
    assert overlay.retire(sequence=4) == 0
    assert overlay.retire(sequence=5) == 1


def test_flush_clears_everything():
    overlay = make_overlay()
    overlay.install(("k", 1), True, 5)
    overlay.install(("k", 2), False, 6)
    overlay.flush()
    assert len(overlay) == 0


def test_disabled_overlay_is_inert():
    overlay = make_overlay(enabled=False)
    overlay.install(("k", 1), True, 5)
    assert overlay.lookup(("k", 1)) is None
    assert overlay.installs == 0


def test_reinstall_then_retire_uses_new_sequence():
    overlay = make_overlay()
    overlay.install(("k", 1), True, 5)
    overlay.install(("k", 1), True, 20)  # refreshed by a younger branch
    assert overlay.retire(sequence=5) == 0
    assert overlay.lookup(("k", 1)) is True


def test_key_helpers_are_distinct():
    assert sbht_key(1, 2, 3, 4) != spht_key("short", 1, 3)
    assert sbht_key(1, 2, 3, 4) == sbht_key(1, 2, 3, 4)
    assert spht_key("short", 1, 3) != spht_key("long", 1, 3)
