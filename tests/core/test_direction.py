"""Tests for figure-8 direction provider selection."""

import pytest

from repro.configs.predictor import (
    CpredConfig,
    PerceptronConfig,
    PhtConfig,
    SpeculativeOverlayConfig,
)
from repro.core.btb1 import BtbHit
from repro.core.cpred import POWER_ALL, POWER_CTB, ColumnPredictor, CpredLookup
from repro.core.direction import DirectionLogic
from repro.core.entries import BtbEntry
from repro.core.gpv import GlobalPathVector
from repro.core.perceptron import Perceptron
from repro.core.providers import DirectionProvider
from repro.core.spec import SpeculativeOverlay, sbht_key, spht_key
from repro.core.tage import TagePht
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter


def make_logic():
    tage = TagePht(PhtConfig(rows=64, ways=4))
    perceptron = Perceptron(
        PerceptronConfig(rows=4, ways=2, weight_count=8, provider_threshold=2),
        gpv_width=34,
    )
    sbht = SpeculativeOverlay(SpeculativeOverlayConfig(), "sbht")
    spht = SpeculativeOverlay(SpeculativeOverlayConfig(), "spht")
    cpred = ColumnPredictor(CpredConfig(rows=16))
    return DirectionLogic(tage, perceptron, sbht, spht, cpred)


def make_hit(kind=BranchKind.CONDITIONAL_RELATIVE, bht_value=2,
             bidirectional=False):
    entry = BtbEntry(
        tag=0x11,
        offset=8,
        length=4,
        kind=kind,
        target=0x9000,
        bht=TwoBitDirectionCounter(bht_value),
        bidirectional=bidirectional,
        line_base=0x1000,
    )
    return BtbHit(row=3, way=1, entry=entry, line_base=0x1000)


def fresh_gpv():
    gpv = GlobalPathVector(depth=17)
    for address in (0x100, 0x204, 0x308):
        gpv.record_taken(address)
    return gpv


MISS_CPRED = CpredLookup(hit=False)


class TestBasicSelection:
    def test_unconditional_always_taken(self):
        logic = make_logic()
        hit = make_hit(kind=BranchKind.UNCONDITIONAL_RELATIVE)
        decision = logic.decide(hit, fresh_gpv(), 0, MISS_CPRED)
        assert decision.taken
        assert decision.provider is DirectionProvider.UNCONDITIONAL
        assert decision.alternate_taken is None

    def test_non_bidirectional_uses_bht(self):
        logic = make_logic()
        hit = make_hit(bht_value=TwoBitDirectionCounter.STRONG_TAKEN)
        decision = logic.decide(hit, fresh_gpv(), 0, MISS_CPRED)
        assert decision.taken
        assert decision.provider is DirectionProvider.BHT
        assert decision.tage_snapshot is None  # aux not consulted

    def test_bht_not_taken(self):
        logic = make_logic()
        hit = make_hit(bht_value=TwoBitDirectionCounter.STRONG_NOT_TAKEN)
        decision = logic.decide(hit, fresh_gpv(), 0, MISS_CPRED)
        assert not decision.taken


class TestWeakBhtOverlay:
    def test_weak_bht_installs_sbht(self):
        logic = make_logic()
        hit = make_hit(bht_value=TwoBitDirectionCounter.WEAK_TAKEN)
        decision = logic.decide(hit, fresh_gpv(), sequence=7, cpred_lookup=MISS_CPRED)
        assert decision.provider is DirectionProvider.BHT
        key = sbht_key(hit.row, hit.way, hit.entry.tag, hit.entry.offset)
        assert logic.sbht.lookup(key) is True

    def test_sbht_overrides_on_next_occurrence(self):
        logic = make_logic()
        hit = make_hit(bht_value=TwoBitDirectionCounter.WEAK_TAKEN)
        key = sbht_key(hit.row, hit.way, hit.entry.tag, hit.entry.offset)
        logic.sbht.install(key, taken=False, installer_sequence=1)
        decision = logic.decide(hit, fresh_gpv(), 2, MISS_CPRED)
        assert decision.provider is DirectionProvider.SBHT
        assert not decision.taken
        # Alternate is the raw BHT.
        assert decision.alternate_provider is DirectionProvider.BHT
        assert decision.alternate_taken is True

    def test_strong_bht_installs_nothing(self):
        logic = make_logic()
        hit = make_hit(bht_value=TwoBitDirectionCounter.STRONG_TAKEN)
        logic.decide(hit, fresh_gpv(), 0, MISS_CPRED)
        assert logic.sbht.installs == 0


class TestTageLeg:
    def _with_tage_entry(self, logic, gpv, address=0x1008, taken=False):
        logic.tage.install_on_mispredict(address, gpv.snapshot(), taken, None)

    def test_bidirectional_consults_tage(self):
        logic = make_logic()
        gpv = fresh_gpv()
        hit = make_hit(bidirectional=True,
                       bht_value=TwoBitDirectionCounter.STRONG_TAKEN)
        self._with_tage_entry(logic, gpv, address=hit.address, taken=False)
        decision = logic.decide(hit, gpv, 0, MISS_CPRED)
        assert decision.provider in (
            DirectionProvider.PHT_SHORT, DirectionProvider.PHT_LONG
        )
        assert not decision.taken
        # BHT is the alternate.
        assert decision.alternate_taken is True

    def test_spht_overrides_tage(self):
        logic = make_logic()
        gpv = fresh_gpv()
        hit = make_hit(bidirectional=True)
        self._with_tage_entry(logic, gpv, address=hit.address, taken=False)
        lookup = logic.tage.lookup(hit.address, gpv)
        provider_hit = lookup.provider_hit
        logic.spht.install(
            spht_key(provider_hit.table, provider_hit.row, provider_hit.tag),
            taken=True,
            installer_sequence=1,
        )
        decision = logic.decide(hit, gpv, 2, MISS_CPRED)
        assert decision.provider is DirectionProvider.SPHT
        assert decision.taken

    def test_weak_tage_installs_spht(self):
        logic = make_logic()
        gpv = fresh_gpv()
        hit = make_hit(bidirectional=True)
        self._with_tage_entry(logic, gpv, address=hit.address, taken=False)
        decision = logic.decide(hit, gpv, 9, MISS_CPRED)
        assert decision.provider in (
            DirectionProvider.PHT_SHORT, DirectionProvider.PHT_LONG
        )
        assert logic.spht.installs == 1


class TestPerceptronLeg:
    def test_useful_perceptron_provides(self):
        logic = make_logic()
        gpv = fresh_gpv()
        hit = make_hit(bidirectional=True)
        logic.perceptron.install(hit.address)
        # Raise usefulness to the provider threshold manually.
        row = logic.perceptron.row_of(hit.address)
        entry = next(
            e for e in logic.perceptron._rows[row] if e is not None
        )
        entry.usefulness = 5
        decision = logic.decide(hit, gpv, 0, MISS_CPRED)
        assert decision.provider is DirectionProvider.PERCEPTRON
        # Alternate falls to the BHT (no TAGE hit).
        assert decision.alternate_provider is DirectionProvider.BHT

    def test_unuseful_perceptron_only_tracked(self):
        logic = make_logic()
        gpv = fresh_gpv()
        hit = make_hit(bidirectional=True)
        logic.perceptron.install(hit.address)
        decision = logic.decide(hit, gpv, 0, MISS_CPRED)
        assert decision.provider is DirectionProvider.BHT
        assert decision.perceptron_lookup is not None
        assert decision.perceptron_lookup.hit


class TestPowerGating:
    def test_gated_pht_falls_to_bht(self):
        logic = make_logic()
        gpv = fresh_gpv()
        hit = make_hit(bidirectional=True,
                       bht_value=TwoBitDirectionCounter.STRONG_TAKEN)
        logic.tage.install_on_mispredict(hit.address, gpv.snapshot(), False, None)
        # CPRED hit that powers only the CTB: PHT and perceptron gated.
        gated = CpredLookup(hit=True, power_mask=POWER_CTB)
        decision = logic.decide(hit, gpv, 0, gated)
        assert decision.provider is DirectionProvider.BHT
        assert not decision.pht_powered
        assert not decision.perceptron_powered
        assert logic.cpred.power_gate_misses == 2

    def test_full_power_mask_keeps_aux(self):
        logic = make_logic()
        gpv = fresh_gpv()
        hit = make_hit(bidirectional=True)
        logic.tage.install_on_mispredict(hit.address, gpv.snapshot(), False, None)
        powered = CpredLookup(hit=True, power_mask=POWER_ALL)
        decision = logic.decide(hit, gpv, 0, powered)
        assert decision.pht_powered
