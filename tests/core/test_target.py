"""Tests for figure-9 target provider selection."""

from repro.configs.predictor import CpredConfig, CrsConfig, CtbConfig
from repro.core.btb1 import BtbHit
from repro.core.cpred import POWER_ALL, POWER_PHT, ColumnPredictor, CpredLookup
from repro.core.crs import CallReturnStack
from repro.core.ctb import ChangingTargetBuffer
from repro.core.entries import BtbEntry
from repro.core.gpv import GlobalPathVector
from repro.core.providers import TargetProvider
from repro.core.target import TargetLogic
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter


def make_logic():
    ctb = ChangingTargetBuffer(CtbConfig(rows=32, ways=2))
    crs = CallReturnStack(CrsConfig(distance_threshold=1024))
    cpred = ColumnPredictor(CpredConfig(rows=16))
    return TargetLogic(ctb, crs, cpred)


def make_hit(multi_target=False, return_offset=None, blacklisted=False,
             target=0x9000):
    entry = BtbEntry(
        tag=0x11,
        offset=8,
        length=4,
        kind=BranchKind.UNCONDITIONAL_INDIRECT,
        target=target,
        bht=TwoBitDirectionCounter(3),
        multi_target=multi_target,
        return_offset=return_offset,
        crs_blacklisted=blacklisted,
        line_base=0x1000,
    )
    return BtbHit(row=3, way=1, entry=entry, line_base=0x1000)


def gpv_snapshot():
    gpv = GlobalPathVector(depth=17)
    for address in (0x100, 0x204):
        gpv.record_taken(address)
    return gpv.snapshot()


MISS_CPRED = CpredLookup(hit=False)


def test_single_target_uses_btb1():
    logic = make_logic()
    hit = make_hit(multi_target=False)
    decision = logic.decide(hit, 0, gpv_snapshot(), MISS_CPRED)
    assert decision.provider is TargetProvider.BTB1
    assert decision.target == 0x9000
    assert decision.ctb_lookup is None  # CTB not even consulted


def test_multi_target_ctb_hit_wins():
    logic = make_logic()
    snapshot = gpv_snapshot()
    hit = make_hit(multi_target=True)
    logic.ctb.install(hit.address, 0, snapshot, target=0x7000)
    decision = logic.decide(hit, 0, snapshot, MISS_CPRED)
    assert decision.provider is TargetProvider.CTB
    assert decision.target == 0x7000


def test_multi_target_ctb_miss_falls_to_btb1():
    logic = make_logic()
    hit = make_hit(multi_target=True)
    decision = logic.decide(hit, 0, gpv_snapshot(), MISS_CPRED)
    assert decision.provider is TargetProvider.BTB1
    assert decision.ctb_lookup is not None
    assert not decision.ctb_lookup.hit


def test_marked_return_uses_crs_before_ctb():
    logic = make_logic()
    snapshot = gpv_snapshot()
    hit = make_hit(multi_target=True, return_offset=4)
    logic.ctb.install(hit.address, 0, snapshot, target=0x7000)
    logic.crs.note_predicted_taken(0x10000, 0x20000, 0x10004)
    decision = logic.decide(hit, 0, snapshot, MISS_CPRED)
    assert decision.provider is TargetProvider.CRS
    assert decision.target == 0x10004 + 4


def test_blacklisted_return_uses_ctb():
    logic = make_logic()
    snapshot = gpv_snapshot()
    hit = make_hit(multi_target=True, return_offset=4, blacklisted=True)
    logic.ctb.install(hit.address, 0, snapshot, target=0x7000)
    logic.crs.note_predicted_taken(0x10000, 0x20000, 0x10004)
    decision = logic.decide(hit, 0, snapshot, MISS_CPRED)
    assert decision.provider is TargetProvider.CTB
    assert decision.target == 0x7000


def test_invalid_stack_falls_through():
    logic = make_logic()
    hit = make_hit(multi_target=True, return_offset=0)
    decision = logic.decide(hit, 0, gpv_snapshot(), MISS_CPRED)
    assert decision.provider is TargetProvider.BTB1


def test_power_gated_ctb_falls_to_btb1():
    logic = make_logic()
    snapshot = gpv_snapshot()
    hit = make_hit(multi_target=True)
    logic.ctb.install(hit.address, 0, snapshot, target=0x7000)
    gated = CpredLookup(hit=True, power_mask=POWER_PHT)  # CTB bit off
    decision = logic.decide(hit, 0, snapshot, gated)
    assert decision.provider is TargetProvider.BTB1
    assert not decision.ctb_powered
    assert logic.cpred.power_gate_misses == 1


def test_crs_not_subject_to_ctb_power_gate():
    logic = make_logic()
    hit = make_hit(multi_target=True, return_offset=0)
    logic.crs.note_predicted_taken(0x10000, 0x20000, 0x10004)
    gated = CpredLookup(hit=True, power_mask=POWER_PHT)
    decision = logic.decide(hit, 0, gpv_snapshot(), gated)
    assert decision.provider is TargetProvider.CRS
