"""Tests for the level-1 BTB."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.configs.predictor import Btb1Config
from repro.core.btb1 import Btb1
from repro.core.entries import BtbEntry
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter


def small_btb(rows=16, ways=4, tag_bits=8):
    return Btb1(Btb1Config(rows=rows, ways=ways, tag_bits=tag_bits, policy="lru"))


def entry_for(target=0x9000, kind=BranchKind.CONDITIONAL_RELATIVE, taken=True):
    return BtbEntry(
        tag=0,
        offset=0,
        length=4,
        kind=kind,
        target=target,
        bht=TwoBitDirectionCounter.for_direction(taken),
    )


class TestIndexing:
    def test_same_line_same_row(self):
        btb = small_btb()
        assert btb.row_of(0x1000) == btb.row_of(0x103E)

    def test_adjacent_lines_different_rows(self):
        btb = small_btb()
        assert btb.row_of(0x1000) != btb.row_of(0x1040)

    def test_context_changes_tag(self):
        btb = small_btb()
        assert btb.tag_of(0x1000, 0) != btb.tag_of(0x1000, 1)


class TestInstallAndLookup:
    def test_install_then_lookup(self):
        btb = small_btb()
        result = btb.install(0x1008, 0, entry_for())
        assert result.installed and not result.duplicate
        hit = btb.lookup(0x1008, 0)
        assert hit is not None
        assert hit.address == 0x1008
        assert hit.entry.target == 0x9000
        assert not hit.aliased

    def test_lookup_miss(self):
        btb = small_btb()
        btb.install(0x1008, 0, entry_for())
        assert btb.lookup(0x100A, 0) is None
        assert btb.lookup(0x1008, 1) is None  # wrong context

    def test_duplicate_install_rejected(self):
        btb = small_btb()
        assert btb.install(0x1008, 0, entry_for()).installed
        second = btb.install(0x1008, 0, entry_for(target=0xAAAA))
        assert not second.installed and second.duplicate
        assert btb.duplicate_rejects == 1
        # Original content survives.
        assert btb.lookup(0x1008, 0).entry.target == 0x9000

    def test_same_line_different_offsets_coexist(self):
        btb = small_btb()
        btb.install(0x1000, 0, entry_for())
        btb.install(0x1008, 0, entry_for())
        btb.install(0x1020, 0, entry_for())
        hits = btb.search_line(0x1000, 0)
        assert [hit.entry.offset for hit in hits] == [0, 8, 32]

    def test_eviction_when_row_full(self):
        btb = small_btb(rows=16, ways=2)
        # Three branches in the same 64B line with only 2 ways.
        btb.install(0x1000, 0, entry_for())
        btb.install(0x1008, 0, entry_for())
        result = btb.install(0x1010, 0, entry_for())
        assert result.victim is not None
        assert btb.evictions == 1
        assert btb.occupancy == 2


class TestSearchLine:
    def test_ordered_by_offset(self):
        btb = small_btb()
        for offset in (0x20, 0x00, 0x10):
            btb.install(0x2000 + offset, 0, entry_for())
        hits = btb.search_line(0x2000, 0)
        assert [h.entry.offset for h in hits] == [0x00, 0x10, 0x20]

    def test_min_offset_filters(self):
        btb = small_btb()
        btb.install(0x2000, 0, entry_for())
        btb.install(0x2020, 0, entry_for())
        hits = btb.search_line(0x2000, 0, min_offset=0x10)
        assert [h.entry.offset for h in hits] == [0x20]

    def test_unaligned_search_address_uses_line(self):
        btb = small_btb()
        btb.install(0x2020, 0, entry_for())
        hits = btb.search_line(0x2004, 0)
        assert len(hits) == 1
        assert hits[0].line_base == 0x2000

    def test_search_counts(self):
        btb = small_btb()
        btb.search_line(0x3000, 0)
        btb.install(0x3000, 0, entry_for())
        btb.search_line(0x3000, 0)
        assert btb.searches == 2
        assert btb.hit_searches == 1


class TestAliasing:
    def test_partial_tags_alias(self):
        """With a tiny tag, two distant lines can collide and report a
        hit for an address where nothing was installed — the bad-branch
        case of section IV."""
        btb = small_btb(rows=4, ways=4, tag_bits=4)
        # Find two different lines with the same row and tag.
        base = 0x1000
        alias = None
        for candidate in range(0x2000, 0x400000, 0x40):
            if candidate == base:
                continue
            if btb.row_of(candidate) == btb.row_of(base) and btb.tag_of(
                candidate, 0
            ) == btb.tag_of(base, 0):
                alias = candidate
                break
        assert alias is not None, "no alias found (tag too wide for test)"
        btb.install(base + 8, 0, entry_for())
        hit = btb.lookup(alias + 8, 0)
        assert hit is not None
        assert hit.aliased
        assert hit.address == alias + 8


class TestRemove:
    def test_remove_bad_entry(self):
        btb = small_btb()
        btb.install(0x1008, 0, entry_for())
        hit = btb.lookup(0x1008, 0)
        assert btb.remove(hit)
        assert btb.lookup(0x1008, 0) is None
        assert btb.removals == 1

    def test_remove_is_idempotent_on_stale_hits(self):
        btb = small_btb()
        btb.install(0x1008, 0, entry_for())
        hit = btb.lookup(0x1008, 0)
        assert btb.remove(hit)
        assert not btb.remove(hit)
        assert btb.removals == 1


class TestVictimPreview:
    def test_partial_row_has_no_victim(self):
        btb = small_btb(rows=16, ways=4)
        btb.install(0x1000, 0, entry_for())
        assert btb.victim_preview(btb.row_of(0x1000)) is None

    def test_full_row_previews_lru(self):
        btb = small_btb(rows=16, ways=2)
        btb.install(0x1000, 0, entry_for(target=0x1111))
        btb.install(0x1008, 0, entry_for(target=0x2222))
        victim = btb.victim_preview(btb.row_of(0x1000))
        assert victim is not None
        assert victim.target == 0x1111  # least recently used


@given(
    st.lists(
        st.integers(min_value=0, max_value=2**20).map(lambda a: a * 2),
        min_size=1,
        max_size=100,
    )
)
def test_install_lookup_consistency(addresses):
    """Whatever was installed most recently at an address must be found,
    unless it was evicted; occupancy never exceeds capacity."""
    btb = small_btb(rows=8, ways=2, tag_bits=16)
    for address in addresses:
        btb.install(address, 0, entry_for(target=address + 2))
    assert btb.occupancy <= btb.capacity
    hits = sum(1 for address in set(addresses) if btb.lookup(address, 0))
    assert hits <= len(set(addresses))
