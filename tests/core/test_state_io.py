"""Tests for predictor-state save/restore."""

import json

import pytest

from repro.common.errors import ReproError, StateFormatError, TraceFormatError
from repro.configs import z15_config
from repro.configs.predictor import Btb1Config, PredictorConfig
from repro.core import LookaheadBranchPredictor, load_state, save_state
from repro.core.entries import BtbEntry
from repro.core.state_io import STATE_FORMAT
from repro.engine import FunctionalEngine, create_predictor
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter
from repro.workloads import get_workload


def warmed_predictor(branches=4000, backend="object"):
    predictor = create_predictor(z15_config(), backend)
    engine = FunctionalEngine(predictor)
    engine.run_program(get_workload("transactions"), max_branches=branches,
                       warmup_branches=0)
    return predictor


def test_roundtrip_counts(tmp_path):
    predictor = warmed_predictor()
    path = tmp_path / "state.json"
    saved = save_state(predictor, path)
    assert saved["btb1"] == predictor.btb1.occupancy
    fresh = LookaheadBranchPredictor(z15_config())
    loaded = load_state(fresh, path)
    assert loaded["btb1"] == saved["btb1"]
    assert fresh.btb1.occupancy == predictor.btb1.occupancy


def test_restored_entries_preserve_metadata(tmp_path):
    predictor = warmed_predictor()
    path = tmp_path / "state.json"
    save_state(predictor, path)
    fresh = LookaheadBranchPredictor(z15_config())
    load_state(fresh, path)
    for _row, _way, entry in predictor.btb1.entries():
        address = entry.line_base + entry.offset
        restored = fresh.btb1.lookup(address, entry.context)
        assert restored is not None
        assert restored.entry.target == entry.target
        assert restored.entry.kind == entry.kind
        assert restored.entry.bht.value == entry.bht.value
        assert restored.entry.bidirectional == entry.bidirectional
        assert restored.entry.multi_target == entry.multi_target
        assert restored.entry.return_offset == entry.return_offset
        assert restored.entry.skoot == entry.skoot


def test_warm_start_beats_cold_start(tmp_path):
    predictor = warmed_predictor(branches=6000)
    path = tmp_path / "state.json"
    save_state(predictor, path)

    def run(preload):
        fresh = LookaheadBranchPredictor(z15_config())
        if preload:
            load_state(fresh, path)
        engine = FunctionalEngine(fresh)
        return engine.run_program(get_workload("transactions"),
                                  max_branches=2000, warmup_branches=0)

    warm = run(True)
    cold = run(False)
    assert warm.dynamic_coverage > cold.dynamic_coverage
    assert warm.mpki <= cold.mpki


def test_restore_into_smaller_geometry(tmp_path):
    """Restoring into a smaller BTB1 just evicts; no errors."""
    predictor = warmed_predictor()
    path = tmp_path / "state.json"
    save_state(predictor, path)
    small = LookaheadBranchPredictor(
        PredictorConfig(btb1=Btb1Config(rows=16, ways=2, policy="lru"),
                        btb2=None, name="small").validate()
    )
    load_state(small, path)
    assert small.btb1.occupancy <= small.btb1.capacity


def test_bad_format_rejected(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(StateFormatError):
        load_state(LookaheadBranchPredictor(z15_config()), path)


def test_unknown_format_error_names_both_formats(tmp_path):
    """The rejection must say what was found and what was expected."""
    path = tmp_path / "bogus.json"
    path.write_text('{"format": "repro-predictor-state-v99"}')
    with pytest.raises(StateFormatError) as excinfo:
        load_state(LookaheadBranchPredictor(z15_config()), path)
    message = str(excinfo.value)
    assert "repro-predictor-state-v99" in message
    assert STATE_FORMAT in message


def test_missing_format_error_is_clear(tmp_path):
    path = tmp_path / "noformat.json"
    path.write_text('{"btb1": []}')
    with pytest.raises(StateFormatError) as excinfo:
        load_state(LookaheadBranchPredictor(z15_config()), path)
    assert "unknown state format" in str(excinfo.value)


def test_state_format_error_is_a_trace_format_repro_error():
    """Callers catching the trace-format family (or ReproError at the
    CLI top level) must also catch state-file problems."""
    assert issubclass(StateFormatError, TraceFormatError)
    assert issubclass(StateFormatError, ReproError)


class TestCorruptedStateFiles:
    """Malformed or truncated state files raise StateFormatError — never
    a bare ValueError / KeyError / json.JSONDecodeError."""

    def _fresh(self):
        return LookaheadBranchPredictor(z15_config())

    def _saved(self, tmp_path, branches=2000):
        path = tmp_path / "state.json"
        save_state(warmed_predictor(branches=branches), path)
        return path

    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("this is not json {")
        with pytest.raises(StateFormatError, match="not valid JSON"):
            load_state(self._fresh(), path)

    def test_truncated_file(self, tmp_path):
        path = self._saved(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(StateFormatError):
            load_state(self._fresh(), path)

    def test_wrong_toplevel_type(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(StateFormatError, match="JSON object"):
            load_state(self._fresh(), path)

    def test_entry_missing_field(self, tmp_path):
        path = self._saved(tmp_path)
        payload = json.loads(path.read_text())
        del payload["btb1"][0]["offset"]
        path.write_text(json.dumps(payload))
        with pytest.raises(StateFormatError, match="malformed state entry"):
            load_state(self._fresh(), path)

    def test_entry_bad_kind(self, tmp_path):
        path = self._saved(tmp_path)
        payload = json.loads(path.read_text())
        payload["btb1"][0]["kind"] = "not-a-branch-kind"
        path.write_text(json.dumps(payload))
        with pytest.raises(StateFormatError, match="malformed state entry"):
            load_state(self._fresh(), path)

    def test_entry_wrong_type(self, tmp_path):
        path = self._saved(tmp_path)
        payload = json.loads(path.read_text())
        payload["btb1"][0] = "not-a-dict"
        path.write_text(json.dumps(payload))
        with pytest.raises(StateFormatError):
            load_state(self._fresh(), path)

    def test_chained_cause_is_preserved(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{")
        with pytest.raises(StateFormatError) as caught:
            load_state(self._fresh(), path)
        assert isinstance(caught.value.__cause__, json.JSONDecodeError)


def _entry_with_every_field(target, skoot):
    """A BtbEntry with every persisted optional field set non-default."""
    return BtbEntry(
        tag=0,  # recomputed at install
        offset=0,
        length=6,
        kind=BranchKind.CONDITIONAL_INDIRECT,
        target=target,
        bht=TwoBitDirectionCounter(TwoBitDirectionCounter.STRONG_TAKEN),
        bidirectional=True,
        multi_target=True,
        return_offset=4,
        skoot=skoot,
    )


def test_save_load_save_is_byte_identical_with_all_fields(tmp_path):
    """Every persisted BtbEntry field — including skoot, multi_target,
    return_offset and context — must survive save -> load -> save with
    byte-identical JSON."""
    predictor = LookaheadBranchPredictor(z15_config())
    for index in range(12):
        address = 0x8000 + index * 0x140
        context = index % 3
        entry = _entry_with_every_field(
            target=0x2000 + index * 64, skoot=index % 4
        )
        predictor.btb1.install(address, context, entry)
        predictor.btb2.writeback_entry(entry)

    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    save_state(predictor, first)
    fresh = LookaheadBranchPredictor(z15_config())
    load_state(fresh, first)
    save_state(fresh, second)
    assert first.read_bytes() == second.read_bytes()

    # Field-level check on the decoded payload, not just the bytes.
    payload = json.loads(first.read_text())
    assert payload["format"] == STATE_FORMAT
    assert len(payload["btb1"]) == 12
    for data in payload["btb1"]:
        assert data["length"] == 6
        assert data["kind"] == BranchKind.CONDITIONAL_INDIRECT.value
        assert data["bht"] == TwoBitDirectionCounter.STRONG_TAKEN
        assert data["bidirectional"] is True
        assert data["multi_target"] is True
        assert data["return_offset"] == 4
        assert data["skoot"] in (0, 1, 2, 3)
        assert data["context"] in (0, 1, 2)


def test_warmed_state_roundtrip_is_byte_identical(tmp_path):
    """The byte-identity guarantee holds for organically learned state,
    not just synthetic entries."""
    predictor = warmed_predictor(branches=3000)
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    save_state(predictor, first)
    fresh = LookaheadBranchPredictor(z15_config())
    load_state(fresh, first)
    save_state(fresh, second)
    assert first.read_bytes() == second.read_bytes()


def test_btb2_state_roundtrips(tmp_path):
    predictor = warmed_predictor(branches=6000)
    # Push some learning into the BTB2 via explicit writebacks.
    count = 0
    for _row, _way, entry in list(predictor.btb1.entries())[:20]:
        predictor.btb2.writeback_entry(entry)
        count += 1
    path = tmp_path / "state.json"
    saved = save_state(predictor, path)
    assert saved["btb2"] >= count
    fresh = LookaheadBranchPredictor(z15_config())
    loaded = load_state(fresh, path)
    assert loaded["btb2"] == saved["btb2"]
    assert fresh.btb2.occupancy > 0


# ----------------------------------------------------------------------
# Array-backend checkpoints
# ----------------------------------------------------------------------


def test_array_state_roundtrip_is_byte_identical(tmp_path):
    """An array-backend checkpoint must survive save -> load -> save
    with byte-identical JSON, through array-backend predictors."""
    predictor = warmed_predictor(branches=3000, backend="array")
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    save_state(predictor, first)
    fresh = create_predictor(z15_config(), "array")
    load_state(fresh, first)
    save_state(fresh, second)
    assert first.read_bytes() == second.read_bytes()
    # Restoring went through the mirror-synchronising install paths.
    assert fresh.btb1.audit() == []
    assert fresh.btb2.audit() == []


@pytest.mark.parametrize("save_backend,restore_backend", [
    ("object", "array"),
    ("array", "object"),
])
def test_cross_backend_checkpoints_are_byte_identical(
    tmp_path, save_backend, restore_backend
):
    """State files are backend-neutral: a checkpoint restored into the
    other backend and re-saved must reproduce the same bytes."""
    predictor = warmed_predictor(branches=3000, backend=save_backend)
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    save_state(predictor, first)
    fresh = create_predictor(z15_config(), restore_backend)
    load_state(fresh, first)
    save_state(fresh, second)
    assert first.read_bytes() == second.read_bytes()
    assert fresh.btb1.occupancy == predictor.btb1.occupancy
    assert fresh.btb2.occupancy == predictor.btb2.occupancy
