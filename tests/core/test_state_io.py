"""Tests for predictor-state save/restore."""

import pytest

from repro.configs import z15_config
from repro.configs.predictor import Btb1Config, PredictorConfig
from repro.core import LookaheadBranchPredictor, load_state, save_state
from repro.engine import FunctionalEngine
from repro.workloads import get_workload


def warmed_predictor(branches=4000):
    predictor = LookaheadBranchPredictor(z15_config())
    engine = FunctionalEngine(predictor)
    engine.run_program(get_workload("transactions"), max_branches=branches,
                       warmup_branches=0)
    return predictor


def test_roundtrip_counts(tmp_path):
    predictor = warmed_predictor()
    path = tmp_path / "state.json"
    saved = save_state(predictor, path)
    assert saved["btb1"] == predictor.btb1.occupancy
    fresh = LookaheadBranchPredictor(z15_config())
    loaded = load_state(fresh, path)
    assert loaded["btb1"] == saved["btb1"]
    assert fresh.btb1.occupancy == predictor.btb1.occupancy


def test_restored_entries_preserve_metadata(tmp_path):
    predictor = warmed_predictor()
    path = tmp_path / "state.json"
    save_state(predictor, path)
    fresh = LookaheadBranchPredictor(z15_config())
    load_state(fresh, path)
    for _row, _way, entry in predictor.btb1.entries():
        address = entry.line_base + entry.offset
        restored = fresh.btb1.lookup(address, entry.context)
        assert restored is not None
        assert restored.entry.target == entry.target
        assert restored.entry.kind == entry.kind
        assert restored.entry.bht.value == entry.bht.value
        assert restored.entry.bidirectional == entry.bidirectional
        assert restored.entry.multi_target == entry.multi_target
        assert restored.entry.return_offset == entry.return_offset
        assert restored.entry.skoot == entry.skoot


def test_warm_start_beats_cold_start(tmp_path):
    predictor = warmed_predictor(branches=6000)
    path = tmp_path / "state.json"
    save_state(predictor, path)

    def run(preload):
        fresh = LookaheadBranchPredictor(z15_config())
        if preload:
            load_state(fresh, path)
        engine = FunctionalEngine(fresh)
        return engine.run_program(get_workload("transactions"),
                                  max_branches=2000, warmup_branches=0)

    warm = run(True)
    cold = run(False)
    assert warm.dynamic_coverage > cold.dynamic_coverage
    assert warm.mpki <= cold.mpki


def test_restore_into_smaller_geometry(tmp_path):
    """Restoring into a smaller BTB1 just evicts; no errors."""
    predictor = warmed_predictor()
    path = tmp_path / "state.json"
    save_state(predictor, path)
    small = LookaheadBranchPredictor(
        PredictorConfig(btb1=Btb1Config(rows=16, ways=2, policy="lru"),
                        btb2=None, name="small").validate()
    )
    load_state(small, path)
    assert small.btb1.occupancy <= small.btb1.capacity


def test_bad_format_rejected(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError):
        load_state(LookaheadBranchPredictor(z15_config()), path)


def test_btb2_state_roundtrips(tmp_path):
    predictor = warmed_predictor(branches=6000)
    # Push some learning into the BTB2 via explicit writebacks.
    count = 0
    for _row, _way, entry in list(predictor.btb1.entries())[:20]:
        predictor.btb2.writeback_entry(entry)
        count += 1
    path = tmp_path / "state.json"
    saved = save_state(predictor, path)
    assert saved["btb2"] >= count
    fresh = LookaheadBranchPredictor(z15_config())
    loaded = load_state(fresh, path)
    assert loaded["btb2"] == saved["btb2"]
    assert fresh.btb2.occupancy > 0
