"""Tests for the changing target buffer."""

from repro.configs.predictor import CtbConfig
from repro.core.ctb import ChangingTargetBuffer
from repro.core.gpv import GlobalPathVector


def make_ctb(**overrides):
    defaults = dict(rows=32, ways=2, tag_bits=10, history=17)
    defaults.update(overrides)
    return ChangingTargetBuffer(CtbConfig(**defaults))


def gpv_snapshot(addresses):
    gpv = GlobalPathVector(depth=17)
    for address in addresses:
        gpv.record_taken(address)
    return gpv.snapshot()


ADDRESS = 0x8008
PATH_A = gpv_snapshot([0x100, 0x204, 0x308])
PATH_B = gpv_snapshot([0x900, 0xA04, 0xB08])


def test_cold_miss():
    ctb = make_ctb()
    assert not ctb.lookup(ADDRESS, 0, PATH_A).hit


def test_install_then_hit_same_path():
    ctb = make_ctb()
    ctb.install(ADDRESS, 0, PATH_A, target=0x5000)
    lookup = ctb.lookup(ADDRESS, 0, PATH_A)
    assert lookup.hit
    assert lookup.target == 0x5000


def test_per_path_targets():
    """The same branch holds different targets under different paths —
    the whole point of GPV indexing (section VI)."""
    ctb = make_ctb()
    ctb.install(ADDRESS, 0, PATH_A, target=0x5000)
    ctb.install(ADDRESS, 0, PATH_B, target=0x6000)
    assert ctb.lookup(ADDRESS, 0, PATH_A).target == 0x5000
    assert ctb.lookup(ADDRESS, 0, PATH_B).target == 0x6000


def test_context_tag_mismatch_misses():
    """Virtual-address tagging: "a CTB entry can only be used if there is
    a tag match for the current address space"."""
    ctb = make_ctb()
    ctb.install(ADDRESS, 0, PATH_A, target=0x5000)
    assert not ctb.lookup(ADDRESS, 3, PATH_A).hit


def test_reinstall_same_key_updates_target():
    ctb = make_ctb()
    ctb.install(ADDRESS, 0, PATH_A, target=0x5000)
    ctb.install(ADDRESS, 0, PATH_A, target=0x7000)
    assert ctb.lookup(ADDRESS, 0, PATH_A).target == 0x7000
    assert ctb.occupancy == 1


def test_correct_target_in_place():
    ctb = make_ctb()
    ctb.install(ADDRESS, 0, PATH_A, target=0x5000)
    lookup = ctb.lookup(ADDRESS, 0, PATH_A)
    assert ctb.correct_target(lookup, 0x9000)
    assert ctb.lookup(ADDRESS, 0, PATH_A).target == 0x9000
    assert ctb.target_updates == 1


def test_correct_target_on_displaced_entry_fails_gracefully():
    ctb = make_ctb(rows=1, ways=1)
    ctb.install(ADDRESS, 0, PATH_A, target=0x5000)
    lookup = ctb.lookup(ADDRESS, 0, PATH_A)
    # Displace it (single slot) with another branch's entry.
    ctb.install(0xFF08, 0, PATH_B, target=0x8888)
    assert not ctb.correct_target(lookup, 0x9000)


def test_stats():
    ctb = make_ctb()
    ctb.lookup(ADDRESS, 0, PATH_A)
    ctb.install(ADDRESS, 0, PATH_A, target=0x5000)
    ctb.lookup(ADDRESS, 0, PATH_A)
    assert ctb.lookups == 2
    assert ctb.hits == 1
    assert ctb.installs == 1
