"""Tests for the perceptron auxiliary predictor."""

import pytest

from repro.configs.predictor import PerceptronConfig
from repro.core.gpv import GlobalPathVector
from repro.core.perceptron import Perceptron


def make_perceptron(**overrides):
    defaults = dict(
        enabled=True,
        rows=4,
        ways=2,
        weight_count=8,
        weight_limit=31,
        protection_limit=2,
        provider_threshold=2,
        learning_threshold=1,
        virtualization_threshold=1,
        virtualization_age=8,
    )
    defaults.update(overrides)
    return Perceptron(PerceptronConfig(**defaults), gpv_width=16)


def gpv_with_bits(bits):
    """Build a GPV whose bit vector (LSB-first) starts with *bits*."""
    gpv = GlobalPathVector(depth=8, bits_per_branch=2)
    value = 0
    for index, bit in enumerate(bits):
        value |= bit << index
    gpv.restore(value)
    return gpv


ADDRESS = 0x6010


class TestLookup:
    def test_cold_miss(self):
        perceptron = make_perceptron()
        lookup = perceptron.lookup(ADDRESS, gpv_with_bits([1, 0, 1]))
        assert not lookup.hit

    def test_install_then_hit_but_not_useful(self):
        perceptron = make_perceptron()
        assert perceptron.install(ADDRESS)
        lookup = perceptron.lookup(ADDRESS, gpv_with_bits([1, 0, 1]))
        assert lookup.hit
        assert not lookup.useful  # usefulness starts at 0

    def test_disabled_never_hits(self):
        perceptron = make_perceptron(enabled=False)
        assert not perceptron.install(ADDRESS)
        assert not perceptron.lookup(ADDRESS, gpv_with_bits([1])).hit


class TestTraining:
    def test_learns_history_function(self):
        """Direction = GPV bit 0 is learnable in a few updates."""
        perceptron = make_perceptron()
        perceptron.install(ADDRESS)
        for _ in range(12):
            for bit in (0, 1):
                gpv = gpv_with_bits([bit] * 16)
                lookup = perceptron.lookup(ADDRESS, gpv)
                perceptron.update(lookup, actual_taken=bool(bit),
                                  alternate_taken=not bool(bit))
        for bit in (0, 1):
            gpv = gpv_with_bits([bit] * 16)
            lookup = perceptron.lookup(ADDRESS, gpv)
            assert lookup.taken == bool(bit)

    def test_usefulness_promotes_to_provider(self):
        perceptron = make_perceptron(provider_threshold=2)
        perceptron.install(ADDRESS)
        gpv = gpv_with_bits([1] * 16)
        for _ in range(3):
            lookup = perceptron.lookup(ADDRESS, gpv)
            # Perceptron correct (after first update), alternate wrong.
            perceptron.update(lookup, actual_taken=True, alternate_taken=False)
        lookup = perceptron.lookup(ADDRESS, gpv)
        assert lookup.useful

    def test_usefulness_decrements_when_alternate_wins(self):
        perceptron = make_perceptron()
        perceptron.install(ADDRESS)
        gpv = gpv_with_bits([1] * 16)
        lookup = perceptron.lookup(ADDRESS, gpv)
        perceptron.update(lookup, actual_taken=True, alternate_taken=False)
        lookup = perceptron.lookup(ADDRESS, gpv)
        # Entry currently predicts taken; make it wrong with alt right.
        perceptron.update(lookup, actual_taken=False, alternate_taken=False)
        entry = perceptron._rows[perceptron.row_of(ADDRESS)]
        values = [e.usefulness for e in entry if e is not None]
        assert values[0] <= 1

    def test_learning_phase_grows_on_shared_wrong(self):
        perceptron = make_perceptron(learning_threshold=2)
        perceptron.install(ADDRESS)
        gpv = gpv_with_bits([1] * 16)
        lookup = perceptron.lookup(ADDRESS, gpv)
        taken = lookup.taken
        # Both wrong: usefulness should still rise while learning.
        perceptron.update(lookup, actual_taken=not taken, alternate_taken=taken)
        row = perceptron._rows[perceptron.row_of(ADDRESS)]
        entry = next(e for e in row if e is not None)
        assert entry.usefulness == 1

    def test_weights_saturate(self):
        perceptron = make_perceptron(weight_limit=3)
        perceptron.install(ADDRESS)
        gpv = gpv_with_bits([1] * 16)
        for _ in range(10):
            lookup = perceptron.lookup(ADDRESS, gpv)
            perceptron.update(lookup, actual_taken=True, alternate_taken=True)
        row = perceptron._rows[perceptron.row_of(ADDRESS)]
        entry = next(e for e in row if e is not None)
        assert all(abs(w) <= 3 for w in entry.weights)


class TestVirtualization:
    def test_dead_weights_retarget(self):
        perceptron = make_perceptron(
            virtualization_age=4, virtualization_threshold=0
        )
        perceptron.install(ADDRESS)
        # Alternate the observed bit so trained weights stay near zero.
        for step in range(8):
            gpv = gpv_with_bits([step % 2] * 16)
            lookup = perceptron.lookup(ADDRESS, gpv)
            perceptron.update(lookup, actual_taken=True, alternate_taken=True)
        assert perceptron.virtualizations > 0

    def test_correlated_weights_keep_their_bit(self):
        perceptron = make_perceptron(
            virtualization_age=4, virtualization_threshold=0
        )
        perceptron.install(ADDRESS)
        initial = perceptron._rows[perceptron.row_of(ADDRESS)]
        entry = next(e for e in initial if e is not None)
        mapping_before = list(entry.mapping)
        gpv = gpv_with_bits([1] * 16)
        for _ in range(8):
            lookup = perceptron.lookup(ADDRESS, gpv)
            perceptron.update(lookup, actual_taken=True, alternate_taken=True)
        # Weights grew strongly positive; no virtualisation happened.
        assert entry.mapping == mapping_before


class TestReplacement:
    def test_protection_prevents_early_replacement(self):
        perceptron = make_perceptron(rows=1, ways=1, protection_limit=2)
        perceptron.install(ADDRESS)
        assert not perceptron.install(0x7000)  # protection 2 -> denied
        assert not perceptron.install(0x7000)  # protection 1 -> denied
        assert perceptron.install(0x7000)  # protection 0 -> replaced
        assert perceptron.install_rejects == 2

    def test_least_useful_way_replaced(self):
        perceptron = make_perceptron(rows=1, ways=2, protection_limit=0)
        perceptron.install(0x1000)
        perceptron.install(0x2000)
        row = perceptron._rows[0]
        row[0].usefulness = 3
        row[1].usefulness = 1
        assert perceptron.install(0x3000)
        addresses = {entry.address for entry in row}
        assert addresses == {0x1000, 0x3000}

    def test_existing_address_not_reinstalled(self):
        perceptron = make_perceptron()
        assert perceptron.install(ADDRESS)
        assert not perceptron.install(ADDRESS)
