"""Tests for the TAGE PHT subsystem."""

import pytest

from repro.configs.predictor import PhtConfig
from repro.core.gpv import GlobalPathVector
from repro.core.tage import LONG, SHORT, TageLookupSnapshot, TagePht


def make_tage(**overrides):
    defaults = dict(tage=True, rows=64, ways=4, short_history=9, long_history=17)
    defaults.update(overrides)
    return TagePht(PhtConfig(**defaults))


def gpv_with(addresses):
    gpv = GlobalPathVector(depth=17)
    for address in addresses:
        gpv.record_taken(address)
    return gpv


ADDRESS = 0x4008
PATH = [0x100, 0x204, 0x308, 0x40C, 0x510]


class TestLookupAndInstall:
    def test_cold_lookup_misses(self):
        tage = make_tage()
        lookup = tage.lookup(ADDRESS, gpv_with(PATH))
        assert lookup.short_hit is None
        assert lookup.long_hit is None
        assert lookup.provider is None

    def test_install_then_hit(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        installed = tage.install_on_mispredict(
            ADDRESS, gpv.snapshot(), actual_taken=True, mispredicting_provider=None
        )
        assert installed in (SHORT, LONG)
        lookup = tage.lookup(ADDRESS, gpv)
        assert lookup.hit_for(installed) is not None

    def test_different_path_misses(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        tage.install_on_mispredict(ADDRESS, gpv.snapshot(), True, None)
        other = gpv_with([0x999 * 2, 0x555 * 2, 0x777 * 2])
        lookup = tage.lookup(ADDRESS, other)
        assert lookup.provider is None

    def test_short_mispredict_escalates_to_long(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        table = tage.install_on_mispredict(
            ADDRESS, gpv.snapshot(), True, mispredicting_provider=SHORT
        )
        assert table == LONG

    def test_long_mispredict_does_not_allocate(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        table = tage.install_on_mispredict(
            ADDRESS, gpv.snapshot(), True, mispredicting_provider=LONG
        )
        assert table is None

    def test_short_favoured_two_to_one(self):
        tage = make_tage()
        choices = []
        for index in range(30):
            gpv = gpv_with(PATH + [0x2000 + index * 2])
            table = tage.install_on_mispredict(
                0x8000 + index * 64, gpv.snapshot(), True, None
            )
            if table is not None:
                choices.append(table)
        shorts = choices.count(SHORT)
        longs = choices.count(LONG)
        assert shorts > longs
        assert longs > 0

    def test_single_table_mode(self):
        tage = make_tage(tage=False, short_history=9, long_history=9)
        assert tage.long_table is None
        gpv = gpv_with(PATH)
        table = tage.install_on_mispredict(ADDRESS, gpv.snapshot(), True, None)
        assert table == SHORT


class TestUsefulnessProtection:
    def _force_install(self, tage, address, gpv):
        return tage.install_on_mispredict(address, gpv.snapshot(), True, None)

    def test_useful_entry_not_displaced(self):
        tage = make_tage(rows=1, ways=1)  # single slot per table
        gpv = gpv_with(PATH)
        table_name = self._force_install(tage, ADDRESS, gpv)
        table = tage._table_by_name(table_name)
        lookup = tage.lookup(ADDRESS, gpv)
        hit = lookup.hit_for(table_name)
        hit.entry.usefulness.increment()
        # Installing a different branch on the same row must fail in this
        # table (usefulness nonzero) and decrement usefulness.
        before = hit.entry.usefulness.value
        table.install(0x5008, gpv.snapshot(), True)
        assert tage.lookup(ADDRESS, gpv).hit_for(table_name) is not None
        assert hit.entry.usefulness.value == before - 1

    def test_usefulness_zero_entry_displaced(self):
        tage = make_tage(rows=1, ways=1)
        gpv = gpv_with(PATH)
        name = self._force_install(tage, ADDRESS, gpv)
        table = tage._table_by_name(name)
        assert table.install(0x5008, gpv.snapshot(), True)


class TestUpdate:
    def _predict(self, tage, gpv):
        lookup = tage.lookup(ADDRESS, gpv)
        return lookup, TageLookupSnapshot.from_lookup(lookup)

    def test_counter_moves_toward_outcome(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        tage.install_on_mispredict(ADDRESS, gpv.snapshot(), True, None)
        lookup, snapshot = self._predict(tage, gpv)
        provider_hit = lookup.provider_hit
        before = provider_hit.entry.counter.value
        tage.update(snapshot, actual_taken=True, alternate_taken=None)
        assert provider_hit.entry.counter.value == before + 1

    def test_usefulness_up_when_beating_alternate(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        tage.install_on_mispredict(ADDRESS, gpv.snapshot(), True, None)
        lookup, snapshot = self._predict(tage, gpv)
        entry = lookup.provider_hit.entry
        assert entry.usefulness.value == 0
        # Provider says taken; alternate said not taken; outcome taken.
        tage.update(snapshot, actual_taken=True, alternate_taken=False)
        assert entry.usefulness.value == 1

    def test_usefulness_down_when_losing_to_alternate(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        tage.install_on_mispredict(ADDRESS, gpv.snapshot(), True, None)
        lookup, snapshot = self._predict(tage, gpv)
        entry = lookup.provider_hit.entry
        entry.usefulness.increment()
        tage.update(snapshot, actual_taken=False, alternate_taken=False)
        assert entry.usefulness.value == 0

    def test_usefulness_neutral_when_agreeing(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        tage.install_on_mispredict(ADDRESS, gpv.snapshot(), True, None)
        lookup, snapshot = self._predict(tage, gpv)
        entry = lookup.provider_hit.entry
        tage.update(snapshot, actual_taken=True, alternate_taken=True)
        assert entry.usefulness.value == 0


class TestWeakFiltering:
    def _weak_entry_setup(self):
        """Install an entry and leave it weak (fresh installs are weak)."""
        tage = make_tage()
        gpv = gpv_with(PATH)
        tage.install_on_mispredict(ADDRESS, gpv.snapshot(), True, None)
        return tage, gpv

    def test_weak_allowed_initially(self):
        tage, gpv = self._weak_entry_setup()
        lookup = tage.lookup(ADDRESS, gpv)
        assert lookup.provider is not None
        assert lookup.provider_weak

    def test_weak_suppressed_after_bad_weak_record(self):
        tage, gpv = self._weak_entry_setup()
        # Drive the weak-confidence counter for that table to zero.
        lookup = tage.lookup(ADDRESS, gpv)
        table = lookup.provider
        for _ in range(10):
            snapshot = TageLookupSnapshot.from_lookup(lookup)
            # Weak prediction says taken; outcome not-taken: confidence--.
            tage.update(snapshot, actual_taken=False, alternate_taken=None)
            # Re-prime the entry back to a weak-taken state so it stays weak.
            hit = lookup.hit_for(table)
            midpoint = (hit.entry.counter.maximum + 1) // 2
            hit.entry.counter.value = midpoint
        assert not tage.weak_allowed(table)
        suppressed = tage.lookup(ADDRESS, gpv)
        assert suppressed.provider is None
        assert suppressed.weak_filtered

    def test_strong_predictions_never_filtered(self):
        tage, gpv = self._weak_entry_setup()
        lookup = tage.lookup(ADDRESS, gpv)
        table = lookup.provider
        hit = lookup.hit_for(table)
        hit.entry.counter.value = hit.entry.counter.maximum  # strong taken
        tage._weak_confidence[table].value = 0  # filtering active
        strong_lookup = tage.lookup(ADDRESS, gpv)
        assert strong_lookup.provider == table
        assert not strong_lookup.provider_weak

    def test_weak_long_defers_to_strong_short(self):
        tage = make_tage()
        gpv = gpv_with(PATH)
        # Install into both tables.
        tage.short_table.install(ADDRESS, gpv.snapshot(), True)
        tage.long_table.install(ADDRESS, gpv.snapshot(), False)
        short_hit = tage.short_table.lookup(ADDRESS, gpv.snapshot())
        short_hit.entry.counter.value = short_hit.entry.counter.maximum
        lookup = tage.lookup(ADDRESS, gpv)
        assert lookup.provider == SHORT
        assert lookup.provider_taken is True
