"""Tests for the column predictor (CPRED)."""

from repro.configs.predictor import CpredConfig
from repro.core.cpred import (
    POWER_ALL,
    POWER_CTB,
    POWER_PERCEPTRON,
    POWER_PHT,
    ColumnPredictor,
)


def make_cpred(enabled=True, rows=16, ways=2):
    return ColumnPredictor(CpredConfig(enabled=enabled, rows=rows, ways=ways))


STREAM = 0x4000


def test_cold_miss():
    cpred = make_cpred()
    assert not cpred.lookup(STREAM, 0).hit


def test_train_then_hit():
    cpred = make_cpred()
    cpred.train(STREAM, 0, searches_to_taken=3, way=5,
                redirect_address=0x9000, power_mask=POWER_PHT)
    lookup = cpred.lookup(STREAM, 0)
    assert lookup.hit
    assert lookup.searches_to_taken == 3
    assert lookup.way == 5
    assert lookup.redirect_address == 0x9000
    assert lookup.power_mask == POWER_PHT


def test_context_mismatch_misses():
    cpred = make_cpred()
    cpred.train(STREAM, 0, 3, 5, 0x9000, POWER_ALL)
    assert not cpred.lookup(STREAM, 7).hit


def test_resolve_scores_correctness():
    cpred = make_cpred()
    cpred.train(STREAM, 0, 3, 5, 0x9000, POWER_ALL)
    lookup = cpred.lookup(STREAM, 0)
    assert cpred.resolve(lookup, actual_way=5, actual_redirect=0x9000)
    assert not cpred.resolve(lookup, actual_way=5, actual_redirect=0x9040)
    assert not cpred.resolve(lookup, actual_way=2, actual_redirect=0x9000)
    assert cpred.correct == 1
    assert cpred.wrong == 2


def test_resolve_on_miss_is_false():
    cpred = make_cpred()
    assert not cpred.resolve(cpred.lookup(STREAM, 0), 1, 0x9000)


def test_retrain_updates_entry():
    cpred = make_cpred()
    cpred.train(STREAM, 0, 3, 5, 0x9000, POWER_ALL)
    cpred.train(STREAM, 0, 1, 2, 0x7000, POWER_CTB)
    lookup = cpred.lookup(STREAM, 0)
    assert lookup.searches_to_taken == 1
    assert lookup.way == 2
    assert cpred.occupancy == 1


def test_power_gating_without_hit_allows_all():
    cpred = make_cpred()
    lookup = cpred.lookup(STREAM, 0)
    assert cpred.allows_power(lookup, POWER_PHT)
    assert cpred.allows_power(lookup, POWER_PERCEPTRON)
    assert cpred.allows_power(lookup, POWER_CTB)


def test_power_gating_with_hit_masks():
    cpred = make_cpred()
    cpred.train(STREAM, 0, 3, 5, 0x9000, POWER_PHT)
    lookup = cpred.lookup(STREAM, 0)
    assert cpred.allows_power(lookup, POWER_PHT)
    assert not cpred.allows_power(lookup, POWER_PERCEPTRON)
    assert not cpred.allows_power(lookup, POWER_CTB)
    assert cpred.power_gated_lookups == 2


def test_disabled_is_inert():
    cpred = make_cpred(enabled=False)
    cpred.train(STREAM, 0, 3, 5, 0x9000, POWER_ALL)
    lookup = cpred.lookup(STREAM, 0)
    assert not lookup.hit
    assert cpred.allows_power(lookup, POWER_PHT)
    assert cpred.trains == 0
