"""Tests for the global prediction queue and prediction records."""

import pytest

from repro.core.gpq import GlobalPredictionQueue, PredictionRecord
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.instructions import BranchKind


def make_record(sequence, taken=True, target=0x2000):
    return PredictionRecord(
        sequence=sequence,
        address=0x1000,
        context=0,
        thread=0,
        kind=BranchKind.CONDITIONAL_RELATIVE,
        length=4,
        dynamic=True,
        predicted_taken=taken,
        predicted_target=target if taken else None,
        direction_provider=DirectionProvider.BHT,
        target_provider=TargetProvider.BTB1 if taken else TargetProvider.NONE,
    )


class TestPredictionRecord:
    def test_unresolved_flags(self):
        record = make_record(0)
        assert not record.resolved
        assert not record.direction_wrong
        assert not record.target_wrong
        assert not record.mispredicted

    def test_direction_wrong(self):
        record = make_record(0, taken=True)
        record.resolve(actual_taken=False, actual_target=None)
        assert record.direction_wrong
        assert not record.target_wrong
        assert record.mispredicted

    def test_target_wrong_requires_agreed_taken(self):
        record = make_record(0, taken=True, target=0x2000)
        record.resolve(actual_taken=True, actual_target=0x3000)
        assert not record.direction_wrong
        assert record.target_wrong

    def test_correct_taken(self):
        record = make_record(0, taken=True, target=0x2000)
        record.resolve(actual_taken=True, actual_target=0x2000)
        assert not record.mispredicted

    def test_not_taken_never_target_wrong(self):
        record = make_record(0, taken=False)
        record.resolve(actual_taken=False, actual_target=None)
        assert not record.mispredicted

    def test_next_sequential(self):
        assert make_record(0).next_sequential == 0x1004


class TestGlobalPredictionQueue:
    def test_completions_in_order(self):
        gpq = GlobalPredictionQueue(capacity=8)
        for sequence in range(4):
            gpq.push(make_record(sequence))
        due = gpq.completions_due(completed_sequence=1)
        assert [record.sequence for record in due] == [0, 1]
        assert len(gpq) == 2

    def test_nothing_due(self):
        gpq = GlobalPredictionQueue(capacity=8)
        gpq.push(make_record(5))
        assert gpq.completions_due(completed_sequence=4) == []

    def test_full_queue_forces_oldest(self):
        gpq = GlobalPredictionQueue(capacity=2)
        assert gpq.push(make_record(0)) is None
        assert gpq.push(make_record(1)) is None
        forced = gpq.push(make_record(2))
        assert forced is not None and forced.sequence == 0
        assert gpq.forced_completions == 1

    def test_drain(self):
        gpq = GlobalPredictionQueue(capacity=8)
        for sequence in range(3):
            gpq.push(make_record(sequence))
        drained = gpq.drain()
        assert [record.sequence for record in drained] == [0, 1, 2]
        assert len(gpq) == 0

    def test_flush_discards(self):
        gpq = GlobalPredictionQueue(capacity=8)
        gpq.push(make_record(0))
        gpq.flush()
        assert gpq.drain() == []
