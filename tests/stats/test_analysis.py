"""Tests for the per-branch misprediction profile."""

import pytest

from repro.core.gpq import PredictionRecord
from repro.core.predictor import PredictionOutcome, SearchTrace
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.instructions import BranchKind
from repro.stats.analysis import MispredictProfile


def outcome(address, mispredicted):
    record = PredictionRecord(
        sequence=0, address=address, context=0, thread=0,
        kind=BranchKind.CONDITIONAL_RELATIVE, length=4, dynamic=True,
        predicted_taken=True, predicted_target=0x2000,
        direction_provider=DirectionProvider.BHT,
        target_provider=TargetProvider.BTB1,
    )
    if mispredicted:
        record.resolve(False, None)
    else:
        record.resolve(True, 0x2000)
    return PredictionOutcome(record=record, trace=SearchTrace())


def build_profile(spec):
    """spec: {address: (executions, mispredicts)}"""
    profile = MispredictProfile()
    for address, (executions, mispredicts) in spec.items():
        for index in range(executions):
            profile.record(outcome(address, index < mispredicts))
    return profile


def test_counting():
    profile = build_profile({0x100: (10, 3), 0x200: (5, 0)})
    assert profile.total_branches == 15
    assert profile.total_mispredicts == 3
    assert profile.distinct_addresses == 2
    assert profile.mispredicting_addresses == 1


def test_top_ordering():
    profile = build_profile({0x100: (10, 2), 0x200: (10, 7), 0x300: (10, 4)})
    top = profile.top(2)
    assert [hot.address for hot in top] == [0x200, 0x300]
    assert top[0].mispredicts == 7
    assert top[0].executions == 10
    assert top[0].mispredict_rate == pytest.approx(0.7)


def test_concentration():
    # 10 addresses; one causes 90 of 99 mispredicts.
    spec = {0x1000 + i * 4: (100, 1) for i in range(9)}
    spec[0x2000] = (100, 90)
    profile = build_profile(spec)
    assert profile.concentration(0.1) == pytest.approx(90 / 99)
    assert profile.concentration(1.0) == pytest.approx(1.0)


def test_concentration_bounds():
    profile = build_profile({0x100: (5, 1)})
    with pytest.raises(ValueError):
        profile.concentration(0.0)
    with pytest.raises(ValueError):
        profile.concentration(1.5)


def test_concentration_empty():
    assert MispredictProfile().concentration(0.5) == 0.0


def test_concentration_monotone():
    spec = {0x1000 + i * 4: (50, i) for i in range(10)}
    profile = build_profile(spec)
    curve = profile.concentration_curve((0.1, 0.25, 0.5, 1.0))
    shares = [share for _, share in curve]
    assert shares == sorted(shares)


def test_report_renders():
    profile = build_profile({0x100: (10, 3)})
    text = profile.report("unit")
    assert "concentration" in text
    assert "0x00000100" in text
