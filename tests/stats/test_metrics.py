"""Tests for statistics and mispredict classification."""

import pytest

from repro.core.gpq import PredictionRecord
from repro.core.predictor import PredictionOutcome, SearchTrace
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.instructions import BranchKind
from repro.stats.metrics import (
    MISPREDICT_CLASSES,
    MispredictClass,
    RunStats,
    classify,
)


def outcome(dynamic=True, predicted_taken=True, predicted_target=0x2000,
            actual_taken=True, actual_target=0x2000,
            provider=DirectionProvider.BHT, kind=BranchKind.CONDITIONAL_RELATIVE,
            trace=None):
    record = PredictionRecord(
        sequence=0, address=0x1000, context=0, thread=0, kind=kind, length=4,
        dynamic=dynamic, predicted_taken=predicted_taken,
        predicted_target=predicted_target if predicted_taken else None,
        direction_provider=provider,
        target_provider=TargetProvider.BTB1 if predicted_taken else TargetProvider.NONE,
    )
    record.resolve(actual_taken, actual_target if actual_taken else None)
    return PredictionOutcome(record=record, trace=trace or SearchTrace())


class TestClassification:
    def test_correct_dynamic(self):
        assert classify(outcome()) is MispredictClass.NONE

    def test_direction_wrong(self):
        assert classify(outcome(actual_taken=False)) is \
            MispredictClass.DIRECTION_WRONG

    def test_target_wrong(self):
        assert classify(outcome(actual_target=0x3000)) is \
            MispredictClass.TARGET_WRONG

    def test_surprise_taken(self):
        result = classify(outcome(dynamic=False, predicted_taken=False,
                                  actual_taken=True))
        assert result is MispredictClass.SURPRISE_TAKEN

    def test_surprise_correct_not_taken(self):
        result = classify(outcome(dynamic=False, predicted_taken=False,
                                  actual_taken=False))
        assert result is MispredictClass.NONE

    def test_surprise_guessed_taken_relative(self):
        result = classify(outcome(dynamic=False, predicted_taken=True,
                                  predicted_target=0x2000, actual_taken=True,
                                  provider=DirectionProvider.STATIC))
        assert result is MispredictClass.SURPRISE_GUESSED_TAKEN_RELATIVE

    def test_surprise_guessed_taken_indirect(self):
        record = PredictionRecord(
            sequence=0, address=0x1000, context=0, thread=0,
            kind=BranchKind.UNCONDITIONAL_INDIRECT, length=4, dynamic=False,
            predicted_taken=True, predicted_target=None,
            direction_provider=DirectionProvider.STATIC,
            target_provider=TargetProvider.NONE,
        )
        record.resolve(True, 0x2000)
        result = classify(PredictionOutcome(record=record, trace=SearchTrace()))
        assert result is MispredictClass.SURPRISE_GUESSED_TAKEN_INDIRECT

    def test_surprise_guess_wrong(self):
        result = classify(outcome(dynamic=False, predicted_taken=True,
                                  actual_taken=False))
        assert result is MispredictClass.SURPRISE_GUESS_WRONG

    def test_mpki_membership(self):
        assert MispredictClass.DIRECTION_WRONG in MISPREDICT_CLASSES
        assert MispredictClass.SURPRISE_GUESSED_TAKEN_RELATIVE not in \
            MISPREDICT_CLASSES
        assert MispredictClass.NONE not in MISPREDICT_CLASSES


class TestRunStats:
    def test_mpki_computation(self):
        stats = RunStats()
        stats.record(outcome(actual_taken=False))  # direction wrong
        stats.record(outcome())
        stats.instructions = 1000
        assert stats.mpki == pytest.approx(1.0)
        assert stats.branch_mpki == pytest.approx(500.0)

    def test_zero_division_guards(self):
        stats = RunStats()
        assert stats.mpki == 0.0
        assert stats.direction_accuracy == 0.0
        assert stats.dynamic_coverage == 0.0

    def test_provider_breakdown(self):
        stats = RunStats()
        stats.record(outcome(provider=DirectionProvider.PHT_LONG))
        stats.record(outcome(provider=DirectionProvider.PHT_LONG,
                             actual_taken=False))
        stats.record(outcome(provider=DirectionProvider.BHT))
        assert stats.provider_share(DirectionProvider.PHT_LONG) == \
            pytest.approx(2 / 3)
        assert stats.provider_accuracy(DirectionProvider.PHT_LONG) == \
            pytest.approx(0.5)
        assert stats.provider_accuracy(DirectionProvider.PERCEPTRON) is None

    def test_target_provider_tracking(self):
        stats = RunStats()
        stats.record(outcome())  # BTB1 target, correct
        stats.record(outcome(actual_target=0x3000))  # BTB1 target, wrong
        assert stats.target_provider_accuracy(TargetProvider.BTB1) == \
            pytest.approx(0.5)

    def test_trace_aggregation(self):
        trace = SearchTrace(lines_searched=4, empty_searches=2,
                            lines_skipped_by_skoot=3, btb2_triggers=1,
                            bad_predictions_removed=1, skoot_overshoot=True,
                            cpred_accelerated=True)
        stats = RunStats()
        stats.record(outcome(trace=trace))
        assert stats.lines_searched == 4
        assert stats.empty_searches == 2
        assert stats.lines_skipped_by_skoot == 3
        assert stats.btb2_triggers == 1
        assert stats.skoot_overshoots == 1
        assert stats.cpred_accelerated_streams == 1

    def test_dynamic_coverage(self):
        stats = RunStats()
        stats.record(outcome(dynamic=True))
        stats.record(outcome(dynamic=False, predicted_taken=False,
                             actual_taken=False))
        assert stats.dynamic_coverage == pytest.approx(0.5)


class TestReportEdgeCases:
    def test_zero_branch_report_prints_na(self):
        report = RunStats().report("empty")
        assert "n/a" in report
        assert "branches:            0" in report
        # The undefined ratios never render as a misleading percentage.
        assert "0.00%" not in report

    def test_zero_instruction_report_prints_na_mpki(self):
        stats = RunStats()
        stats.record(outcome())
        report = stats.report("no instructions")
        assert stats.branches == 1 and stats.instructions == 0
        assert "MPKI:                     n/a" in report
        # Branch-denominated ratios are still defined and printed.
        assert "100.00%" in report

    def test_zero_mispredict_run_reports_cleanly(self):
        stats = RunStats()
        stats.record(outcome())
        stats.instructions = 40
        report = stats.report("clean")
        assert "mispredicts:         0" in report
        assert "n/a" not in report

    def test_degenerate_properties_never_raise(self):
        stats = RunStats()
        assert stats.mpki == 0.0
        assert stats.branch_mpki == 0.0
        assert stats.direction_accuracy == 0.0
        assert stats.dynamic_coverage == 0.0
