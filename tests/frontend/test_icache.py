"""Tests for the instruction-cache hierarchy."""

import pytest

from repro.common.errors import ConfigError
from repro.configs.timing import TimingConfig
from repro.frontend.icache import (
    CacheLevel,
    CacheLevelConfig,
    InstructionCacheHierarchy,
    z15_hierarchy_configs,
)


def tiny_hierarchy():
    return InstructionCacheHierarchy(
        levels=[
            CacheLevelConfig("L1I", 2048, line_size=128, associativity=2,
                             latency=4),
            CacheLevelConfig("L2I", 8192, line_size=128, associativity=2,
                             latency=12),
        ],
        memory_latency=100,
    )


class TestCacheLevel:
    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CacheLevel(CacheLevelConfig("bad", 1000, line_size=128,
                                        associativity=3))

    def test_miss_then_hit(self):
        level = CacheLevel(CacheLevelConfig("L1", 2048, line_size=128,
                                            associativity=2))
        assert not level.access(0x1000)
        level.fill(0x1000)
        assert level.access(0x1000)
        assert level.access(0x1040)  # same 128B line

    def test_lru_eviction(self):
        config = CacheLevelConfig("L1", 512, line_size=128, associativity=2)
        level = CacheLevel(config)  # 2 sets x 2 ways
        sets = config.sets
        stride = 128 * sets  # same set
        level.fill(0x0)
        level.fill(stride)
        level.fill(2 * stride)  # evicts 0x0
        assert not level.access(0x0)
        assert level.access(stride)

    def test_probe_does_not_count(self):
        level = CacheLevel(CacheLevelConfig("L1", 2048, line_size=128,
                                            associativity=2))
        level.probe(0x1000)
        assert level.accesses == 0


class TestHierarchy:
    def test_miss_goes_to_memory(self):
        hierarchy = tiny_hierarchy()
        result = hierarchy.access(0x1000)
        assert result.level == "memory"
        assert result.latency == 100

    def test_fill_propagates_inclusively(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0x1000)
        result = hierarchy.access(0x1000)
        assert result.level == "L1I"
        assert result.latency == 4

    def test_l2_hit_fills_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0x1000)
        # Evict from tiny L1 with conflicting lines, keep in larger L2.
        for address in range(0x10000, 0x10000 + 16 * 2048, 2048):
            hierarchy.access(address)
        result = hierarchy.access(0x1000)
        assert result.level in ("L2I", "memory")
        if result.level == "L2I":
            assert hierarchy.access(0x1000).level == "L1I"

    def test_prefetch_fills_toward_l1(self):
        hierarchy = tiny_hierarchy()
        fill = hierarchy.prefetch(0x2000)
        assert fill is not None and fill.level == "memory"
        assert hierarchy.access(0x2000).level == "L1I"

    def test_prefetch_of_resident_line_is_noop(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0x2000)
        assert hierarchy.prefetch(0x2000) is None
        assert hierarchy.useless_prefetch_filter == 1

    def test_level_stats(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0x1000)
        hierarchy.access(0x1000)
        stats = dict(
            (name, (accesses, hits))
            for name, accesses, hits in hierarchy.level_stats()
        )
        assert stats["L1I"] == (2, 1)


class TestZ15Configs:
    def test_latencies_match_paper(self):
        timing = TimingConfig()
        configs = z15_hierarchy_configs(timing=timing)
        by_name = {config.name: config for config in configs}
        assert by_name["L2I"].latency - by_name["L1I"].latency == 8
        assert by_name["L3"].latency - by_name["L1I"].latency == 45

    def test_z15_sizes(self):
        configs = z15_hierarchy_configs(l1i_kib=128, l2i_kib=4096)
        by_name = {config.name: config for config in configs}
        assert by_name["L1I"].size_bytes == 128 * 1024
        assert by_name["L2I"].size_bytes == 4 * 1024 * 1024
