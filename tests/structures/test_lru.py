"""Tests for replacement policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.lru import PseudoLruTree, TrueLru


class TestTrueLru:
    def test_initial_victim_is_way_zero(self):
        assert TrueLru(4).victim() == 0

    def test_touch_moves_to_back(self):
        lru = TrueLru(4)
        lru.touch(0)
        assert lru.victim() == 1

    def test_full_ordering(self):
        lru = TrueLru(4)
        for way in (2, 0, 3, 1):
            lru.touch(way)
        assert lru.recency_order() == [2, 0, 3, 1]
        assert lru.victim() == 2

    def test_touch_out_of_range(self):
        with pytest.raises(ValueError):
            TrueLru(4).touch(4)

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40))
    def test_victim_is_never_most_recent(self, touches):
        lru = TrueLru(8)
        for way in touches:
            lru.touch(way)
        assert lru.victim() != touches[-1]


class TestPseudoLruTree:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PseudoLruTree(6)

    def test_two_way_behaves_like_lru(self):
        plru = PseudoLruTree(2)
        plru.touch(0)
        assert plru.victim() == 1
        plru.touch(1)
        assert plru.victim() == 0

    def test_recent_touch_is_protected(self):
        plru = PseudoLruTree(8)
        for way in range(8):
            plru.touch(way)
        # Most recently touched way is never the victim.
        assert plru.victim() != 7

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    def test_victim_never_most_recent(self, touches):
        plru = PseudoLruTree(8)
        for way in touches:
            plru.touch(way)
        assert plru.victim() != touches[-1]

    @given(st.integers(min_value=1, max_value=4))
    def test_round_robin_touch_cycles_victims(self, log_ways):
        ways = 2**log_ways
        plru = PseudoLruTree(ways)
        seen = set()
        for _ in range(ways):
            victim = plru.victim()
            seen.add(victim)
            plru.touch(victim)
        # Touching each victim in turn must visit every way exactly once.
        assert seen == set(range(ways))
