"""Unit tests for the array-backed structures in ``repro.structures.arrays``.

Two obligations per structure: *twin equivalence* — driven with the same
operation stream as its object twin it must make identical decisions and
count identical statistics — and the *resilience contract* — ``corrupt()``
keeps every field legal-but-wrong (and keeps the probe mirror coherent),
``audit()`` proves the mirror, and the returned recovery action repairs
both views.

The :class:`PackedLanes` dual view gets its own battery: the SWAR
comparator over the packed-int view and the C-scanned tag-array view
must always name the same ways, and ``view_violations`` must catch any
seeded desynchronisation.
"""

import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configs.predictor import (
    Btb1Config,
    Btb2Config,
    PerceptronConfig,
    PhtConfig,
)
from repro.core.btb1 import Btb1
from repro.core.btb2 import Btb2System
from repro.core.entries import BtbEntry
from repro.core.gpv import GlobalPathVector
from repro.core.perceptron import Perceptron
from repro.core.tage import TagePht
from repro.isa.instructions import BranchKind
from repro.structures.arrays import (
    ArrayBtb1,
    ArrayBtb2,
    ArrayPerceptron,
    ArrayTagePht,
    PackedLanes,
    _ArrayTageTable,
)

SEED = 20260808


def _btb1_config():
    return Btb1Config(rows=16, ways=4, tag_bits=6, policy="lru")


def _btb2_config():
    return Btb2Config(
        rows=64, ways=2, tag_bits=6, policy="lru",
        transfer_lines=4, staging_capacity=8,
    )


def _pht_config():
    return PhtConfig(rows=32, ways=2, tag_bits=6)


def _perceptron_config():
    return PerceptronConfig(rows=4, ways=2, weight_count=8,
                            virtualization_age=4)


def _entry(kind=BranchKind.CONDITIONAL_RELATIVE, target=0x500):
    # install() overwrites tag/offset from the install address.
    return BtbEntry(tag=0, offset=0, length=4, kind=kind, target=target)


# ======================================================================
# PackedLanes
# ======================================================================


def _mask_to_ways(lanes, mask):
    """Decode the SWAR guard-position bitmask into way indices."""
    return [
        way for way in range(lanes.ways)
        if mask >> (way * lanes.lane_bits + lanes.tag_bits) & 1
    ]


class TestPackedLanes:
    def test_set_then_match(self):
        lanes = PackedLanes(rows=4, ways=4, tag_bits=6)
        lanes.set(1, 0, 0x2A)
        lanes.set(1, 2, 0x15)
        assert _mask_to_ways(lanes, lanes.match(1, 0x2A)) == [0]
        assert _mask_to_ways(lanes, lanes.match(1, 0x15)) == [2]
        assert lanes.match(1, 0x3F) == 0
        assert lanes.match(0, 0x2A) == 0  # other rows untouched
        assert lanes.match_ways(1, 0x2A) == [0]
        assert lanes.way_tag(1, 2) == 0x15
        assert lanes.is_valid(1, 0) and not lanes.is_valid(1, 1)
        assert lanes.valid_count() == 2

    def test_duplicate_tags_match_every_way_in_order(self):
        lanes = PackedLanes(rows=2, ways=4, tag_bits=6)
        for way in (3, 0, 2):
            lanes.set(0, way, 0x11)
        assert lanes.match_ways(0, 0x11) == [0, 2, 3]
        assert _mask_to_ways(lanes, lanes.match(0, 0x11)) == [0, 2, 3]

    def test_zero_tag_matches_only_valid_ways(self):
        # Tag 0 is a legal fold value; empty lanes must not alias it.
        lanes = PackedLanes(rows=2, ways=4, tag_bits=6)
        assert lanes.match(0, 0) == 0
        assert lanes.match_ways(0, 0) == []
        lanes.set(0, 1, 0)
        assert lanes.match_ways(0, 0) == [1]
        assert _mask_to_ways(lanes, lanes.match(0, 0)) == [1]

    def test_clear_way_and_clear_all(self):
        lanes = PackedLanes(rows=2, ways=2, tag_bits=6)
        lanes.set(0, 0, 5)
        lanes.set(1, 1, 9)
        lanes.clear_way(0, 0)
        assert lanes.match(0, 5) == 0
        assert lanes.match_ways(0, 5) == []
        assert lanes.valid_count() == 1
        lanes.clear_all()
        assert lanes.valid_count() == 0
        assert lanes.match(1, 9) == 0
        assert lanes.view_violations("t") == []

    def test_overwrite_replaces_lane(self):
        lanes = PackedLanes(rows=1, ways=2, tag_bits=6)
        lanes.set(0, 0, 0x3F)
        lanes.set(0, 0, 0x01)
        assert lanes.match_ways(0, 0x3F) == []
        assert lanes.match_ways(0, 0x01) == [0]
        assert lanes.view_violations("t") == []

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_views_always_agree(self, data):
        """Property: after any op sequence, the SWAR comparator, the tag
        scan and a brute-force reference all name the same ways."""
        rows, ways, tag_bits = 4, 3, 5
        lanes = PackedLanes(rows=rows, ways=ways, tag_bits=tag_bits)
        reference = [[None] * ways for _ in range(rows)]
        ops = data.draw(st.lists(st.tuples(
            st.sampled_from(["set", "clear"]),
            st.integers(0, rows - 1),
            st.integers(0, ways - 1),
            st.integers(0, (1 << tag_bits) - 1),
        ), max_size=40))
        for op, row, way, tag in ops:
            if op == "set":
                lanes.set(row, way, tag)
                reference[row][way] = tag
            else:
                lanes.clear_way(row, way)
                reference[row][way] = None
        assert lanes.view_violations("prop") == []
        for row in range(rows):
            for tag in {t for t in reference[row] if t is not None} | {0}:
                expected = [
                    way for way in range(ways) if reference[row][way] == tag
                ]
                assert lanes.match_ways(row, tag) == expected
                assert _mask_to_ways(lanes, lanes.match(row, tag)) == expected
        assert lanes.valid_count() == sum(
            tag is not None for row in reference for tag in row
        )

    def test_view_violations_catches_desync(self):
        lanes = PackedLanes(rows=2, ways=2, tag_bits=6)
        lanes.set(0, 0, 7)
        # Seed all three desync shapes directly into the views.
        lanes.tags[0][0] = 9                     # packed tag != tag view
        lanes.tags[1][1] = 3                     # tag view valid, packed not
        lanes.valid[1] |= 1 << (0 * lanes.lane_bits + lanes.tag_bits)
        violations = lanes.view_violations("x")
        assert len(violations) == 3
        assert any("packed tag" in v for v in violations)
        assert any("empty in tag view" in v for v in violations)
        assert any("not in packed view" in v for v in violations)


# ======================================================================
# ArrayBtb1 vs Btb1
# ======================================================================


def _drive_btb1_pair(ops):
    """Run the same op stream through both BTB1s, collecting decisions."""
    object_btb = Btb1(_btb1_config())
    array_btb = ArrayBtb1(_btb1_config())
    trace = {id(object_btb): [], id(array_btb): []}
    for btb in (object_btb, array_btb):
        out = trace[id(btb)]
        for op, address, context, extra in ops:
            if op == "install":
                result = btb.install(address, context, _entry(target=extra))
                out.append(("install", result.installed, result.duplicate,
                            result.row, result.way,
                            result.victim is not None))
            elif op == "search":
                hits = btb.search_line(address, context, min_offset=extra)
                out.append(("search", [
                    (h.row, h.way, h.entry.tag, h.entry.offset) for h in hits
                ]))
            elif op == "lookup":
                hit = btb.lookup(address, context)
                out.append(
                    ("lookup", None if hit is None else (hit.row, hit.way))
                )
            elif op == "remove":
                hits = btb.search_line(address, context)
                if hits:
                    out.append(("remove", btb.remove(hits[0])))
            elif op == "invalidate":
                btb.invalidate_entry(address % btb.config.rows,
                                     extra % btb.config.ways)
            elif op == "clear":
                btb.clear()
    return object_btb, array_btb, trace[id(object_btb)], trace[id(array_btb)]


def _random_btb1_ops(seed, count=400):
    rng = random.Random(seed)
    ops = []
    for _ in range(count):
        op = rng.choice(
            ["install"] * 4 + ["search"] * 4
            + ["lookup", "remove", "invalidate", "clear"]
        )
        # A handful of lines so rows collide and tags alias across
        # contexts — the eviction/duplicate paths all get exercised.
        address = rng.randrange(0, 64) * 64 + rng.randrange(0, 32) * 2
        context = rng.choice([0, 1, 7])
        extra = rng.randrange(0, 64) if op != "install" else rng.randrange(
            0x1000, 0x9000, 2
        )
        if op == "clear" and rng.random() < 0.9:
            op = "search"  # keep clears rare so state accumulates
        ops.append((op, address, context, extra))
    return ops


class TestArrayBtb1:
    def test_twin_equivalence_randomized(self):
        ops = _random_btb1_ops(SEED)
        object_btb, array_btb, object_trace, array_trace = (
            _drive_btb1_pair(ops)
        )
        assert object_trace == array_trace
        for counter in ("searches", "hit_searches", "installs",
                        "duplicate_rejects", "evictions", "removals"):
            assert getattr(object_btb, counter) == getattr(
                array_btb, counter
            ), counter
        assert array_btb.audit() == []
        assert array_btb._lanes.view_violations("btb1") == []

    def test_min_offset_filtering_matches(self):
        object_btb, array_btb, object_trace, array_trace = _drive_btb1_pair([
            ("install", 0x1000, 0, 0x2000),
            ("install", 0x1008, 0, 0x2008),
            ("install", 0x1020, 0, 0x2020),
            ("search", 0x1000, 0, 0x10),   # drops the offset-0/8 entries
            ("search", 0x1000, 0, 0x22),   # drops everything
        ])
        assert object_trace == array_trace
        # The offset filter ran: the last search found nothing.
        assert array_trace[-1] == ("search", [])

    def test_audit_catches_each_mirror_desync(self):
        array_btb = ArrayBtb1(_btb1_config())
        result = array_btb.install(0x1004, 0, _entry())
        assert array_btb.audit() == []
        # Mirror lost a live entry.
        array_btb._lanes.clear_way(result.row, result.way)
        assert any("missing from mirror" in v for v in array_btb.audit())
        array_btb._lanes.set(result.row, result.way, 0x3F)
        assert any("mirror tag" in v for v in array_btb.audit())
        # Stale mirror lane with no entry behind it.
        array_btb._resync_row(result.row)
        array_btb._lanes.set(result.row, result.way + 1, 0x01)
        assert any("no entry" in v for v in array_btb.audit())


# ======================================================================
# ArrayBtb2 vs Btb2System
# ======================================================================


def _btb2_pair():
    object_system = Btb2System(_btb2_config(), Btb1(_btb1_config()))
    array_system = ArrayBtb2(_btb2_config(), ArrayBtb1(_btb1_config()))
    return object_system, array_system


class TestArrayBtb2:
    def test_twin_equivalence_randomized(self):
        object_system, array_system = _btb2_pair()
        rng_state = random.Random(SEED)
        ops = []
        for _ in range(300):
            op = rng_state.choice(
                ["snapshot"] * 3 + ["search"] * 3 + ["drain", "invalidate"]
            )
            address = rng_state.randrange(0, 256) * 64 + (
                rng_state.randrange(0, 32) * 2
            )
            ops.append((op, address, rng_state.choice([0, 1])))
        traces = []
        for system in (object_system, array_system):
            out = []
            for op, address, context in ops:
                if op == "snapshot":
                    system.install_snapshot(address, context,
                                            _entry(target=address + 64))
                elif op == "search":
                    out.append(("search", system.search(address, context)))
                elif op == "drain":
                    out.append(("drain", system.drain_staging(limit=4)))
                else:
                    system.invalidate_entry(
                        address % system.config.rows, context
                    )
            traces.append(out)
        assert traces[0] == traces[1]
        for counter in ("searches", "transfers_found", "transfers_staged",
                        "staging_overflows", "writebacks"):
            assert getattr(object_system, counter, None) == getattr(
                array_system, counter, None
            ), counter
        assert object_system.occupancy == array_system.occupancy
        assert len(object_system.staging) == len(array_system.staging)
        assert array_system.audit() == []
        assert array_system._lanes.view_violations("btb2") == []

    def test_search_sweeps_and_stages_identically(self):
        object_system, array_system = _btb2_pair()
        lines = [0x8000 + i * 64 for i in range(4)]
        for system in (object_system, array_system):
            for line in lines:
                system.install_snapshot(line + 4, 0, _entry(target=line))
            staged = system.search(0x8000, 0)
            assert staged == len(lines)
        assert (
            object_system.transfers_found == array_system.transfers_found
        )

    def test_empty_rows_stage_nothing(self):
        _object_system, array_system = _btb2_pair()
        assert array_system.search(0x4000, 0) == 0
        assert array_system.transfers_found == 0


# ======================================================================
# ArrayTagePht vs TagePht
# ======================================================================


def _tage_lookup_key(lookup):
    return [
        None if hit is None else (hit.table, hit.row, hit.way, hit.tag,
                                  hit.taken, hit.weak)
        for hit in (lookup.hit_for("short"), lookup.hit_for("long"))
    ] + [lookup.provider]


class TestArrayTagePht:
    def test_uses_array_tables(self):
        pht = ArrayTagePht(_pht_config())
        assert ArrayTagePht.table_class is _ArrayTageTable
        assert isinstance(pht.short_table, _ArrayTageTable)
        assert isinstance(pht.long_table, _ArrayTageTable)

    def test_twin_equivalence_randomized(self):
        object_pht = TagePht(_pht_config())
        array_pht = ArrayTagePht(_pht_config())
        rng_state = random.Random(SEED)
        stimulus = []
        for _ in range(500):
            stimulus.append((
                rng_state.randrange(0x1000, 0x1100, 2),
                rng_state.random() < 0.6,
                rng_state.choice(["short", "long", None]),
            ))
        traces = []
        for pht in (object_pht, array_pht):
            gpv = GlobalPathVector(depth=17, bits_per_branch=2)
            out = []
            for address, taken, provider_hint in stimulus:
                lookup = pht.lookup(address, gpv)
                out.append(_tage_lookup_key(lookup))
                if lookup.provider is None:
                    out.append(pht.install_on_mispredict(
                        address, gpv.snapshot(), taken, provider_hint
                    ))
                if taken:
                    gpv.record_taken(address)
            traces.append(out)
        assert traces[0] == traces[1]
        assert (
            object_pht.component_counters()
            == array_pht.component_counters()
        )
        assert array_pht.audit() == []
        for table in (array_pht.short_table, array_pht.long_table):
            assert table._lanes.view_violations(table.name) == []

    def test_single_table_generation_shape(self):
        # tage=False models the z196..z14 single tagged PHT.
        config = _pht_config()
        config.tage = False
        pht = ArrayTagePht(config)
        assert pht.long_table is None
        assert isinstance(pht.short_table, _ArrayTageTable)
        gpv = GlobalPathVector(depth=9, bits_per_branch=2)
        pht.install_on_mispredict(0x2000, gpv.snapshot(), True, None)
        assert pht.lookup(0x2000, gpv).provider is not None
        assert pht.audit() == []


# ======================================================================
# ArrayPerceptron vs Perceptron
# ======================================================================

GPV_WIDTH = 16


def _perceptron_pair():
    return (
        Perceptron(_perceptron_config(), GPV_WIDTH),
        ArrayPerceptron(_perceptron_config(), GPV_WIDTH),
    )


def _lookup_key(lookup):
    return (lookup.hit, lookup.row, lookup.way, lookup.address,
            lookup.taken, lookup.useful)


class TestArrayPerceptron:
    def test_twin_equivalence_fused_predict_train(self):
        object_perceptron, array_perceptron = _perceptron_pair()
        rng_state = random.Random(SEED)
        addresses = [0x3000 + i * 2 for i in range(12)]
        stimulus = []
        for _ in range(600):
            stimulus.append((
                rng_state.choice(addresses),
                rng_state.random() < 0.5,
                rng_state.choice([True, False, None]),
                rng_state.random() < 0.2,
            ))
        traces = []
        for predictor in (object_perceptron, array_perceptron):
            gpv = GlobalPathVector(depth=GPV_WIDTH // 2, bits_per_branch=2)
            out = []
            for address, taken, alternate, install in stimulus:
                if install:
                    out.append(predictor.install(address))
                lookup = predictor.lookup(address, gpv)
                out.append(_lookup_key(lookup))
                predictor.update(lookup, taken, alternate)
                if taken:
                    gpv.record_taken(address)
            traces.append(out)
        assert traces[0] == traces[1]
        assert object_perceptron.occupancy == array_perceptron.occupancy
        for counter in ("lookups", "hits", "provider_hits", "installs",
                        "install_rejects", "virtualizations"):
            assert getattr(object_perceptron, counter) == getattr(
                array_perceptron, counter
            ), counter
        # The learned state itself must agree slot for slot.
        ways = array_perceptron.config.ways
        count = array_perceptron._weight_count
        array_slots = {}
        for slot in range(array_perceptron._slots):
            if array_perceptron._valid[slot]:
                start = slot * count
                array_slots[array_perceptron._addresses[slot]] = (
                    array_perceptron._weights[start:start + count],
                    array_perceptron._mapping[start:start + count],
                    array_perceptron._slot_usefulness[slot],
                )
        object_slots = {}
        for row in object_perceptron._rows:
            for entry in row:
                if entry is not None:
                    object_slots[entry.address] = (
                        list(entry.weights), list(entry.mapping),
                        entry.usefulness,
                    )
        assert array_slots == object_slots
        assert array_perceptron.audit() == []

    def test_replacement_protection_matches(self):
        object_perceptron, array_perceptron = _perceptron_pair()
        # Overfill one row: same row for aliasing addresses, identical
        # accept/reject decisions including the protection count-down.
        row = object_perceptron.row_of(0x1000)
        aliases = [
            address for address in range(0x1000, 0x8000, 2)
            if object_perceptron.row_of(address) == row
        ][:6]
        decisions = [
            [predictor.install(address) for address in aliases for _ in (0, 1)]
            for predictor in (object_perceptron, array_perceptron)
        ]
        assert decisions[0] == decisions[1]
        assert (
            object_perceptron.install_rejects
            == array_perceptron.install_rejects
        )

    def test_numpy_views_shape_and_content(self):
        pytest.importorskip("numpy")
        from repro.structures.arrays import NUMPY_AVAILABLE

        if not NUMPY_AVAILABLE:
            pytest.skip("numpy disabled via REPRO_NO_NUMPY")
        _, array_perceptron = _perceptron_pair()
        array_perceptron.install(0x3000)
        weights = array_perceptron.weights_view()
        mapping = array_perceptron.mapping_view()
        slots = array_perceptron._slots
        assert weights.shape == (slots, array_perceptron._weight_count)
        assert mapping.shape == weights.shape
        assert (weights == 0).all()


# ======================================================================
# The resilience contract: legal-but-wrong, mirror-coherent, recoverable
# ======================================================================


def _warmed_structures():
    """One warmed instance of each array structure, plus its rng."""
    btb1 = ArrayBtb1(_btb1_config())
    btb2 = ArrayBtb2(_btb2_config(), ArrayBtb1(_btb1_config()))
    pht = ArrayTagePht(_pht_config())
    perceptron = ArrayPerceptron(_perceptron_config(), GPV_WIDTH)
    gpv = GlobalPathVector(depth=17, bits_per_branch=2)
    for index in range(24):
        address = 0x2000 + index * 0x42
        btb1.install(address, 0, _entry(target=address + 8))
        btb2.install_snapshot(address, 0, _entry(target=address + 8))
        pht.install_on_mispredict(address, gpv.snapshot(), index % 2 == 0,
                                  None)
        perceptron.install(address)
        gpv.record_taken(address)
    return [("btb1", btb1), ("btb2", btb2), ("tage", pht),
            ("perceptron", perceptron)]


@pytest.mark.parametrize("which", ["btb1", "btb2", "tage", "perceptron"])
def test_corruption_is_legal_but_wrong_and_recoverable(which):
    structure = dict(_warmed_structures())[which]
    rng_state = random.Random(SEED)
    corruption = structure.corrupt(rng_state)
    assert corruption is not None
    # Legal-but-wrong: the flip changed state audits cannot catch, and
    # the probe mirror was resynchronised along with it.
    assert corruption.bits_flipped >= 1
    assert structure.audit() == []
    # The recovery action invalidates the victim and repairs the mirror.
    corruption.invalidate()
    assert structure.audit() == []


@pytest.mark.parametrize("which", ["btb1", "btb2", "tage", "perceptron"])
def test_corruption_draws_match_object_twin(which):
    """Same warmed state + same rng seed => the same victim and field as
    the object twin, so fault-injection sweeps are backend-comparable."""
    object_structures = {
        "btb1": Btb1(_btb1_config()),
        "btb2": Btb2System(_btb2_config(), Btb1(_btb1_config())),
        "tage": TagePht(_pht_config()),
        "perceptron": Perceptron(_perceptron_config(), GPV_WIDTH),
    }
    gpv = GlobalPathVector(depth=17, bits_per_branch=2)
    for index in range(24):
        address = 0x2000 + index * 0x42
        object_structures["btb1"].install(address, 0,
                                          _entry(target=address + 8))
        object_structures["btb2"].install_snapshot(
            address, 0, _entry(target=address + 8)
        )
        object_structures["tage"].install_on_mispredict(
            address, gpv.snapshot(), index % 2 == 0, None
        )
        object_structures["perceptron"].install(address)
        gpv.record_taken(address)
    array_structure = dict(_warmed_structures())[which]
    object_corruption = object_structures[which].corrupt(random.Random(99))
    array_corruption = array_structure.corrupt(random.Random(99))
    assert object_corruption is not None and array_corruption is not None
    assert object_corruption.component == array_corruption.component
    assert object_corruption.location == array_corruption.location
    assert object_corruption.field == array_corruption.field


def test_empty_structures_refuse_to_corrupt():
    btb1 = ArrayBtb1(_btb1_config())
    perceptron = ArrayPerceptron(_perceptron_config(), GPV_WIDTH)
    assert btb1.corrupt(random.Random(1)) is None
    assert perceptron.corrupt(random.Random(1)) is None


def test_lazy_reexport_from_structures_package():
    import repro.structures as structures

    assert structures.ArrayBtb1 is ArrayBtb1
    assert structures.PackedLanes is PackedLanes
    assert "ArrayBtb1" in structures.__all__


def test_array_backend_works_without_numpy():
    """REPRO_NO_NUMPY simulates a numpy-free install: the array backend
    must import, run, and stay equivalent — numpy only accelerates the
    bulk audit screen, never behaviour."""
    script = (
        "from repro.structures.arrays import NUMPY_AVAILABLE\n"
        "assert not NUMPY_AVAILABLE\n"
        "from repro.verification.differential import cross_backend_report\n"
        "report = cross_backend_report('compute-kernel', branches=300)\n"
        "assert report.clean, report.summary()\n"
        "print('fallback-ok')\n"
    )
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    result = subprocess.run(
        [sys.executable, "-c", script], env=env, cwd=os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        ),
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "fallback-ok" in result.stdout
