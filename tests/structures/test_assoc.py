"""Tests for the generic set-associative table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.assoc import SetAssociativeTable


def tag_match(tag):
    return lambda entry: entry["tag"] == tag


def make_entry(tag, payload=None):
    return {"tag": tag, "payload": payload}


class TestBasics:
    def test_capacity(self):
        table = SetAssociativeTable(rows=4, ways=2)
        assert table.capacity == 8

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SetAssociativeTable(rows=0, ways=2)
        with pytest.raises(ValueError):
            SetAssociativeTable(rows=2, ways=0)
        with pytest.raises(ValueError):
            SetAssociativeTable(rows=2, ways=2, policy="bogus")

    def test_empty_lookup(self):
        table = SetAssociativeTable(rows=4, ways=2)
        assert table.find(0, tag_match(1)) is None
        assert table.find_all(0, tag_match(1)) == []
        assert table.occupancy() == 0

    def test_install_and_find(self):
        table = SetAssociativeTable(rows=4, ways=2)
        way, evicted = table.install(1, make_entry(0xA))
        assert evicted is None
        found = table.find(1, tag_match(0xA))
        assert found is not None
        assert found[0] == way

    def test_row_bounds_checked(self):
        table = SetAssociativeTable(rows=4, ways=2)
        with pytest.raises(ValueError):
            table.find(4, tag_match(1))
        with pytest.raises(ValueError):
            table.read(0, 2)


class TestInstallSemantics:
    def test_install_fills_empty_ways_before_evicting(self):
        table = SetAssociativeTable(rows=2, ways=4)
        evictions = [table.install(0, make_entry(tag))[1] for tag in range(4)]
        assert evictions == [None] * 4
        assert table.occupancy() == 4

    def test_install_evicts_lru_when_full(self):
        table = SetAssociativeTable(rows=1, ways=2)
        table.install(0, make_entry(1))
        table.install(0, make_entry(2))
        way, evicted = table.install(0, make_entry(3))
        assert evicted == make_entry(1)
        assert table.find(0, tag_match(1)) is None
        assert table.find(0, tag_match(2)) is not None
        assert table.find(0, tag_match(3)) is not None

    def test_install_with_match_updates_in_place(self):
        table = SetAssociativeTable(rows=1, ways=2)
        table.install(0, make_entry(1, "old"))
        table.install(0, make_entry(2))
        way, displaced = table.install(0, make_entry(1, "new"), match=tag_match(1))
        assert displaced == make_entry(1, "old")
        assert table.occupancy() == 2
        assert table.find(0, tag_match(1))[1]["payload"] == "new"

    def test_touch_protects_from_eviction(self):
        table = SetAssociativeTable(rows=1, ways=2)
        way_a, _ = table.install(0, make_entry("a"))
        table.install(0, make_entry("b"))
        table.touch(0, way_a)  # make "a" most recent; "b" is now LRU
        _, evicted = table.install(0, make_entry("c"))
        assert evicted == make_entry("b")


class TestFindAll:
    def test_multiple_matches_in_one_row(self):
        table = SetAssociativeTable(rows=1, ways=8)
        for offset in range(5):
            table.install(0, {"tag": 7, "offset": offset})
        matches = table.find_all(0, lambda entry: entry["tag"] == 7)
        assert len(matches) == 5
        offsets = sorted(entry["offset"] for _, entry in matches)
        assert offsets == list(range(5))


class TestInvalidation:
    def test_invalidate_single(self):
        table = SetAssociativeTable(rows=2, ways=2)
        way, _ = table.install(0, make_entry(1))
        removed = table.invalidate(0, way)
        assert removed == make_entry(1)
        assert table.occupancy() == 0
        assert table.invalidate(0, way) is None

    def test_invalidate_where(self):
        table = SetAssociativeTable(rows=2, ways=2)
        table.install(0, make_entry(1))
        table.install(0, make_entry(2))
        table.install(1, make_entry(1))
        removed = table.invalidate_where(lambda entry: entry["tag"] == 1)
        assert removed == 2
        assert table.occupancy() == 1

    def test_clear(self):
        table = SetAssociativeTable(rows=2, ways=2)
        table.install(0, make_entry(1))
        table.clear()
        assert table.occupancy() == 0


class TestIteration:
    def test_iterates_valid_entries(self):
        table = SetAssociativeTable(rows=3, ways=2)
        table.install(0, make_entry("x"))
        table.install(2, make_entry("y"))
        contents = {(row, entry["tag"]) for row, _, entry in table}
        assert contents == {(0, "x"), (2, "y")}


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.integers(0, 30)),
        max_size=80,
    )
)
def test_occupancy_never_exceeds_capacity(installs):
    table = SetAssociativeTable(rows=8, ways=4)
    for row, tag in installs:
        table.install(row, make_entry(tag), match=tag_match(tag))
    assert table.occupancy() <= table.capacity
    # install-with-match keeps tags unique per row
    for row in range(8):
        tags = [e["tag"] for e in table.row_entries(row) if e is not None]
        assert len(tags) == len(set(tags))
