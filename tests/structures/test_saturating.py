"""Tests for saturating counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.saturating import SaturatingCounter, TwoBitDirectionCounter


class TestSaturatingCounter:
    def test_bounds(self):
        counter = SaturatingCounter(bits=2)
        assert counter.maximum == 3
        counter.decrement()
        assert counter.value == 0
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=4)

    def test_saturation_flags(self):
        counter = SaturatingCounter(bits=3, value=0)
        assert counter.is_saturated_low()
        counter.increment(7)
        assert counter.is_saturated_high()

    @given(st.integers(min_value=1, max_value=8), st.lists(st.booleans(), max_size=50))
    def test_always_in_range(self, bits, moves):
        counter = SaturatingCounter(bits=bits)
        for up in moves:
            if up:
                counter.increment()
            else:
                counter.decrement()
            assert 0 <= counter.value <= counter.maximum


class TestTwoBitDirectionCounter:
    def test_state_names(self):
        assert TwoBitDirectionCounter(0).taken is False
        assert TwoBitDirectionCounter(1).taken is False
        assert TwoBitDirectionCounter(2).taken is True
        assert TwoBitDirectionCounter(3).taken is True

    def test_strength(self):
        assert TwoBitDirectionCounter(0).strong
        assert TwoBitDirectionCounter(1).weak
        assert TwoBitDirectionCounter(2).weak
        assert TwoBitDirectionCounter(3).strong

    def test_for_direction(self):
        assert TwoBitDirectionCounter.for_direction(True).value == 2
        assert TwoBitDirectionCounter.for_direction(True, strong=True).value == 3
        assert TwoBitDirectionCounter.for_direction(False).value == 1
        assert TwoBitDirectionCounter.for_direction(False, strong=True).value == 0

    def test_update_walks_states(self):
        counter = TwoBitDirectionCounter(TwoBitDirectionCounter.WEAK_NOT_TAKEN)
        counter.update(taken=True)
        assert counter.value == TwoBitDirectionCounter.WEAK_TAKEN
        counter.update(taken=True)
        assert counter.value == TwoBitDirectionCounter.STRONG_TAKEN
        counter.update(taken=True)
        assert counter.value == TwoBitDirectionCounter.STRONG_TAKEN
        counter.update(taken=False)
        assert counter.value == TwoBitDirectionCounter.WEAK_TAKEN

    def test_strong_state_survives_one_contrary_outcome(self):
        counter = TwoBitDirectionCounter(TwoBitDirectionCounter.STRONG_TAKEN)
        counter.update(taken=False)
        assert counter.taken  # still predicts taken (weak)

    def test_strengthen(self):
        counter = TwoBitDirectionCounter(TwoBitDirectionCounter.WEAK_TAKEN)
        counter.strengthen()
        assert counter.value == TwoBitDirectionCounter.STRONG_TAKEN
        counter = TwoBitDirectionCounter(TwoBitDirectionCounter.WEAK_NOT_TAKEN)
        counter.strengthen()
        assert counter.value == TwoBitDirectionCounter.STRONG_NOT_TAKEN

    def test_copy_is_independent(self):
        original = TwoBitDirectionCounter(2)
        clone = original.copy()
        clone.update(taken=True)
        assert original.value == 2
        assert clone.value == 3

    def test_equality(self):
        assert TwoBitDirectionCounter(2) == TwoBitDirectionCounter(2)
        assert TwoBitDirectionCounter(2) != TwoBitDirectionCounter(3)

    @given(st.lists(st.booleans(), min_size=2, max_size=2))
    def test_two_same_outcomes_align_prediction(self, outcomes):
        # After two identical outcomes from any state, prediction matches.
        if outcomes[0] == outcomes[1]:
            for start in range(4):
                counter = TwoBitDirectionCounter(start)
                counter.update(outcomes[0])
                counter.update(outcomes[1])
                assert counter.taken == outcomes[0]
