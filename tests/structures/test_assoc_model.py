"""Model-based testing of the set-associative table.

A dict-backed reference model executes the same random operation
sequence as the real table; contents must agree after every step (the
same spirit as the paper's hardware-signal-driven reference models,
applied to our own building block).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.structures.assoc import SetAssociativeTable

ROWS = 4
WAYS = 2


class AssocTableMachine(RuleBasedStateMachine):
    """Random install/touch/invalidate sequences against a mirror."""

    def __init__(self):
        super().__init__()
        self.table = SetAssociativeTable(rows=ROWS, ways=WAYS, policy="lru")
        # Mirror: (row, way) -> entry
        self.mirror = {}

    # -- operations -----------------------------------------------------

    @rule(row=st.integers(0, ROWS - 1), tag=st.integers(0, 6),
          payload=st.integers(0, 100))
    def install_with_match(self, row, tag, payload):
        entry = {"tag": tag, "payload": payload}
        way, displaced = self.table.install(
            row, entry, match=lambda e: e["tag"] == tag
        )
        self.mirror[(row, way)] = entry

    @rule(row=st.integers(0, ROWS - 1), tag=st.integers(0, 6))
    def install_plain(self, row, tag):
        entry = {"tag": tag, "payload": None}
        way, _ = self.table.install(row, entry)
        self.mirror[(row, way)] = entry

    @rule(row=st.integers(0, ROWS - 1), way=st.integers(0, WAYS - 1))
    def invalidate(self, row, way):
        removed = self.table.invalidate(row, way)
        mirrored = self.mirror.pop((row, way), None)
        assert removed == mirrored

    @rule(row=st.integers(0, ROWS - 1), way=st.integers(0, WAYS - 1))
    def touch_valid(self, row, way):
        if self.table.read(row, way) is not None:
            self.table.touch(row, way)

    @rule(row=st.integers(0, ROWS - 1), tag=st.integers(0, 6))
    def find_agrees(self, row, tag):
        found = self.table.find(row, lambda e: e["tag"] == tag)
        mirror_hits = [
            (way, entry)
            for (mrow, way), entry in self.mirror.items()
            if mrow == row and entry["tag"] == tag
        ]
        if found is None:
            assert not mirror_hits
        else:
            way, entry = found
            assert self.mirror.get((row, way)) == entry

    # -- invariants -------------------------------------------------------

    @invariant()
    def contents_match(self):
        actual = {
            (row, way): entry for row, way, entry in self.table
        }
        assert actual == self.mirror

    @invariant()
    def occupancy_matches(self):
        assert self.table.occupancy() == len(self.mirror)


TestAssocTableModel = AssocTableMachine.TestCase
TestAssocTableModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
