"""Tests for bounded queues."""

import pytest

from repro.structures.queues import BoundedQueue, QueueFullError


def test_fifo_order():
    queue = BoundedQueue(4)
    for item in "abc":
        queue.push(item)
    assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]


def test_capacity_enforced():
    queue = BoundedQueue(2, name="staging")
    queue.push(1)
    queue.push(2)
    with pytest.raises(QueueFullError):
        queue.push(3)
    assert queue.rejects == 1


def test_try_push_reports_room():
    queue = BoundedQueue(1)
    assert queue.try_push("x")
    assert not queue.try_push("y")
    assert queue.rejects == 1
    assert len(queue) == 1


def test_try_pop():
    queue = BoundedQueue(2)
    assert queue.try_pop() is None
    queue.push("a")
    assert queue.try_pop() == "a"


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        BoundedQueue(1).pop()


def test_peek_does_not_remove():
    queue = BoundedQueue(2)
    queue.push("a")
    assert queue.peek() == "a"
    assert len(queue) == 1
    assert BoundedQueue(1).peek() is None


def test_drain_returns_all_in_order():
    queue = BoundedQueue(4)
    for item in range(3):
        queue.push(item)
    assert queue.drain() == [0, 1, 2]
    assert queue.empty
    assert queue.pops == 3


def test_clear_is_a_flush_not_a_pop():
    queue = BoundedQueue(4)
    queue.push(1)
    queue.clear()
    assert queue.empty
    assert queue.pops == 0


def test_high_watermark():
    queue = BoundedQueue(4)
    queue.push(1)
    queue.push(2)
    queue.pop()
    queue.push(3)
    assert queue.high_watermark == 2


def test_stats_counting():
    queue = BoundedQueue(4)
    queue.push(1)
    queue.push(2)
    queue.pop()
    assert queue.pushes == 2
    assert queue.pops == 1


def test_bool_and_full_empty():
    queue = BoundedQueue(1)
    assert not queue
    assert queue.empty
    queue.push(1)
    assert queue
    assert queue.full


def test_invalid_capacity():
    with pytest.raises(ValueError):
        BoundedQueue(0)


def test_iteration_preserves_order():
    queue = BoundedQueue(4)
    for item in range(3):
        queue.push(item)
    assert list(queue) == [0, 1, 2]
