"""Shared fixtures and hypothesis strategies for the whole test suite.

Individual test modules used to duplicate small predictor configs,
branch-event strategies and seeded RNGs; they now come from here.
Strategies are plain module-level functions (hypothesis strategies are
not fixtures) — import them with ``from tests.conftest import ...``.
"""

import os

import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng
from repro.configs import z15_config
from repro.configs.predictor import Btb1Config, Btb2Config, PredictorConfig
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction
from repro.workloads.generators import (
    loop_nest_program,
    pattern_program,
    transaction_workload,
)

# CI runs with HYPOTHESIS_PROFILE=ci: print_blob makes a failing
# property print its reproduction blob (`@reproduce_failure(...)`), so
# a red robustness run in CI is replayable locally without guessing.
settings.register_profile("ci", print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

#: The suite-wide default seed for deterministic components.
DEFAULT_TEST_SEED = 1234

#: Branch kinds the randomized strategies draw from.
BRANCH_KINDS = [
    BranchKind.CONDITIONAL_RELATIVE,
    BranchKind.UNCONDITIONAL_RELATIVE,
    BranchKind.LOOP_RELATIVE,
    BranchKind.CONDITIONAL_INDIRECT,
    BranchKind.UNCONDITIONAL_INDIRECT,
]

INDIRECT_KINDS = (BranchKind.CONDITIONAL_INDIRECT,
                  BranchKind.UNCONDITIONAL_INDIRECT)
UNCONDITIONAL_TEST_KINDS = (BranchKind.UNCONDITIONAL_RELATIVE,
                            BranchKind.UNCONDITIONAL_INDIRECT)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


def branch_addresses(max_address: int = 2**20) -> st.SearchStrategy:
    """Halfword-aligned instruction addresses, as the ISA requires."""
    return st.integers(min_value=0, max_value=max_address // 2).map(
        lambda value: value * 2
    )


@st.composite
def branch_events(draw, max_address: int = 2**20, max_thread: int = 1,
                  max_context: int = 2):
    """One raw branch event tuple: ``(address, length, kind,
    static_target, taken, target, thread, context)``.

    Events are individually legal (DynamicBranch constraints hold) but
    deliberately stream-incoherent — robustness tests feed them to the
    predictor directly.
    """
    address = draw(branch_addresses(max_address))
    kind = draw(st.sampled_from(BRANCH_KINDS))
    length = draw(st.sampled_from((2, 4, 6)))
    indirect = kind in INDIRECT_KINDS
    static_target = (
        None if indirect else draw(branch_addresses(max_address))
    )
    unconditional = kind in UNCONDITIONAL_TEST_KINDS
    taken = True if unconditional else draw(st.booleans())
    if taken:
        target = (
            static_target
            if static_target is not None
            else draw(branch_addresses(max_address))
        )
    else:
        target = None
    thread = draw(st.integers(min_value=0, max_value=max_thread))
    context = draw(st.integers(min_value=0, max_value=max_context))
    return (address, length, kind, static_target, taken, target, thread,
            context)


def dynamic_branch_from_event(sequence: int, event) -> DynamicBranch:
    """Materialise one :func:`branch_events` tuple as a DynamicBranch."""
    (address, length, kind, static_target, taken, target, thread,
     context) = event
    instruction = Instruction(address=address, length=length, kind=kind,
                              static_target=static_target)
    return DynamicBranch(sequence=sequence, instruction=instruction,
                         taken=taken, target=target, thread=thread,
                         context=context)


@st.composite
def program_shapes(draw):
    """A small, always-runnable Program of a randomly drawn shape.

    Covers the two structural extremes the engines care about: counted
    loop nests (dense back-branches) and pattern chains (conditional
    forward branches); both run forever, so any branch budget is safe.
    """
    shape = draw(st.sampled_from(("loop-nest", "patterns")))
    if shape == "loop-nest":
        depths = draw(
            st.lists(st.integers(min_value=2, max_value=12),
                     min_size=1, max_size=3)
        )
        body = draw(st.integers(min_value=1, max_value=8))
        return loop_nest_program(depths=tuple(depths),
                                 body_instructions=body)
    patterns = draw(
        st.lists(
            st.lists(st.booleans(), min_size=1, max_size=6).filter(any),
            min_size=1, max_size=4,
        )
    )
    return pattern_program(patterns=patterns)


# ----------------------------------------------------------------------
# Shared plain builders (importable without fixture machinery)
# ----------------------------------------------------------------------


def small_predictor_config() -> PredictorConfig:
    """A tiny two-level predictor config: fast to run, easy to fill."""
    return PredictorConfig(
        btb1=Btb1Config(rows=16, ways=2, tag_bits=6, policy="lru"),
        btb2=Btb2Config(rows=64, ways=2, staging_capacity=8,
                        transfer_lines=4),
        completion_delay=4,
        name="tiny",
    ).validate()


def build_small_program():
    """A small loop-nest program (a few hundred instructions/iteration)."""
    return loop_nest_program(depths=(8, 4), body_instructions=4)


def build_medium_program(seed: int = DEFAULT_TEST_SEED):
    """A transaction-mix program large enough to churn the BTB1."""
    return transaction_workload(
        transaction_types=4, blocks_per_transaction=8, seed=seed
    )


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture
def rng() -> DeterministicRng:
    """A fresh suite-seeded deterministic RNG."""
    return DeterministicRng(DEFAULT_TEST_SEED)


@pytest.fixture
def default_config() -> PredictorConfig:
    """The full z15 generation preset."""
    return z15_config()


@pytest.fixture
def small_config() -> PredictorConfig:
    return small_predictor_config()


@pytest.fixture
def small_program():
    return build_small_program()


@pytest.fixture
def medium_program():
    return build_medium_program()
