"""Tests for statistical workload cloning."""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.isa.instructions import BranchKind
from repro.workloads.executor import Executor
from repro.workloads.generators import (
    large_footprint_program,
    transaction_workload,
)
from repro.workloads.synthesis import (
    BranchProfile,
    clone_trace,
    profile_trace,
    synthesize_program,
)


def sample_trace(count=6000, seed=4):
    program = transaction_workload(seed=seed)
    return list(Executor(program, seed=seed).run(max_branches=count))


class TestProfiling:
    def test_empty_trace(self):
        profile = profile_trace([])
        assert profile.dynamic_branches == 0
        assert profile.static_branches == 0

    def test_counts(self):
        trace = sample_trace(2000)
        profile = profile_trace(trace)
        assert profile.dynamic_branches == 2000
        assert profile.static_branches == len({b.address for b in trace})
        assert 0 < profile.taken_rate < 1

    def test_kind_mix_sums_to_one(self):
        profile = profile_trace(sample_trace(2000))
        assert sum(profile.kind_mix.values()) == pytest.approx(1.0)

    def test_bias_histograms_sum_to_one(self):
        profile = profile_trace(sample_trace(2000))
        assert sum(profile.bias_histogram) == pytest.approx(1.0, abs=1e-6)
        assert sum(profile.dynamic_bias_histogram) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_indirect_fanout(self):
        profile = profile_trace(sample_trace(4000))
        # The transaction dispatcher rotates over 8 handlers.
        assert profile.indirect_target_fanout == pytest.approx(8.0, abs=0.5)

    def test_summary_renders(self):
        assert "taken rate" in profile_trace(sample_trace(500)).summary()


class TestSynthesis:
    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            synthesize_program(BranchProfile())

    def test_clone_runs(self):
        clone = clone_trace(sample_trace(4000), seed=2)
        branches = list(Executor(clone, seed=2).run(max_branches=1000))
        assert len(branches) == 1000

    def test_clone_matches_statistics(self):
        trace = sample_trace(8000)
        original = profile_trace(trace)
        clone = clone_trace(trace, seed=2)
        cloned = profile_trace(
            list(Executor(clone, seed=2).run(max_branches=8000))
        )
        assert cloned.static_branches == pytest.approx(
            original.static_branches, rel=0.1
        )
        assert cloned.taken_rate == pytest.approx(original.taken_rate,
                                                  abs=0.08)
        assert cloned.footprint_bytes == pytest.approx(
            original.footprint_bytes, rel=0.35
        )
        assert cloned.indirect_target_fanout == pytest.approx(
            original.indirect_target_fanout, abs=1.0
        )

    def test_clone_without_indirects(self):
        program = large_footprint_program(block_count=64, seed=3)
        trace = list(Executor(program, seed=3).run(max_branches=3000))
        clone = clone_trace(trace, seed=5)
        cloned_kinds = {
            insn.kind
            for insn in clone.instructions.values()
            if insn.is_branch
        }
        assert BranchKind.UNCONDITIONAL_INDIRECT not in cloned_kinds

    def test_clone_predictor_behaviour_comparable(self):
        """The clone should stress the predictor about as hard as the
        original (that is the point of workload cloning)."""
        trace = sample_trace(8000)

        def mpki_of(program, seed):
            engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
            stats = engine.run_program(program, max_branches=6000,
                                       warmup_branches=3000, seed=seed)
            return stats.mpki

        original_mpki = mpki_of(transaction_workload(seed=4), 4)
        clone_mpki = mpki_of(clone_trace(trace, seed=2), 2)
        # Same ballpark: within a factor of ~2.5 either way.
        assert clone_mpki < original_mpki * 2.5 + 5
        assert clone_mpki > original_mpki / 2.5 - 5

    def test_clone_deterministic(self):
        trace = sample_trace(2000)
        a = clone_trace(trace, seed=7)
        b = clone_trace(trace, seed=7)
        assert sorted(a.instructions) == sorted(b.instructions)
