"""Tests for the deep-history / deep-xor differentiator workloads."""

import pytest

from repro.configs import z13_config, z14_config, z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.workloads.executor import Executor
from repro.workloads.generators import deep_history_program, deep_xor_program


def mpki(config_factory, program, branches=6000, warmup=3000):
    engine = FunctionalEngine(LookaheadBranchPredictor(config_factory()))
    stats = engine.run_program(program, max_branches=branches,
                               warmup_branches=warmup)
    return stats.mpki


class TestDeepHistory:
    def test_runs(self):
        program = deep_history_program()
        branches = list(Executor(program).run(max_branches=500))
        assert len(branches) == 500

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            deep_history_program(noise_depth=0)
        with pytest.raises(ValueError):
            deep_history_program(noise_depth=16)

    def test_consumer_depends_on_producer(self):
        """The consumer's outcome equals the producer's, noise_depth
        branches later."""
        program = deep_history_program(noise_depth=4, pairs=1)
        branches = list(Executor(program).run(max_branches=400))
        conditionals = [b for b in branches
                        if b.kind.value in ("cond-rel",)]
        # conditionals alternate producer, consumer, producer, ...
        producers = conditionals[0::2]
        consumers = conditionals[1::2]
        for producer, consumer in zip(producers, consumers):
            assert consumer.taken == producer.taken

    def test_generation_differentiation(self):
        """z13 cannot learn it; z14 (perceptron) and z15 (long TAGE) can."""
        z13 = mpki(z13_config, deep_history_program())
        z14 = mpki(z14_config, deep_history_program())
        z15 = mpki(z15_config, deep_history_program())
        assert z13 > 10
        assert z14 < 1
        assert z15 < 1


class TestDeepXor:
    def test_runs(self):
        program = deep_xor_program()
        branches = list(Executor(program).run(max_branches=500))
        assert len(branches) == 500

    def test_linear_inseparability(self):
        """z14's linear perceptron only partially learns the XOR; z15's
        tagged long-history table learns it fully."""
        z13 = mpki(z13_config, deep_xor_program())
        z14 = mpki(z14_config, deep_xor_program())
        z15 = mpki(z15_config, deep_xor_program())
        assert z15 < z14 < z13
        assert z15 < 1
        assert z14 > 5
