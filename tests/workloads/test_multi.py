"""Tests for interleaved multi-context runs."""

import pytest

from repro.isa.dynamic import DynamicBranch
from repro.workloads.generators import loop_nest_program, pattern_program
from repro.workloads.multi import ContextSwitch, InterleavedRun


def make_run(quantum=50):
    programs = [
        loop_nest_program(depths=(5, 3)),
        pattern_program([[True, False]]),
    ]
    return InterleavedRun(programs, quantum_branches=quantum, seed=3)


def test_yields_requested_branch_count():
    run = make_run()
    events = list(run.run(total_branches=300))
    branches = [e for e in events if isinstance(e, DynamicBranch)]
    assert len(branches) == 300


def test_context_switch_markers_precede_quanta():
    run = make_run(quantum=50)
    events = list(run.run(total_branches=200))
    switches = [e for e in events if isinstance(e, ContextSwitch)]
    assert len(switches) == 4
    assert events[0] == switches[0]


def test_contexts_alternate():
    run = make_run(quantum=10)
    events = list(run.run(total_branches=40))
    switch_contexts = [e.context for e in events if isinstance(e, ContextSwitch)]
    assert switch_contexts == [0, 1, 0, 1]


def test_sequences_globally_monotonic():
    run = make_run(quantum=25)
    branches = [
        e for e in run.run(total_branches=100) if isinstance(e, DynamicBranch)
    ]
    sequences = [b.sequence for b in branches]
    assert sequences == sorted(sequences)
    assert len(set(sequences)) == len(sequences)


def test_branches_carry_their_context():
    run = make_run(quantum=10)
    current = None
    for event in run.run(total_branches=60):
        if isinstance(event, ContextSwitch):
            current = event.context
        else:
            assert event.context == current


def test_validation():
    with pytest.raises(ValueError):
        InterleavedRun([], quantum_branches=10)
    with pytest.raises(ValueError):
        InterleavedRun([loop_nest_program()], quantum_branches=0)


def test_instruction_accounting():
    run = make_run()
    list(run.run(total_branches=100))
    assert run.instructions_executed > 100
    assert run.branches_executed == 100
