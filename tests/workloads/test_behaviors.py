"""Tests for branch behaviours."""

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.isa.instructions import BranchKind, Instruction
from repro.workloads.behaviors import (
    AlwaysTaken,
    BiasedRandom,
    Call,
    Correlated,
    ExecutionContext,
    IndirectCycle,
    IndirectRandom,
    Loop,
    NeverTaken,
    Pattern,
    Return,
)


def relative(address=0x1000, target=0x2000):
    return Instruction(
        address=address, length=4, kind=BranchKind.CONDITIONAL_RELATIVE,
        static_target=target,
    )


def indirect(address=0x1000):
    return Instruction(
        address=address, length=4, kind=BranchKind.UNCONDITIONAL_INDIRECT
    )


def context():
    return ExecutionContext(DeterministicRng(3))


class TestSimpleBehaviors:
    def test_always_taken(self):
        taken, target = AlwaysTaken().resolve(relative(), context())
        assert taken and target == 0x2000

    def test_never_taken(self):
        taken, target = NeverTaken().resolve(relative(), context())
        assert not taken and target is None

    def test_loop_trip_count(self):
        loop = Loop(trip_count=4)
        ctx = context()
        outcomes = [loop.resolve(relative(), ctx)[0] for _ in range(8)]
        assert outcomes == [True, True, True, False] * 2

    def test_loop_invalid(self):
        with pytest.raises(ValueError):
            Loop(0)

    def test_pattern_cycles(self):
        pattern = Pattern([True, False, False])
        ctx = context()
        outcomes = [pattern.resolve(relative(), ctx)[0] for _ in range(6)]
        assert outcomes == [True, False, False, True, False, False]

    def test_biased_random_rate(self):
        behavior = BiasedRandom(0.25)
        ctx = context()
        outcomes = [behavior.resolve(relative(), ctx)[0] for _ in range(2000)]
        rate = sum(outcomes) / len(outcomes)
        assert 0.2 < rate < 0.3

    def test_behavior_requires_target(self):
        with pytest.raises(SimulationError):
            AlwaysTaken().resolve(indirect(), context())


class TestCorrelated:
    def test_direction_is_parity_of_history(self):
        behavior = Correlated(history_bits=[0])
        ctx = context()
        ctx.record_outcome(True)
        taken, _ = behavior.resolve(relative(), ctx)
        assert taken  # last outcome True -> parity 1
        ctx.record_outcome(False)
        taken, _ = behavior.resolve(relative(), ctx)
        assert not taken

    def test_invert(self):
        behavior = Correlated(history_bits=[0], invert=True)
        ctx = context()
        ctx.record_outcome(True)
        taken, _ = behavior.resolve(relative(), ctx)
        assert not taken


class TestCallReturn:
    def test_call_pushes_nsia(self):
        ctx = context()
        call_insn = Instruction(
            address=0x1000, length=4, kind=BranchKind.UNCONDITIONAL_RELATIVE,
            static_target=0x8000,
        )
        taken, target = Call().resolve(call_insn, ctx)
        assert taken and target == 0x8000
        assert ctx.call_stack == [0x1004]

    def test_return_pops(self):
        ctx = context()
        ctx.call_stack.append(0x1004)
        taken, target = Return().resolve(indirect(0x8010), ctx)
        assert taken and target == 0x1004
        assert ctx.call_stack == []

    def test_return_with_offset(self):
        ctx = context()
        ctx.call_stack.append(0x1004)
        _, target = Return(landing_offset=4).resolve(indirect(0x8010), ctx)
        assert target == 0x1008

    def test_return_empty_stack_without_fallback(self):
        with pytest.raises(SimulationError):
            Return().resolve(indirect(0x8010), context())

    def test_return_fallback(self):
        _, target = Return(fallback=0x4000).resolve(indirect(0x8010), context())
        assert target == 0x4000

    def test_call_depth_limit(self):
        ctx = context()
        behavior = Call(max_depth=1)
        call_insn = Instruction(
            address=0x1000, length=4, kind=BranchKind.UNCONDITIONAL_RELATIVE,
            static_target=0x8000,
        )
        behavior.resolve(call_insn, ctx)
        with pytest.raises(SimulationError):
            behavior.resolve(call_insn, ctx)


class TestIndirects:
    def test_cycle_rotates(self):
        behavior = IndirectCycle([0x100, 0x200, 0x300])
        ctx = context()
        targets = [behavior.resolve(indirect(), ctx)[1] for _ in range(6)]
        assert targets == [0x100, 0x200, 0x300, 0x100, 0x200, 0x300]

    def test_random_stays_in_set(self):
        behavior = IndirectRandom([0x100, 0x200])
        ctx = context()
        targets = {behavior.resolve(indirect(), ctx)[1] for _ in range(50)}
        assert targets <= {0x100, 0x200}
        assert len(targets) == 2

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            IndirectCycle([])
        with pytest.raises(ValueError):
            IndirectRandom([])
