"""Tests for trace I/O."""

import pytest

from repro.common.errors import TraceFormatError
from repro.workloads.executor import Executor
from repro.workloads.generators import large_footprint_program
from repro.workloads.trace import (
    format_record,
    load_trace,
    parse_record,
    read_trace,
    write_trace,
)


def sample_branches(count=100):
    program = large_footprint_program(block_count=16, seed=4)
    return list(Executor(program, seed=4).run(max_branches=count))


def test_format_parse_roundtrip():
    for branch in sample_branches(50):
        parsed = parse_record(format_record(branch))
        assert parsed.sequence == branch.sequence
        assert parsed.address == branch.address
        assert parsed.taken == branch.taken
        assert parsed.target == branch.target
        assert parsed.kind == branch.kind
        assert parsed.instruction.length == branch.instruction.length
        assert parsed.instruction.static_target == branch.instruction.static_target


def test_write_read_roundtrip(tmp_path):
    branches = sample_branches(200)
    path = tmp_path / "trace.txt"
    count = write_trace(path, branches)
    assert count == 200
    loaded = load_trace(path)
    assert len(loaded) == 200
    assert loaded[0].address == branches[0].address
    assert loaded[-1].taken == branches[-1].taken


def test_gzip_roundtrip(tmp_path):
    branches = sample_branches(50)
    path = tmp_path / "trace.txt.gz"
    write_trace(path, branches)
    loaded = load_trace(path)
    assert len(loaded) == 50


def test_missing_header_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("not a trace\n")
    with pytest.raises(TraceFormatError):
        list(read_trace(path))


def test_malformed_record_rejected():
    with pytest.raises(TraceFormatError):
        parse_record("1 2 3")
    with pytest.raises(TraceFormatError):
        parse_record("x cr 1000 4 - 1 2000 0 0")
    with pytest.raises(TraceFormatError):
        parse_record("0 zz 1000 4 - 1 2000 0 0")


def test_comments_and_blanks_skipped(tmp_path):
    branches = sample_branches(3)
    path = tmp_path / "trace.txt"
    lines = ["#repro-branch-trace-v1"]
    for branch in branches:
        lines.append(format_record(branch))
        lines.append("# comment")
        lines.append("")
    path.write_text("\n".join(lines) + "\n")
    assert len(load_trace(path)) == 3


def test_replay_through_engine(tmp_path):
    """A saved trace replays to identical accuracy stats."""
    from repro.configs import z15_config
    from repro.core import LookaheadBranchPredictor
    from repro.engine import FunctionalEngine

    branches = sample_branches(500)
    path = tmp_path / "trace.txt"
    write_trace(path, branches)

    direct = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    direct_stats = direct.run_branches(branches)
    replayed = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    replay_stats = replayed.run_branches(load_trace(path))
    assert direct_stats.mispredicted_branches == replay_stats.mispredicted_branches
    assert direct_stats.dynamic_predictions == replay_stats.dynamic_predictions
