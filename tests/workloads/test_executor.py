"""Tests for the program executor."""

import pytest

from repro.common.errors import SimulationError
from repro.isa.instructions import BranchKind
from repro.workloads.behaviors import AlwaysTaken, Loop, NeverTaken
from repro.workloads.executor import Executor
from repro.workloads.program import CodeBuilder


def simple_loop_program(trip_count=3):
    builder = CodeBuilder(0x1000)
    head = builder.label("head")
    builder.straight(2)
    builder.branch(BranchKind.LOOP_RELATIVE, target=head,
                   behavior=Loop(trip_count))
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=head,
                   behavior=AlwaysTaken())
    return builder.build()


def test_executes_in_program_order():
    program = simple_loop_program()
    executor = Executor(program)
    branches = list(executor.run(max_branches=4))
    # Loop taken twice, then not taken, then restart jump.
    assert [b.taken for b in branches] == [True, True, False, True]
    assert branches[0].address == 0x1008


def test_sequences_monotonic():
    program = simple_loop_program()
    executor = Executor(program)
    branches = list(executor.run(max_branches=10))
    assert [b.sequence for b in branches] == list(range(10))


def test_instruction_counting():
    program = simple_loop_program()
    executor = Executor(program)
    list(executor.run(max_branches=4))
    # Each loop iteration: 2 straight + 1 branch; final: +1 jump.
    assert executor.instructions_executed == 3 * 3 + 1


def test_max_instructions_limit():
    program = simple_loop_program()
    executor = Executor(program)
    list(executor.run(max_instructions=7))
    assert executor.instructions_executed >= 7


def test_requires_a_limit():
    executor = Executor(simple_loop_program())
    with pytest.raises(ValueError):
        list(executor.run())


def test_not_taken_falls_through():
    builder = CodeBuilder(0x1000)
    skip = builder.forward_label()
    builder.branch(BranchKind.CONDITIONAL_RELATIVE, target=skip,
                   behavior=NeverTaken())
    builder.straight(1)
    builder.bind(skip)
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=0x1000,
                   behavior=AlwaysTaken())
    program = builder.build()
    executor = Executor(program)
    branches = list(executor.run(max_branches=2))
    assert not branches[0].taken
    assert branches[0].target is None
    assert branches[1].address == skip.resolve()


def test_bad_control_transfer_detected():
    builder = CodeBuilder(0x1000)
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=0x9998,
                   behavior=AlwaysTaken())
    program = builder.build()
    executor = Executor(program)
    with pytest.raises(SimulationError):
        list(executor.run(max_branches=2))


def test_deterministic_replay():
    from repro.workloads.generators import large_footprint_program

    # Behaviours hold per-run state, so each run gets a fresh program.
    first = [
        (b.address, b.taken, b.target)
        for b in Executor(
            large_footprint_program(block_count=16, seed=3), seed=9
        ).run(max_branches=200)
    ]
    second = [
        (b.address, b.taken, b.target)
        for b in Executor(
            large_footprint_program(block_count=16, seed=3), seed=9
        ).run(max_branches=200)
    ]
    assert first == second


def test_different_seed_differs():
    from repro.workloads.generators import large_footprint_program

    program = large_footprint_program(block_count=16, seed=3)
    first = [b.taken for b in Executor(program, seed=9).run(max_branches=300)]
    # A fresh program instance is needed (behaviours hold state).
    program2 = large_footprint_program(block_count=16, seed=3)
    second = [b.taken for b in Executor(program2, seed=10).run(max_branches=300)]
    assert first != second


def test_context_and_thread_stamped():
    program = simple_loop_program()
    executor = Executor(program, context_id=5, thread=1)
    branch = next(iter(executor.run(max_branches=1)))
    assert branch.context == 5
    assert branch.thread == 1
