"""Tests for the workload generators."""

import pytest

from repro.workloads.executor import Executor
from repro.workloads.generators import (
    call_return_program,
    correlated_program,
    indirect_dispatch_program,
    large_footprint_program,
    loop_nest_program,
    pattern_program,
    transaction_workload,
)
from repro.workloads.suite import STANDARD_WORKLOADS, get_workload


def run_branches(program, count=2000, seed=1):
    executor = Executor(program, seed=seed)
    branches = list(executor.run(max_branches=count))
    return executor, branches


class TestGeneratorsExecute:
    """Every generator must produce a program that runs indefinitely."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: loop_nest_program(depths=(5, 3)),
            lambda: pattern_program([[True, False]]),
            lambda: call_return_program(caller_count=4, functions=2),
            lambda: indirect_dispatch_program(handler_count=4),
            lambda: correlated_program(pair_count=2),
            lambda: large_footprint_program(block_count=32, seed=2),
            lambda: transaction_workload(transaction_types=3,
                                         blocks_per_transaction=8),
        ],
    )
    def test_runs_without_error(self, factory):
        program = factory()
        _, branches = run_branches(program, count=1000)
        assert len(branches) == 1000


class TestStatisticalShape:
    def test_branch_density_matches_paper(self):
        """LSPR-like: roughly a branch every 4 instructions."""
        program = large_footprint_program(block_count=128, seed=5)
        executor, branches = run_branches(program, count=4000)
        density = executor.instructions_executed / len(branches)
        assert 3.0 < density < 6.0

    def test_taken_rate_reasonable(self):
        program = large_footprint_program(block_count=128, seed=5)
        _, branches = run_branches(program, count=4000)
        taken_rate = sum(b.taken for b in branches) / len(branches)
        assert 0.25 < taken_rate < 0.75

    def test_footprint_scales_with_blocks(self):
        small = large_footprint_program(block_count=64, seed=5)
        large = large_footprint_program(block_count=512, seed=5,
                                        name="bigger")
        assert large.footprint_bytes() > 4 * small.footprint_bytes()

    def test_ring_covers_every_block(self):
        """The shuffled exits form one ring visiting all blocks."""
        program = large_footprint_program(block_count=48, seed=5)
        _, branches = run_branches(program, count=6000)
        exits = {b.address for b in branches
                 if b.taken and b.kind.value == "uncond-rel"}
        # 48 block exits (plus maybe loop-back branches); at least the
        # ring's 48 unconditional exits must all appear.
        assert len(exits) >= 48


class TestCallReturnShape:
    def test_calls_are_far(self):
        """The call distance must exceed the CRS threshold (1024)."""
        program = call_return_program()
        _, branches = run_branches(program, count=500)
        calls = [b for b in branches
                 if b.taken and b.kind.value == "uncond-rel"
                 and abs(b.target - b.address) >= 1024]
        assert calls

    def test_returns_are_multi_target(self):
        program = call_return_program(caller_count=8, functions=2)
        _, branches = run_branches(program, count=800)
        by_address = {}
        for b in branches:
            if b.kind.value == "uncond-ind" and b.taken:
                by_address.setdefault(b.address, set()).add(b.target)
        assert any(len(targets) > 1 for targets in by_address.values())


class TestDispatchShape:
    def test_dispatch_visits_all_handlers(self):
        program = indirect_dispatch_program(handler_count=6)
        _, branches = run_branches(program, count=600)
        dispatch_targets = {
            b.target for b in branches if b.kind.value == "uncond-ind"
        }
        assert len(dispatch_targets) == 6


class TestSuite:
    def test_registry_complete(self):
        assert len(STANDARD_WORKLOADS) >= 8
        for spec in STANDARD_WORKLOADS.values():
            assert spec.description
            assert spec.suggested_branches > 0

    def test_get_workload_builds(self):
        program = get_workload("compute-kernel")
        assert program.instruction_count > 0

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    @pytest.mark.parametrize("name", sorted(STANDARD_WORKLOADS))
    def test_every_standard_workload_runs(self, name):
        program = get_workload(name, seed=2)
        _, branches = run_branches(program, count=300)
        assert len(branches) == 300
