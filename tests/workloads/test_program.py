"""Tests for programs, labels and the code builder."""

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.isa.instructions import BranchKind, Instruction
from repro.workloads.behaviors import AlwaysTaken
from repro.workloads.program import CodeBuilder, Label, Program


class TestLabel:
    def test_bind_resolve(self):
        label = Label("x")
        label.bind(0x100)
        assert label.resolve() == 0x100

    def test_double_bind_rejected(self):
        label = Label("x")
        label.bind(0x100)
        with pytest.raises(SimulationError):
            label.bind(0x200)

    def test_unbound_resolve_rejected(self):
        with pytest.raises(SimulationError):
            Label("x").resolve()


class TestProgram:
    def test_add_and_at(self):
        program = Program()
        insn = Instruction(address=0x100, length=4)
        program.add(insn)
        assert program.at(0x100) is insn

    def test_duplicate_address_rejected(self):
        program = Program()
        program.add(Instruction(address=0x100, length=4))
        with pytest.raises(SimulationError):
            program.add(Instruction(address=0x100, length=2))

    def test_missing_address_raises(self):
        with pytest.raises(SimulationError):
            Program().at(0x500)

    def test_behavior_on_non_branch_rejected(self):
        program = Program()
        with pytest.raises(SimulationError):
            program.add(Instruction(address=0x100, length=4), behavior=AlwaysTaken())

    def test_branch_without_behavior_raises_on_query(self):
        program = Program()
        insn = Instruction(
            address=0x100, length=4, kind=BranchKind.UNCONDITIONAL_RELATIVE,
            static_target=0x200,
        )
        program.add(insn)
        with pytest.raises(SimulationError):
            program.behavior_of(insn)

    def test_counts_and_footprint(self):
        program = Program()
        program.add(Instruction(address=0x100, length=4))
        program.add(
            Instruction(address=0x104, length=2,
                        kind=BranchKind.UNCONDITIONAL_RELATIVE,
                        static_target=0x100),
            behavior=AlwaysTaken(),
        )
        assert program.instruction_count == 2
        assert program.branch_count == 1
        assert program.footprint_bytes() == 6

    def test_overlap_detected(self):
        program = Program()
        program.add(Instruction(address=0x100, length=6))
        program.add(Instruction(address=0x104, length=2))
        with pytest.raises(SimulationError):
            program.validate()


class TestCodeBuilder:
    def test_straight_lays_out_sequentially(self):
        builder = CodeBuilder(0x1000)
        builder.straight(3, length=4)
        program = builder.build()
        assert sorted(program.instructions) == [0x1000, 0x1004, 0x1008]

    def test_branch_to_forward_label(self):
        builder = CodeBuilder(0x1000)
        skip = builder.forward_label("skip")
        builder.branch(BranchKind.CONDITIONAL_RELATIVE, target=skip,
                       behavior=AlwaysTaken())
        builder.straight(2)
        builder.bind(skip)
        builder.straight(1)
        program = builder.build()
        assert program.at(0x1000).static_target == skip.resolve()

    def test_gap_and_align(self):
        builder = CodeBuilder(0x1000)
        builder.straight(1)
        builder.gap(0x20)
        assert builder.here() == 0x1024
        builder.align(0x100)
        assert builder.here() == 0x1100

    def test_gap_rejects_odd(self):
        with pytest.raises(ValueError):
            CodeBuilder(0x1000).gap(3)

    def test_straight_mixed_average_length(self):
        builder = CodeBuilder(0x1000)
        rng = DeterministicRng(5)
        builder.straight_mixed(1000, rng)
        program = builder.build()
        lengths = [insn.length for insn in program.instructions.values()]
        average = sum(lengths) / len(lengths)
        # The z mix averages ~4.7 bytes (paper: "approximately 5 bytes").
        assert 4.2 < average < 5.2

    def test_entry_point_override(self):
        builder = CodeBuilder(0x1000)
        builder.straight(2)
        program = builder.build(entry_point=0x1004)
        assert program.entry_point == 0x1004

    def test_jump_to_fresh_region(self):
        builder = CodeBuilder(0x1000)
        builder.straight(1)
        builder.jump_to(0x8000)
        builder.straight(1)
        program = builder.build()
        assert 0x8000 in program.instructions
