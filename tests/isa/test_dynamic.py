"""Tests for dynamic instruction/branch records."""

import pytest

from repro.isa.dynamic import DynamicBranch, DynamicInstruction
from repro.isa.instructions import BranchKind, Instruction


def relative_branch(address=0x1000, target=0x2000, kind=BranchKind.CONDITIONAL_RELATIVE):
    return Instruction(address=address, length=4, kind=kind, static_target=target)


def test_dynamic_instruction_basics():
    insn = Instruction(address=0x500, length=2)
    dyn = DynamicInstruction(sequence=7, instruction=insn, thread=1, context=3)
    assert dyn.address == 0x500
    assert not dyn.is_branch
    assert dyn.thread == 1


def test_taken_branch_requires_target():
    with pytest.raises(ValueError):
        DynamicBranch(sequence=0, instruction=relative_branch(), taken=True, target=None)


def test_not_taken_branch_rejects_target():
    with pytest.raises(ValueError):
        DynamicBranch(
            sequence=0, instruction=relative_branch(), taken=False, target=0x2000
        )


def test_non_branch_rejected():
    insn = Instruction(address=0x500, length=2)
    with pytest.raises(ValueError):
        DynamicBranch(sequence=0, instruction=insn, taken=False, target=None)


def test_next_address_taken():
    branch = DynamicBranch(
        sequence=0, instruction=relative_branch(), taken=True, target=0x2000
    )
    assert branch.next_address == 0x2000
    assert branch.next_sequential == 0x1004


def test_next_address_not_taken():
    branch = DynamicBranch(
        sequence=0, instruction=relative_branch(), taken=False, target=None
    )
    assert branch.next_address == 0x1004


def test_kind_passthrough():
    branch = DynamicBranch(
        sequence=0, instruction=relative_branch(), taken=False, target=None
    )
    assert branch.kind is BranchKind.CONDITIONAL_RELATIVE


def test_records_are_immutable():
    branch = DynamicBranch(
        sequence=0, instruction=relative_branch(), taken=False, target=None
    )
    with pytest.raises(AttributeError):
        branch.taken = True
