"""Tests for the static instruction model."""

import pytest

from repro.isa.instructions import (
    BranchKind,
    Instruction,
    static_guess_taken,
    static_target_known,
)


def make_branch(kind, address=0x1000, length=4, target=0x2000):
    if kind in (BranchKind.CONDITIONAL_INDIRECT, BranchKind.UNCONDITIONAL_INDIRECT):
        target = None
    return Instruction(address=address, length=length, kind=kind, static_target=target)


class TestConstruction:
    def test_plain_instruction(self):
        insn = Instruction(address=0x100, length=2)
        assert not insn.is_branch
        assert insn.next_sequential == 0x102

    @pytest.mark.parametrize("length", (2, 4, 6))
    def test_valid_lengths(self, length):
        Instruction(address=0, length=length)

    @pytest.mark.parametrize("length", (0, 1, 3, 5, 8))
    def test_invalid_lengths(self, length):
        with pytest.raises(ValueError):
            Instruction(address=0, length=length)

    def test_misaligned_address_rejected(self):
        with pytest.raises(ValueError):
            Instruction(address=0x101, length=2)

    def test_relative_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(address=0, length=4, kind=BranchKind.CONDITIONAL_RELATIVE)

    def test_indirect_branch_rejects_static_target(self):
        with pytest.raises(ValueError):
            Instruction(
                address=0,
                length=4,
                kind=BranchKind.UNCONDITIONAL_INDIRECT,
                static_target=0x100,
            )

    def test_misaligned_target_rejected(self):
        with pytest.raises(ValueError):
            Instruction(
                address=0,
                length=4,
                kind=BranchKind.UNCONDITIONAL_RELATIVE,
                static_target=0x101,
            )


class TestProperties:
    def test_conditionality(self):
        assert make_branch(BranchKind.CONDITIONAL_RELATIVE).is_conditional
        assert make_branch(BranchKind.CONDITIONAL_INDIRECT).is_conditional
        assert make_branch(BranchKind.LOOP_RELATIVE).is_conditional
        assert not make_branch(BranchKind.UNCONDITIONAL_RELATIVE).is_conditional
        assert not make_branch(BranchKind.UNCONDITIONAL_INDIRECT).is_conditional

    def test_indirection(self):
        assert make_branch(BranchKind.CONDITIONAL_INDIRECT).is_indirect
        assert make_branch(BranchKind.UNCONDITIONAL_INDIRECT).is_indirect
        assert not make_branch(BranchKind.CONDITIONAL_RELATIVE).is_indirect

    def test_next_sequential(self):
        insn = make_branch(BranchKind.CONDITIONAL_RELATIVE, address=0x100, length=6)
        assert insn.next_sequential == 0x106
        assert insn.end_address == 0x106


class TestStaticGuess:
    def test_unconditional_guessed_taken(self):
        assert static_guess_taken(make_branch(BranchKind.UNCONDITIONAL_RELATIVE))
        assert static_guess_taken(make_branch(BranchKind.UNCONDITIONAL_INDIRECT))

    def test_loop_guessed_taken(self):
        assert static_guess_taken(make_branch(BranchKind.LOOP_RELATIVE))

    def test_conditional_guessed_not_taken(self):
        assert not static_guess_taken(make_branch(BranchKind.CONDITIONAL_RELATIVE))
        assert not static_guess_taken(make_branch(BranchKind.CONDITIONAL_INDIRECT))

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            static_guess_taken(Instruction(address=0, length=2))


class TestStaticTargetKnown:
    def test_relative_targets_front_end_computable(self):
        assert static_target_known(make_branch(BranchKind.UNCONDITIONAL_RELATIVE))
        assert static_target_known(make_branch(BranchKind.LOOP_RELATIVE))

    def test_indirect_targets_unknown(self):
        assert not static_target_known(make_branch(BranchKind.UNCONDITIONAL_INDIRECT))

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            static_target_known(Instruction(address=0, length=2))
