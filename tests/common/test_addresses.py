"""Tests for line/address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import addresses

from tests.conftest import branch_addresses


def test_align_down_basic():
    assert addresses.align_down(0) == 0
    assert addresses.align_down(63) == 0
    assert addresses.align_down(64) == 64
    assert addresses.align_down(130, 64) == 128


def test_align_up_basic():
    assert addresses.align_up(0) == 0
    assert addresses.align_up(1) == 64
    assert addresses.align_up(64) == 64
    assert addresses.align_up(65) == 128


def test_align_rejects_bad_alignment():
    with pytest.raises(ValueError):
        addresses.align_down(10, 0)
    with pytest.raises(ValueError):
        addresses.align_up(10, -4)


def test_line_of_and_offset():
    assert addresses.line_of(0x1234) == 0x1200
    assert addresses.line_offset(0x1234) == 0x34
    assert addresses.line_index(0x1234) == 0x1234 // 64


def test_next_line():
    assert addresses.next_line(0) == 64
    assert addresses.next_line(63) == 64
    assert addresses.next_line(64) == 128


def test_lines_between_same_line_is_zero():
    assert addresses.lines_between(0x100, 0x13E) == 0


def test_lines_between_adjacent():
    assert addresses.lines_between(0x100, 0x140) == 1
    assert addresses.lines_between(0x13E, 0x140) == 1


def test_lines_between_rejects_backwards():
    with pytest.raises(ValueError):
        addresses.lines_between(0x200, 0x100)


def test_halfword_alignment():
    assert addresses.is_halfword_aligned(0x1000)
    assert not addresses.is_halfword_aligned(0x1001)


def test_normalize_wraps_to_64_bits():
    assert addresses.normalize(1 << 64) == 0
    assert addresses.normalize((1 << 64) + 5) == 5


@given(st.integers(min_value=0, max_value=2**48))
def test_align_down_le_address_lt_align_up(address):
    down = addresses.align_down(address)
    up = addresses.align_up(address)
    assert down <= address <= up
    assert down % addresses.LINE_SIZE == 0
    assert up % addresses.LINE_SIZE == 0
    assert up - down in (0, addresses.LINE_SIZE)


@given(branch_addresses(max_address=2**48))
def test_line_decomposition_roundtrip(address):
    assert addresses.line_of(address) + addresses.line_offset(address) == address


@given(branch_addresses(max_address=2**48))
def test_halfword_alignment_of_branch_addresses(address):
    # The shared strategy only ever yields legal (even) branch addresses.
    assert addresses.is_halfword_aligned(address)


@given(
    branch_addresses(max_address=2**32),
    st.integers(min_value=0, max_value=2**16),
)
def test_lines_between_is_additive(start, delta):
    end = start + delta
    total = addresses.lines_between(start, end)
    mid = start + delta // 2
    assert total == addresses.lines_between(start, mid) + addresses.lines_between(
        mid, end
    )
