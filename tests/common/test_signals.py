"""GracefulShutdown: first signal is a flag, second means *now*."""

import signal

from repro.common.signals import GracefulShutdown, exit_code_for


def test_exit_code_contract():
    assert exit_code_for(signal.SIGINT) == 130
    assert exit_code_for(signal.SIGTERM) == 143


def test_flag_starts_clear():
    shutdown = GracefulShutdown()
    assert not shutdown.requested
    assert shutdown.signum is None
    assert shutdown.exit_code == 0


def test_programmatic_request_sets_flag_and_exit_code():
    shutdown = GracefulShutdown()
    shutdown.request(signal.SIGTERM)
    assert shutdown.requested
    assert shutdown.exit_code == 143
    # A second request does not overwrite the first signal's identity.
    shutdown.request(signal.SIGINT)
    assert shutdown.exit_code == 143


def test_first_signal_sets_flag_without_raising():
    with GracefulShutdown() as shutdown:
        signal.raise_signal(signal.SIGTERM)
        assert shutdown.requested
        assert shutdown.signum == signal.SIGTERM
        assert shutdown.exit_code == 143


def test_handlers_restored_after_exit():
    previous = signal.getsignal(signal.SIGTERM)
    with GracefulShutdown():
        assert signal.getsignal(signal.SIGTERM) != previous
    assert signal.getsignal(signal.SIGTERM) == previous


def test_checkpoint_loop_drains_current_row():
    """The poll-between-rows idiom: the row in flight always lands."""
    flushed = []
    with GracefulShutdown() as shutdown:
        for row in range(10):
            flushed.append(row)
            if row == 3:
                signal.raise_signal(signal.SIGTERM)
            if shutdown.requested:
                break
    assert flushed == [0, 1, 2, 3]
