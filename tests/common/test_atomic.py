"""The atomic-write discipline: never a torn whole-file document."""

import json
import os

import pytest

from repro.common.atomic import (
    TMP_MARKER,
    append_line,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    discard_stale_temps,
)


def test_atomic_write_text_roundtrip(tmp_path):
    target = tmp_path / "doc.txt"
    atomic_write_text(target, "hello\n")
    assert target.read_text() == "hello\n"
    # Overwrite lands completely, and no temp siblings survive.
    atomic_write_text(target, "goodbye\n")
    assert target.read_text() == "goodbye\n"
    assert [p for p in tmp_path.iterdir()] == [target]


def test_atomic_write_bytes_roundtrip(tmp_path):
    target = tmp_path / "blob.bin"
    payload = bytes(range(256)) * 3
    atomic_write_bytes(target, payload)
    assert target.read_bytes() == payload


def test_atomic_write_json_sorted_and_newline_terminated(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_json(target, {"b": 2, "a": 1}, indent=None,
                      trailing_newline=True)
    text = target.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == {"a": 1, "b": 2}
    assert text.index('"a"') < text.index('"b"')


def test_temp_sibling_never_matches_target_name(tmp_path):
    """A killed writer strands only ``*.tmp.*`` siblings, which loaders
    skip by name; the target itself is either old or new, never mixed."""
    target = tmp_path / "doc.txt"
    atomic_write_text(target, "v1")
    # Simulate the stranded temp of a writer killed before replace.
    stranded = tmp_path / f"doc.txt{TMP_MARKER}1234"
    stranded.write_text("half-writ")
    assert target.read_text() == "v1"
    removed = discard_stale_temps(tmp_path)
    assert removed == 1
    assert not stranded.exists()
    assert target.read_text() == "v1"


def test_discard_stale_temps_ignores_real_files(tmp_path):
    (tmp_path / "keep.json").write_text("{}")
    (tmp_path / "keep2.jsonl").write_text("")
    assert discard_stale_temps(tmp_path) == 0
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "keep.json", "keep2.jsonl",
    ]


def test_append_line_writes_one_flushed_line(tmp_path):
    target = tmp_path / "rows.jsonl"
    with open(target, "w") as stream:
        append_line(stream, json.dumps({"row": 1}))
        # Flushed through to the OS before close: another handle on the
        # same file sees the complete line already.
        assert target.read_text() == '{"row": 1}\n'
        append_line(stream, json.dumps({"row": 2}), fsync=True)
    assert [json.loads(line) for line in target.read_text().splitlines()] \
        == [{"row": 1}, {"row": 2}]


def test_atomic_write_into_missing_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        atomic_write_text(tmp_path / "no" / "such" / "dir.txt", "x")


def test_atomic_write_preserves_other_directory_entries(tmp_path):
    for name in ("a.txt", "b.txt"):
        atomic_write_text(tmp_path / name, name)
    atomic_write_text(tmp_path / "a.txt", "rewritten")
    assert (tmp_path / "a.txt").read_text() == "rewritten"
    assert (tmp_path / "b.txt").read_text() == "b.txt"
    assert len(os.listdir(tmp_path)) == 2
