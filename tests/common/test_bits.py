"""Tests for bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import bits


def test_mask():
    assert bits.mask(0) == 0
    assert bits.mask(1) == 1
    assert bits.mask(8) == 0xFF


def test_mask_rejects_negative():
    with pytest.raises(ValueError):
        bits.mask(-1)


def test_bit_select():
    assert bits.bit_select(0b110100, 2, 3) == 0b101
    assert bits.bit_select(0xFF00, 8, 8) == 0xFF
    assert bits.bit_select(0xFF00, 0, 8) == 0


def test_fold_xor_narrow_value_unchanged():
    assert bits.fold_xor(0b101, 4) == 0b101


def test_fold_xor_folds_chunks():
    # 0xAB ^ 0xCD
    assert bits.fold_xor(0xABCD, 8) == 0xAB ^ 0xCD


def test_fold_xor_zero():
    assert bits.fold_xor(0, 6) == 0


def test_rotate_left():
    assert bits.rotate_left(0b0001, 1, 4) == 0b0010
    assert bits.rotate_left(0b1000, 1, 4) == 0b0001
    assert bits.rotate_left(0b1010, 4, 4) == 0b1010


def test_popcount():
    assert bits.popcount(0) == 0
    assert bits.popcount(0b1011) == 3


def test_sign():
    assert bits.sign(5) == 1
    assert bits.sign(-2) == -1
    assert bits.sign(0) == 0


@given(st.integers(min_value=0, max_value=2**64), st.integers(min_value=1, max_value=24))
def test_fold_xor_fits_in_width(value, width):
    assert 0 <= bits.fold_xor(value, width) <= bits.mask(width)


@given(
    st.integers(min_value=0, max_value=2**16 - 1),
    st.integers(min_value=0, max_value=64),
)
def test_rotate_left_is_invertible(value, amount):
    width = 16
    rotated = bits.rotate_left(value, amount, width)
    back = bits.rotate_left(rotated, width - (amount % width), width)
    assert back == value


@given(st.integers(min_value=0, max_value=2**64))
def test_fold_xor_xor_distributes(value):
    # Folding the XOR of a value with itself is zero.
    assert bits.fold_xor(value ^ value, 10) == 0
