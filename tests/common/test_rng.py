"""Tests for the deterministic RNG wrapper."""

import pytest

from repro.common.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.randint(0, 100) for _ in range(20)] == [
        b.randint(0, 100) for _ in range(20)
    ]


def test_different_seed_different_stream():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.randint(0, 10**9) for _ in range(8)] != [
        b.randint(0, 10**9) for _ in range(8)
    ]


def test_fork_is_stable_and_independent():
    parent = DeterministicRng(7)
    child1 = parent.fork("icache")
    # Drawing from the parent must not change what a fresh fork produces.
    parent.randint(0, 1000)
    child2 = DeterministicRng(7).fork("icache")
    assert [child1.randint(0, 100) for _ in range(10)] == [
        child2.randint(0, 100) for _ in range(10)
    ]


def test_fork_labels_differ():
    parent = DeterministicRng(7)
    a = parent.fork("a")
    b = parent.fork("b")
    assert [a.randint(0, 10**9) for _ in range(8)] != [
        b.randint(0, 10**9) for _ in range(8)
    ]


def test_chance_bounds():
    rng = DeterministicRng(3)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)
    with pytest.raises(ValueError):
        rng.chance(1.5)


def test_weighted_choice_requires_matching_lengths():
    rng = DeterministicRng(3)
    with pytest.raises(ValueError):
        rng.weighted_choice(["a", "b"], [1.0])


def test_weighted_choice_heavy_weight_dominates():
    rng = DeterministicRng(3)
    picks = [rng.weighted_choice(["x", "y"], [0.999, 0.001]) for _ in range(200)]
    assert picks.count("x") > 180


def test_geometric_mean_reasonable():
    rng = DeterministicRng(11)
    draws = [rng.geometric(4.0) for _ in range(5000)]
    mean = sum(draws) / len(draws)
    assert 3.0 < mean < 5.0
    assert min(draws) >= 1


def test_geometric_respects_maximum():
    rng = DeterministicRng(11)
    assert all(rng.geometric(10.0, maximum=4) <= 4 for _ in range(200))


def test_geometric_rejects_mean_below_one():
    rng = DeterministicRng(11)
    with pytest.raises(ValueError):
        rng.geometric(0.5)
