"""Tests for the deterministic RNG wrapper."""

import pytest

from repro.common.rng import DeterministicRng

from tests.conftest import DEFAULT_TEST_SEED


def test_same_seed_same_stream(rng):
    other = DeterministicRng(DEFAULT_TEST_SEED)
    assert [rng.randint(0, 100) for _ in range(20)] == [
        other.randint(0, 100) for _ in range(20)
    ]


def test_different_seed_different_stream():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.randint(0, 10**9) for _ in range(8)] != [
        b.randint(0, 10**9) for _ in range(8)
    ]


def test_fork_is_stable_and_independent():
    parent = DeterministicRng(7)
    child1 = parent.fork("icache")
    # Drawing from the parent must not change what a fresh fork produces.
    parent.randint(0, 1000)
    child2 = DeterministicRng(7).fork("icache")
    assert [child1.randint(0, 100) for _ in range(10)] == [
        child2.randint(0, 100) for _ in range(10)
    ]


def test_fork_labels_differ():
    parent = DeterministicRng(7)
    a = parent.fork("a")
    b = parent.fork("b")
    assert [a.randint(0, 10**9) for _ in range(8)] != [
        b.randint(0, 10**9) for _ in range(8)
    ]


def test_fork_independent_of_parent_draw_order(rng):
    """Forked child streams depend only on (parent seed, label), never
    on how many draws the parent (or sibling forks) made first."""
    undisturbed = DeterministicRng(DEFAULT_TEST_SEED).fork("stimulus")
    expected = [undisturbed.randint(0, 2**16) for _ in range(10)]

    # Interleave parent draws and sibling forks before forking.
    rng.random()
    rng.fork("sibling").randint(0, 100)
    rng.shuffle(list(range(16)))
    disturbed = rng.fork("stimulus")
    assert [disturbed.randint(0, 2**16) for _ in range(10)] == expected


def test_fork_regression_pins():
    """Pinned values: forked streams must be stable across runs,
    processes and (MD5 + Mersenne Twister are both specified) Python
    versions.  A change here means every seeded experiment in the
    repository silently changed."""
    child = DeterministicRng(1234).fork("stimulus")
    assert child.seed == 15825232653346756540
    assert [child.randint(0, 2**16) for _ in range(5)] == [
        43815, 43024, 9229, 18354, 40007,
    ]


def test_nested_fork_regression_pins():
    nested = DeterministicRng(1234).fork("icache").fork("l2")
    assert nested.seed == 309029982079952044
    assert [nested.randint(0, 2**16) for _ in range(5)] == [
        42365, 39127, 39811, 7573, 60343,
    ]


def test_chance_bounds():
    rng = DeterministicRng(3)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)
    with pytest.raises(ValueError):
        rng.chance(1.5)


def test_weighted_choice_requires_matching_lengths():
    rng = DeterministicRng(3)
    with pytest.raises(ValueError):
        rng.weighted_choice(["a", "b"], [1.0])


def test_weighted_choice_heavy_weight_dominates():
    rng = DeterministicRng(3)
    picks = [rng.weighted_choice(["x", "y"], [0.999, 0.001]) for _ in range(200)]
    assert picks.count("x") > 180


def test_geometric_mean_reasonable():
    rng = DeterministicRng(11)
    draws = [rng.geometric(4.0) for _ in range(5000)]
    mean = sum(draws) / len(draws)
    assert 3.0 < mean < 5.0
    assert min(draws) >= 1


def test_geometric_respects_maximum():
    rng = DeterministicRng(11)
    assert all(rng.geometric(10.0, maximum=4) <= 4 for _ in range(200))


def test_geometric_rejects_mean_below_one():
    rng = DeterministicRng(11)
    with pytest.raises(ValueError):
        rng.geometric(0.5)
