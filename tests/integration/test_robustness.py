"""Property-based robustness: the predictor must accept any legal
branch stream — even incoherent ones — without crashing or corrupting
its invariants.

The constrained-random verification driver exists for exactly this
reason; these tests add hypothesis-generated adversarial streams and
check structural invariants after every run.  The event strategy and
the small predictor config come from the shared fixture layer in
``tests/conftest.py``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction

from tests.conftest import (
    BRANCH_KINDS,
    branch_events,
    dynamic_branch_from_event,
    small_predictor_config,
)


def check_invariants(predictor):
    assert predictor.btb1.occupancy <= predictor.btb1.capacity
    for _row, _way, entry in predictor.btb1.entries():
        assert 0 <= entry.bht.value <= 3
        assert entry.offset % 2 == 0
        assert entry.offset < predictor.config.btb1.line_size
        if entry.skoot is not None:
            assert 0 <= entry.skoot <= predictor.config.skoot_max
    if predictor.btb2 is not None:
        assert predictor.btb2.occupancy <= predictor.btb2.capacity
    # Per-row (tag, offset) uniqueness — the dedup port's guarantee.
    seen = set()
    for row, _way, entry in predictor.btb1.entries():
        key = (row, entry.tag, entry.offset)
        assert key not in seen, "duplicate BTB1 entry"
        seen.add(key)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(branch_events(), min_size=1, max_size=120))
def test_random_streams_never_corrupt_state(events):
    predictor = LookaheadBranchPredictor(small_predictor_config())
    predictor.restart(events[0][0], context=events[0][7],
                      thread=events[0][6])
    for sequence, event in enumerate(events):
        branch = dynamic_branch_from_event(sequence, event)
        outcome = predictor.predict_and_resolve(branch)
        assert outcome.record.resolved
    predictor.finalize()
    check_invariants(predictor)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(branch_events(), min_size=1, max_size=60),
       st.integers(min_value=0, max_value=2))
def test_random_streams_with_context_switches(events, switch_every):
    predictor = LookaheadBranchPredictor(small_predictor_config())
    predictor.restart(0)
    for sequence, event in enumerate(events):
        (address, _length, _kind, _static_target, _taken, _target, thread,
         context) = event
        if switch_every and sequence % (switch_every + 2) == 0:
            predictor.context_switch(address, context, thread)
        predictor.predict_and_resolve(
            dynamic_branch_from_event(sequence, event)
        )
    predictor.finalize()
    check_invariants(predictor)


def test_full_z15_config_on_adversarial_burst():
    """The full-size configuration digests a dense burst of conflicting
    same-address branches with alternating kinds."""
    predictor = LookaheadBranchPredictor(z15_config())
    predictor.restart(0x1000)
    sequence = 0
    for repeat in range(200):
        kind = BRANCH_KINDS[repeat % len(BRANCH_KINDS)]
        indirect = kind in (BranchKind.CONDITIONAL_INDIRECT,
                            BranchKind.UNCONDITIONAL_INDIRECT)
        instruction = Instruction(
            address=0x1000, length=4, kind=kind,
            static_target=None if indirect else 0x2000,
        )
        unconditional = kind in (BranchKind.UNCONDITIONAL_RELATIVE,
                                 BranchKind.UNCONDITIONAL_INDIRECT)
        taken = unconditional or (repeat % 3 == 0)
        branch = DynamicBranch(
            sequence=sequence, instruction=instruction, taken=taken,
            target=0x2000 if taken else None,
        )
        sequence += 1
        predictor.predict_and_resolve(branch)
    predictor.finalize()
    assert predictor.btb1.occupancy <= predictor.btb1.capacity
