"""Property-based robustness: the predictor must accept any legal
branch stream — even incoherent ones — without crashing or corrupting
its invariants.

The constrained-random verification driver exists for exactly this
reason; these tests add hypothesis-generated adversarial streams and
check structural invariants after every run.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configs import z15_config
from repro.configs.predictor import Btb1Config, Btb2Config, PredictorConfig
from repro.core import LookaheadBranchPredictor
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction

KINDS = [
    BranchKind.CONDITIONAL_RELATIVE,
    BranchKind.UNCONDITIONAL_RELATIVE,
    BranchKind.LOOP_RELATIVE,
    BranchKind.CONDITIONAL_INDIRECT,
    BranchKind.UNCONDITIONAL_INDIRECT,
]


@st.composite
def branch_events(draw):
    address = draw(st.integers(min_value=0, max_value=2**20)) * 2
    kind = draw(st.sampled_from(KINDS))
    length = draw(st.sampled_from((2, 4, 6)))
    indirect = kind in (BranchKind.CONDITIONAL_INDIRECT,
                        BranchKind.UNCONDITIONAL_INDIRECT)
    static_target = (
        None if indirect else draw(st.integers(min_value=0, max_value=2**20)) * 2
    )
    unconditional = kind in (BranchKind.UNCONDITIONAL_RELATIVE,
                             BranchKind.UNCONDITIONAL_INDIRECT)
    taken = True if unconditional else draw(st.booleans())
    if taken:
        target = (
            static_target
            if static_target is not None
            else draw(st.integers(min_value=0, max_value=2**20)) * 2
        )
    else:
        target = None
    thread = draw(st.integers(min_value=0, max_value=1))
    context = draw(st.integers(min_value=0, max_value=2))
    return (address, length, kind, static_target, taken, target, thread,
            context)


def small_config():
    return PredictorConfig(
        btb1=Btb1Config(rows=16, ways=2, tag_bits=6, policy="lru"),
        btb2=Btb2Config(rows=64, ways=2, staging_capacity=8,
                        transfer_lines=4),
        completion_delay=4,
        name="tiny",
    ).validate()


def check_invariants(predictor):
    assert predictor.btb1.occupancy <= predictor.btb1.capacity
    for _row, _way, entry in predictor.btb1.entries():
        assert 0 <= entry.bht.value <= 3
        assert entry.offset % 2 == 0
        assert entry.offset < predictor.config.btb1.line_size
        if entry.skoot is not None:
            assert 0 <= entry.skoot <= predictor.config.skoot_max
    if predictor.btb2 is not None:
        assert predictor.btb2.occupancy <= predictor.btb2.capacity
    # Per-row (tag, offset) uniqueness — the dedup port's guarantee.
    seen = set()
    for row, _way, entry in predictor.btb1.entries():
        key = (row, entry.tag, entry.offset)
        assert key not in seen, "duplicate BTB1 entry"
        seen.add(key)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(branch_events(), min_size=1, max_size=120))
def test_random_streams_never_corrupt_state(events):
    predictor = LookaheadBranchPredictor(small_config())
    predictor.restart(events[0][0], context=events[0][7],
                      thread=events[0][6])
    for sequence, event in enumerate(events):
        (address, length, kind, static_target, taken, target, thread,
         context) = event
        instruction = Instruction(address=address, length=length, kind=kind,
                                  static_target=static_target)
        branch = DynamicBranch(sequence=sequence, instruction=instruction,
                               taken=taken, target=target, thread=thread,
                               context=context)
        outcome = predictor.predict_and_resolve(branch)
        assert outcome.record.resolved
    predictor.finalize()
    check_invariants(predictor)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(branch_events(), min_size=1, max_size=60),
       st.integers(min_value=0, max_value=2))
def test_random_streams_with_context_switches(events, switch_every):
    predictor = LookaheadBranchPredictor(small_config())
    predictor.restart(0)
    for sequence, event in enumerate(events):
        (address, length, kind, static_target, taken, target, thread,
         context) = event
        if switch_every and sequence % (switch_every + 2) == 0:
            predictor.context_switch(address, context, thread)
        instruction = Instruction(address=address, length=length, kind=kind,
                                  static_target=static_target)
        branch = DynamicBranch(sequence=sequence, instruction=instruction,
                               taken=taken, target=target, thread=thread,
                               context=context)
        predictor.predict_and_resolve(branch)
    predictor.finalize()
    check_invariants(predictor)


def test_full_z15_config_on_adversarial_burst():
    """The full-size configuration digests a dense burst of conflicting
    same-address branches with alternating kinds."""
    predictor = LookaheadBranchPredictor(z15_config())
    predictor.restart(0x1000)
    sequence = 0
    for repeat in range(200):
        kind = KINDS[repeat % len(KINDS)]
        indirect = kind in (BranchKind.CONDITIONAL_INDIRECT,
                            BranchKind.UNCONDITIONAL_INDIRECT)
        instruction = Instruction(
            address=0x1000, length=4, kind=kind,
            static_target=None if indirect else 0x2000,
        )
        unconditional = kind in (BranchKind.UNCONDITIONAL_RELATIVE,
                                 BranchKind.UNCONDITIONAL_INDIRECT)
        taken = unconditional or (repeat % 3 == 0)
        branch = DynamicBranch(
            sequence=sequence, instruction=instruction, taken=taken,
            target=0x2000 if taken else None,
        )
        sequence += 1
        predictor.predict_and_resolve(branch)
    predictor.finalize()
    assert predictor.btb1.occupancy <= predictor.btb1.capacity
