"""Property-based robustness: the predictor must accept any legal
branch stream — even incoherent ones — without crashing or corrupting
its invariants.

The constrained-random verification driver exists for exactly this
reason; these tests add hypothesis-generated adversarial streams and
check structural invariants after every run.  The event strategy and
the small predictor config come from the shared fixture layer in
``tests/conftest.py``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction
# ``check_invariants`` graduated into the library as the structures'
# ``audit()`` hooks (aggregated by ``LookaheadBranchPredictor.audit``);
# re-exported here so older suites importing from this module keep
# working and so the test-side checker can never drift from the
# auditor the fault framework runs in production.
from repro.resilience import assert_healthy, audit_predictor  # noqa: F401

from tests.conftest import (
    BRANCH_KINDS,
    branch_events,
    dynamic_branch_from_event,
    small_predictor_config,
)


def check_invariants(predictor):
    """Assert every structural invariant the library auditor knows:
    BTB1/BTB2 occupancy, field ranges and per-row uniqueness, staging
    queue bounds, TAGE/perceptron ranges, CTB tags, CRS amnesty
    bookkeeping, GPQ occupancy + sequence monotonicity."""
    violations = audit_predictor(predictor)
    assert violations == [], "; ".join(violations)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(branch_events(), min_size=1, max_size=120))
def test_random_streams_never_corrupt_state(events):
    predictor = LookaheadBranchPredictor(small_predictor_config())
    predictor.restart(events[0][0], context=events[0][7],
                      thread=events[0][6])
    for sequence, event in enumerate(events):
        branch = dynamic_branch_from_event(sequence, event)
        outcome = predictor.predict_and_resolve(branch)
        assert outcome.record.resolved
    predictor.finalize()
    check_invariants(predictor)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(branch_events(), min_size=1, max_size=60),
       st.integers(min_value=0, max_value=2))
def test_random_streams_with_context_switches(events, switch_every):
    predictor = LookaheadBranchPredictor(small_predictor_config())
    predictor.restart(0)
    for sequence, event in enumerate(events):
        (address, _length, _kind, _static_target, _taken, _target, thread,
         context) = event
        if switch_every and sequence % (switch_every + 2) == 0:
            predictor.context_switch(address, context, thread)
        predictor.predict_and_resolve(
            dynamic_branch_from_event(sequence, event)
        )
    predictor.finalize()
    check_invariants(predictor)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(branch_events(), min_size=1, max_size=80),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_random_streams_with_fault_injection_stay_legal(events, fault_seed):
    """Injected faults are legal-but-wrong by contract: no fault plan
    may ever trip the structural auditor, so a dirty audit after an
    adversarial stream + aggressive fault campaign is a modelling bug
    (in either the stream handling or a ``corrupt()`` hook)."""
    from repro.resilience import FaultInjector, FaultPlan

    predictor = LookaheadBranchPredictor(small_predictor_config())
    injector = FaultInjector(
        predictor, FaultPlan(seed=fault_seed, rate=1.0, parity=True)
    )
    predictor.restart(events[0][0], context=events[0][7],
                      thread=events[0][6])
    for sequence, event in enumerate(events):
        branch = dynamic_branch_from_event(sequence, event)
        outcome = predictor.predict_and_resolve(branch)
        assert outcome.record.resolved
        injector.inject()
    predictor.finalize()
    check_invariants(predictor)
    assert injector.injected + injector.attempts_empty == len(events)


def test_audit_covers_every_structure():
    """The aggregate auditor visits CTB, CRS, GPQ and the staging queue
    — corrupting any of them by hand must produce a violation."""
    predictor = LookaheadBranchPredictor(small_predictor_config())
    assert audit_predictor(predictor) == []
    # CRS amnesty counter out of range.
    predictor.crs._amnesty_counter = 10**9
    assert any("amnesty" in v for v in audit_predictor(predictor))
    predictor.crs._amnesty_counter = 0
    assert audit_predictor(predictor) == []


def test_full_z15_config_on_adversarial_burst():
    """The full-size configuration digests a dense burst of conflicting
    same-address branches with alternating kinds."""
    predictor = LookaheadBranchPredictor(z15_config())
    predictor.restart(0x1000)
    sequence = 0
    for repeat in range(200):
        kind = BRANCH_KINDS[repeat % len(BRANCH_KINDS)]
        indirect = kind in (BranchKind.CONDITIONAL_INDIRECT,
                            BranchKind.UNCONDITIONAL_INDIRECT)
        instruction = Instruction(
            address=0x1000, length=4, kind=kind,
            static_target=None if indirect else 0x2000,
        )
        unconditional = kind in (BranchKind.UNCONDITIONAL_RELATIVE,
                                 BranchKind.UNCONDITIONAL_INDIRECT)
        taken = unconditional or (repeat % 3 == 0)
        branch = DynamicBranch(
            sequence=sequence, instruction=instruction, taken=taken,
            target=0x2000 if taken else None,
        )
        sequence += 1
        predictor.predict_and_resolve(branch)
    predictor.finalize()
    assert predictor.btb1.occupancy <= predictor.btb1.capacity
