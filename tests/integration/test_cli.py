"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    main(list(argv))
    return capsys.readouterr().out


def test_workloads_lists_suite(capsys):
    out = run_cli(capsys, "workloads")
    assert "transactions" in out
    assert "compute-kernel" in out


def test_run_default(capsys):
    out = run_cli(capsys, "run", "patterned", "--branches", "2000",
                  "--warmup", "500")
    assert "MPKI" in out
    assert "direction providers" in out


def test_run_with_hot_branches(capsys):
    out = run_cli(capsys, "run", "transactions", "--branches", "2000",
                  "--warmup", "500", "--hot-branches")
    assert "hot branches" in out
    assert "concentration" in out


def test_run_with_cprofile(capsys):
    out = run_cli(capsys, "run", "transactions", "--branches", "1000",
                  "--warmup", "0", "--profile", "--profile-top", "5")
    assert "cProfile top 5 by cumulative" in out
    assert "cProfile top 5 by tottime" in out
    assert "run_program" in out


def test_run_fast_mode_matches_reference_stats(capsys, tmp_path):
    import json

    ref_path = tmp_path / "ref.json"
    fast_path = tmp_path / "fast.json"
    run_cli(capsys, "run", "dispatch", "--branches", "1500", "--warmup",
            "300", "--stats-json", str(ref_path))
    run_cli(capsys, "run", "dispatch", "--branches", "1500", "--warmup",
            "300", "--engine-mode", "fast", "--stats-json", str(fast_path))
    ref = json.loads(ref_path.read_text())
    fast = json.loads(fast_path.read_text())
    # The manifest legitimately differs (engine_mode, wall timings);
    # every stat must not.
    assert ref.pop("manifest")["engine_mode"] == "reference"
    assert fast.pop("manifest")["engine_mode"] == "fast"
    assert ref == fast


def test_run_baseline_predictor(capsys):
    out = run_cli(capsys, "run", "patterned", "--predictor", "gshare",
                  "--branches", "1500", "--warmup", "0")
    assert "gshare / patterned" in out


def test_compare(capsys):
    out = run_cli(capsys, "compare", "patterned", "--predictors", "z13",
                  "z15", "--branches", "1500", "--warmup", "500")
    assert "z13" in out and "z15" in out


def test_cycles(capsys):
    out = run_cli(capsys, "cycles", "compute-kernel", "--branches", "1500")
    assert "CPI" in out


def test_cycles_rejects_baseline(capsys):
    with pytest.raises(SystemExit):
        run_cli(capsys, "cycles", "patterned", "--predictor", "gshare")


def test_verify_clean(capsys):
    out = run_cli(capsys, "verify", "--branches", "800", "--preload", "50")
    assert "CLEAN" in out


def test_unknown_predictor(capsys):
    with pytest.raises(SystemExit):
        run_cli(capsys, "run", "patterned", "--predictor", "bogus")


def test_parser_structure():
    parser = build_parser()
    for command in ("run", "compare", "cycles", "verify", "workloads"):
        args = parser.parse_args([command] if command != "run"
                                 else ["run", "patterned"])
        assert args.command == command


def test_state_save_and_load_roundtrip(capsys, tmp_path):
    state_path = str(tmp_path / "state.json")
    out = run_cli(capsys, "run", "patterned", "--branches", "1500",
                  "--warmup", "0", "--save-state", state_path)
    assert "saved state" in out
    out = run_cli(capsys, "run", "patterned", "--branches", "800",
                  "--warmup", "0", "--load-state", state_path)
    assert "restored state" in out


def test_state_options_reject_baselines(capsys, tmp_path):
    with pytest.raises(SystemExit):
        run_cli(capsys, "run", "patterned", "--predictor", "gshare",
                "--branches", "500", "--load-state",
                str(tmp_path / "x.json"))


def test_run_stats_json(capsys, tmp_path):
    import json

    path = str(tmp_path / "stats.json")
    run_cli(capsys, "run", "patterned", "--branches", "1500", "--warmup",
            "300", "--stats-json", path)
    payload = json.load(open(path))
    assert payload["branches"] == 1500
    assert set(payload) >= {"mpki", "direction_accuracy",
                            "dynamic_coverage", "mispredicted_branches"}


def test_run_with_telemetry_report(capsys):
    out = run_cli(capsys, "run", "patterned", "--branches", "1500",
                  "--warmup", "300", "--telemetry")
    assert "telemetry" in out
    assert "[engine]" in out and "[btb1]" in out


def test_compare_stats_json(capsys, tmp_path):
    import json

    path = str(tmp_path / "compare.json")
    run_cli(capsys, "compare", "patterned", "--predictors", "z13", "z15",
            "--branches", "1200", "--warmup", "300", "--stats-json", path)
    payload = json.load(open(path))
    assert set(payload["predictors"]) == {"z13", "z15"}
    assert payload["predictors"]["z15"]["branches"] == 1200


def test_trace_validate_round_trip(capsys, tmp_path):
    path = str(tmp_path / "trace.jsonl")
    out = run_cli(capsys, "trace", "--workload", "patterned", "--branches",
                  "1200", "--interval", "400", "--trace-out", path,
                  "--validate")
    assert f"wrote {path}" in out
    assert "reconciled clean" in out
    from repro.stats.analysis import load_trace

    document = load_trace(path)
    assert len(document.branches) == 1200
    assert document.reconcile() == []


def test_trace_json_export(capsys, tmp_path):
    import json

    path = str(tmp_path / "telemetry.json")
    run_cli(capsys, "trace", "--workload", "patterned", "--branches", "800",
            "--interval", "0", "--json", path)
    payload = json.load(open(path))
    assert payload["counters"]["engine.branches"] == 800
    assert payload["stats"]["branches"] == 800


def test_trace_validate_requires_trace_out(capsys):
    with pytest.raises(SystemExit):
        run_cli(capsys, "trace", "--workload", "patterned", "--branches",
                "200", "--validate")


def test_sweep_telemetry_json(capsys, tmp_path):
    import json

    path = str(tmp_path / "sweep-telemetry.json")
    out = run_cli(capsys, "sweep", "--configs", "z15", "--workloads",
                  "compute-kernel", "--branches", "800", "--warmup", "200",
                  "--telemetry", "--telemetry-json", path)
    assert "fingerprint" in out
    payload = json.load(open(path))
    assert payload["schema"] == "repro-sweep-telemetry/v1"
    cell = payload["cells"][0]
    assert cell["label"] == "z15"
    assert cell["telemetry"]["counters"]["engine.branches"] == 800


# ----------------------------------------------------------------------
# Error handling + the faults subcommand
# ----------------------------------------------------------------------


def test_repro_error_exits_2_with_one_line_message(capsys, tmp_path):
    """Library errors surface as exit code 2 and a single stderr line —
    not a traceback."""
    state_path = tmp_path / "corrupt.json"
    state_path.write_text("this is not json {")
    with pytest.raises(SystemExit) as caught:
        main(["run", "patterned", "--branches", "200", "--warmup", "0",
              "--load-state", str(state_path)])
    assert caught.value.code == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "StateFormatError" in err
    assert "not valid JSON" in err


def test_bad_fault_kind_exits_2(capsys):
    with pytest.raises(SystemExit) as caught:
        main(["faults", "patterned", "--branches", "200",
              "--fault-kinds", "bogus"])
    assert caught.value.code == 2
    assert "ConfigError" in capsys.readouterr().err


def test_faults_campaign_reports_equivalence(capsys):
    out = run_cli(capsys, "faults", "transactions", "--branches", "1500",
                  "--fault-rate", "0.02", "--audit-interval", "500")
    assert "fault campaign" in out
    assert "architectural equivalence: CLEAN" in out
    assert "injected" in out and "recovered" in out


def test_faults_stats_json(capsys, tmp_path):
    import json

    path = str(tmp_path / "faults.json")
    run_cli(capsys, "faults", "compute-kernel", "--branches", "1000",
            "--fault-rate", "0.05", "--fault-seed", "7", "--no-parity",
            "--fault-kinds", "btb1", "tage", "--stats-json", path)
    payload = json.load(open(path))
    assert payload["schema"] == "repro-faults/v1"
    assert payload["plan"] == {"seed": 7, "rate": 0.05,
                               "kinds": ["btb1", "tage"], "parity": False,
                               "audit_interval": 1000}
    assert payload["architecturally_equivalent"] is True
    assert payload["counters"]["recovered"] == 0  # parity off
    assert payload["counters"]["branches_seen"] == 1000
    assert payload["mpki_delta"] == (payload["faulted"]["mpki"]
                                     - payload["baseline"]["mpki"])


def test_sweep_surfaces_cell_errors_instead_of_aborting(capsys, monkeypatch):
    """A cell whose worker raises fills its row with FAILED and the
    sweep exits 1 after completing every other cell."""
    from repro.engine import parallel as parallel_module

    real_run_spec = parallel_module._run_spec

    def exploding_run_spec(spec):
        if spec.seed == 2:
            raise RuntimeError("injected cell failure")
        return real_run_spec(spec)

    monkeypatch.setattr(parallel_module, "_run_spec", exploding_run_spec)
    with pytest.raises(SystemExit) as caught:
        main(["sweep", "--configs", "z15", "--workloads", "compute-kernel",
              "--seeds", "1", "2", "3", "--branches", "400", "--warmup",
              "100", "--cell-retries", "0"])
    assert caught.value.code == 1
    out = capsys.readouterr().out
    assert "FAILED error" in out
    assert "injected cell failure" in out
    assert out.count("\n1 cell(s) failed") or "1 cell(s) failed" in out
    # The innocent cells still rendered normal rows.
    assert out.count("compute-kernel") >= 3


# ----------------------------------------------------------------------
# Observability surface: manifests, spans, metrics, export, report
# ----------------------------------------------------------------------


def test_run_stats_json_embeds_manifest(capsys, tmp_path):
    import json

    path = str(tmp_path / "stats.json")
    run_cli(capsys, "run", "patterned", "--branches", "1000", "--warmup",
            "200", "--stats-json", path)
    manifest = json.load(open(path))["manifest"]
    assert manifest["schema"] == "repro-manifest/v1"
    assert manifest["kind"] == "run"
    assert manifest["config"]["name"] == "z15"
    assert manifest["workload"] == "patterned"
    assert manifest["stats"]["fingerprint"]
    assert manifest["timings"]["wall_seconds"] > 0


def test_run_metrics_out_writes_openmetrics(capsys, tmp_path):
    from repro.obs.export import parse_openmetrics, to_openmetrics

    path = str(tmp_path / "run.om")
    out = run_cli(capsys, "run", "patterned", "--branches", "1000",
                  "--warmup", "200", "--metrics-out", path)
    assert "telemetry" in out  # --metrics-out implies --telemetry
    text = open(path).read()
    assert text.endswith("# EOF\n")
    assert to_openmetrics(parse_openmetrics(text)) == text


def test_run_spans_out_traces_engine_phases(capsys, tmp_path):
    from repro.obs.spans import load_spans

    path = str(tmp_path / "spans.jsonl")
    run_cli(capsys, "run", "patterned", "--branches", "1000", "--warmup",
            "200", "--spans-out", path)
    document = load_spans(path)
    names = {span["name"] for span in document["spans"]}
    assert {"engine.warmup", "engine.counted", "engine.finalize"} <= names
    assert "engine.counted" in document["summary"]["phase_latency"]


def test_sweep_stream_embeds_manifest_and_spans(capsys, tmp_path):
    from repro.engine.stream import load_stream, load_stream_manifest
    from repro.obs.spans import load_spans

    stream = str(tmp_path / "stream.jsonl")
    spans = str(tmp_path / "spans.jsonl")
    run_cli(capsys, "sweep", "--configs", "z15", "--workloads",
            "transactions", "--seeds", "1", "2", "--branches", "500",
            "--warmup", "100", "--stream-out", stream, "--spans-out", spans)
    manifest = load_stream_manifest(stream)
    assert manifest["kind"] == "sweep"
    assert manifest["grid"]["cells"] == 2
    assert len(load_stream(stream)) == 2
    names = {span["name"] for span in load_spans(spans)["spans"]}
    assert "execute" in names and "serialize" in names


def test_sweep_metrics_out_rolls_up_cells(capsys, tmp_path):
    from repro.obs.export import parse_openmetrics

    path = str(tmp_path / "sweep.om")
    run_cli(capsys, "sweep", "--configs", "z15", "--workloads",
            "transactions", "compute-kernel", "--seeds", "1", "--branches",
            "500", "--warmup", "100", "--metrics-out", path)
    groups = parse_openmetrics(open(path).read())
    label_sets = [dict(labels) for labels, _ in groups]
    assert {"backend": "object", "engine_mode": "reference",
            "workload": "transactions"} in label_sets
    assert {} in label_sets  # unlabeled grand total


def test_export_openmetrics_from_stream(capsys, tmp_path):
    stream = str(tmp_path / "stream.jsonl")
    run_cli(capsys, "sweep", "--configs", "z15", "--workloads",
            "transactions", "--seeds", "1", "--branches", "500",
            "--warmup", "100", "--telemetry", "--stream-out", stream)
    out = run_cli(capsys, "export", stream)
    assert "# EOF" in out
    assert 'workload="transactions"' in out


def test_export_json_format(capsys, tmp_path):
    import json

    stream = str(tmp_path / "stream.jsonl")
    run_cli(capsys, "sweep", "--configs", "z15", "--workloads",
            "transactions", "--seeds", "1", "--branches", "500",
            "--warmup", "100", "--telemetry", "--stream-out", stream)
    out = run_cli(capsys, "export", stream, "--format", "json")
    payload = json.loads(out)
    assert payload["groups"][0]["labels"]["workload"] == "transactions"


def test_export_rejects_telemetry_free_stream(capsys, tmp_path):
    stream = str(tmp_path / "stream.jsonl")
    run_cli(capsys, "sweep", "--configs", "z15", "--workloads",
            "transactions", "--seeds", "1", "--branches", "500",
            "--warmup", "100", "--stream-out", stream)
    with pytest.raises(SystemExit):
        run_cli(capsys, "export", stream)


def test_sweep_history_and_report_dashboard(capsys, tmp_path):
    history = str(tmp_path / "history.jsonl")
    for _ in range(2):
        run_cli(capsys, "sweep", "--configs", "z15", "--workloads",
                "transactions", "--seeds", "1", "--branches", "500",
                "--warmup", "100", "--history", history)
    out = run_cli(capsys, "report", str(tmp_path), "--title", "cli smoke")
    assert out.startswith("# cli smoke")
    assert "history" in out
    assert "vs previous" in out or "Regressions" in out


def test_report_writes_markdown_file(capsys, tmp_path):
    import json as json_module

    stats = str(tmp_path / "stats.json")
    run_cli(capsys, "run", "patterned", "--branches", "1000", "--warmup",
            "200", "--stats-json", stats)
    # A bare manifest artifact: reports classify and table it.
    manifest_path = tmp_path / "manifest.json"
    manifest_path.write_text(json_module.dumps(
        json_module.load(open(stats))["manifest"]))
    out_path = str(tmp_path / "DASH.md")
    run_cli(capsys, "report", str(manifest_path), "--out", out_path)
    text = open(out_path).read()
    assert "Manifests" in text or "manifest" in text
