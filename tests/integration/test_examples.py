"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs as a subprocess with small work budgets.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "patterned", "2000")
    assert "MPKI" in out
    assert "structure occupancy" in out


def test_quickstart_rejects_unknown_workload():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "nope"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode != 0


def test_generation_comparison():
    out = run_example("generation_comparison.py", "1500")
    for name in ("zEC12", "z13", "z14", "z15"):
        assert name in out


def test_lookahead_prefetch():
    out = run_example("lookahead_prefetch.py", "2500")
    assert "prefetching saved" in out


def test_verification_demo():
    out = run_example("verification_demo.py", "1200")
    assert "CLEAN" in out
    assert "FAILURES" in out  # the injected-defect campaign


def test_custom_workload():
    out = run_example("custom_workload.py", "1500")
    assert "matches live run" in out


def test_smt2_interference():
    out = run_example("smt2_interference.py", "3000")
    assert "SMT2 interleaved" in out
    assert "cycles/taken" in out


def test_workload_cloning():
    out = run_example("workload_cloning.py", "2500")
    assert "clone profile" in out
    assert "MPKI" in out
