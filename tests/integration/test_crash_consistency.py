"""Property: a child killed mid-checkpoint at ANY byte offset recovers.

The durable-state contract (``repro.serve.journal`` riding
``repro.common.atomic``) claims a crash at any byte of any write leaves
a recoverable spool: either the batch landed in the journal (replay
reproduces it) or it did not (the client's resend recomputes it) —
never a state that serves a different stream.  Hypothesis drives a real
child process that tears its own journal append at a randomized byte
offset and dies with ``os._exit`` (the faithful SIGKILL analogue: no
atexit, no flush), then the parent recovers the spool and finishes the
stream; the final fingerprint chain must equal the uninterrupted run's.
"""

import functools
import os
import subprocess
import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.serve.client import TenantPlan, reference_fingerprint
from repro.serve.shard import TenantState

#: One fixed plan per test run: the oracle is computed once.
_PLAN_ARGS = dict(workload="transactions", seed=13, branches=120,
                  batch_size=20)

#: Child driver: serve batches, arming the tear before batch
#: ``tear_batch`` so the journal append for it crashes ``tear_bytes``
#: bytes in (os._exit: nothing is flushed or unwound on the way down).
_CHILD = """
import sys
from repro.serve.client import TenantPlan
from repro.serve.shard import TenantState

spool, tear_batch, tear_bytes, checkpoint_every = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
plan = TenantPlan("t0", workload="transactions", seed=13, branches=120,
                  batch_size=20)
state = TenantState("t0", "z15", "object", spool,
                    checkpoint_every=checkpoint_every)
state.open_fresh()
for seq, rows in enumerate(plan.batches()):
    if seq == tear_batch:
        state.journal.tear_after_bytes = tear_bytes
    response = state.predict(seq, rows)
    assert "rejected" not in response, response
state.close()
sys.exit(0)
"""


@functools.lru_cache(maxsize=1)
def _oracle():
    return reference_fingerprint(TenantPlan("t0", **_PLAN_ARGS))


def _run_child(spool, tear_batch, tear_bytes, checkpoint_every):
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _CHILD, str(spool), str(tear_batch),
         str(tear_bytes), str(checkpoint_every)],
        env=env, capture_output=True, text=True, timeout=120,
    )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    tear_batch=st.integers(min_value=0, max_value=5),
    tear_bytes=st.integers(min_value=0, max_value=512),
    checkpoint_every=st.sampled_from([0, 2, 3]),
)
def test_torn_append_at_any_offset_recovers_exactly(
        tmp_path_factory, tear_batch, tear_bytes, checkpoint_every):
    spool = tmp_path_factory.mktemp("spool")
    child = _run_child(spool, tear_batch, tear_bytes, checkpoint_every)
    # The tear always fires (70 is its private exit code); anything else
    # means the child died some *other* way, which is a real failure.
    assert child.returncode == 70, (child.returncode, child.stderr)

    recovered = TenantState.recover("t0", spool,
                                    checkpoint_every=checkpoint_every)
    plan = TenantPlan("t0", **_PLAN_ARGS)
    batches = plan.batches()
    # The crash may only have lost un-acknowledged work: recovery lands
    # at or before the torn batch, never past it.
    assert 0 <= recovered.next_seq <= tear_batch + 1
    last = None
    for seq in range(recovered.next_seq, len(batches)):
        last = recovered.predict(seq, batches[seq])
        assert "rejected" not in last, last
    recovered.close()
    assert last is not None
    assert last["fingerprint"] == _oracle()["fingerprint"]


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(junk=st.binary(min_size=0, max_size=64), data=st.data())
def test_stranded_snapshot_temp_never_corrupts_recovery(
        tmp_path_factory, junk, data):
    """A writer killed before the atomic rename strands only a
    ``*.tmp.*`` sibling; recovery reads the intact previous snapshot."""
    from repro.common.atomic import TMP_MARKER

    spool = tmp_path_factory.mktemp("spool")
    plan = TenantPlan("t0", **_PLAN_ARGS)
    batches = plan.batches()
    state = TenantState("t0", "z15", "object", spool, checkpoint_every=2)
    state.open_fresh()
    upto = data.draw(st.integers(min_value=2, max_value=len(batches)))
    for seq in range(upto):
        state.predict(seq, batches[seq])
    state.journal.close()  # crash, not close(): no final checkpoint

    snapshot = state.paths.snapshot
    stranded = snapshot.with_name(snapshot.name + TMP_MARKER + "dead")
    stranded.write_bytes(junk)

    recovered = TenantState.recover("t0", spool, checkpoint_every=2)
    assert recovered.next_seq == upto
    last = None
    for seq in range(upto, len(batches)):
        last = recovered.predict(seq, batches[seq])
    recovered.close()
    final = (last or recovered.last_response)["fingerprint"] \
        if (last or recovered.last_response) else recovered.fingerprint
    assert final == _oracle()["fingerprint"]


def test_resume_equals_uninterrupted_without_any_crash(tmp_path):
    """Control arm: split the same stream over two processes' worth of
    lifecycles with clean closes — identical chain, same oracle."""
    plan = TenantPlan("t0", **_PLAN_ARGS)
    batches = plan.batches()
    state = TenantState("t0", "z15", "object", tmp_path,
                        checkpoint_every=3)
    state.open_fresh()
    for seq in range(len(batches) // 2):
        state.predict(seq, batches[seq])
    state.close()
    resumed = TenantState.recover("t0", tmp_path, checkpoint_every=3)
    last = None
    for seq in range(resumed.next_seq, len(batches)):
        last = resumed.predict(seq, batches[seq])
    resumed.close()
    assert last["fingerprint"] == _oracle()["fingerprint"]
