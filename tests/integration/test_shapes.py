"""Integration tests: the paper's qualitative claims, end to end.

Each test is a miniature of one benchmark: it checks the *shape* the
paper reports (who wins, in which direction a mechanism moves the
metric), not absolute numbers.
"""

import dataclasses

import pytest

from repro.configs import z13_config, z14_config, z15_config, zec12_config
from repro.configs.predictor import (
    CpredConfig,
    CrsConfig,
    CtbConfig,
    PerceptronConfig,
    PhtConfig,
)
from repro.core import LookaheadBranchPredictor
from repro.core.providers import DirectionProvider, TargetProvider
from repro.engine import FunctionalEngine
from repro.workloads import get_workload


def run_config(config, workload, branches=6000, warmup=3000, seed=1):
    engine = FunctionalEngine(LookaheadBranchPredictor(config))
    return engine.run_program(get_workload(workload, seed),
                              max_branches=branches, warmup_branches=warmup)


def z15_variant(**overrides):
    config = z15_config()
    for key, value in overrides.items():
        setattr(config, key, value)
    return config.validate()


class TestGenerationShape:
    """Conclusion: MPKI decreases z13 -> z14 -> z15 on LSPR workloads."""

    def test_mpki_improves_across_generations(self):
        """Average over a small LSPR-like suite (the conclusion's claim
        is about workload averages, not any single program)."""
        suite = ["transactions", "correlated", "footprint-medium"]
        results = {}
        for factory in (z13_config, z14_config, z15_config):
            total = 0.0
            for workload in suite:
                config = factory()
                stats = run_config(config, workload, branches=8000,
                                   warmup=4000)
                total += stats.mpki
            results[factory().name] = total / len(suite)
        assert results["z14"] < results["z13"]
        assert results["z15"] < results["z14"]

    def test_zec12_worst_on_large_footprint(self):
        from repro.workloads.generators import large_footprint_program

        def ring():
            return large_footprint_program(block_count=2048, taken_bias=0.4,
                                           seed=7, name="gen-ring")

        old_engine = FunctionalEngine(LookaheadBranchPredictor(zec12_config()))
        old = old_engine.run_program(ring(), max_branches=12000,
                                     warmup_branches=12000)
        new_engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
        new = new_engine.run_program(ring(), max_branches=12000,
                                     warmup_branches=12000)
        assert new.mpki < old.mpki
        assert new.dynamic_coverage > old.dynamic_coverage


class TestTageShape:
    """Section V: the TAGE PHT learns path-dependent directions."""

    def test_tage_beats_bht_only_on_patterns(self):
        with_tage = run_config(z15_config(), "patterned")
        no_pht = z15_config()
        no_pht.pht = PhtConfig(tage=True, rows=512, ways=8)
        # Disable by never allowing aux: emulate with bidirectional off is
        # intrusive; instead compare against the z13-era single PHT with
        # tiny capacity.
        small = z15_config()
        small.pht = PhtConfig(tage=False, rows=8, ways=1, short_history=9,
                              long_history=9)
        small.validate()
        with_small = run_config(small, "patterned")
        assert with_tage.mpki <= with_small.mpki

    def test_pht_becomes_provider_for_loops(self):
        stats = run_config(z15_config(), "compute-kernel")
        pht_share = (
            stats.provider_share(DirectionProvider.PHT_SHORT)
            + stats.provider_share(DirectionProvider.PHT_LONG)
            + stats.provider_share(DirectionProvider.SPHT)
        )
        assert pht_share > 0.05


class TestPerceptronShape:
    def test_perceptron_disabled_is_not_better(self):
        enabled = run_config(z15_config(), "correlated")
        disabled = z15_variant(
            perceptron=PerceptronConfig(enabled=False)
        )
        without = run_config(disabled, "correlated")
        assert enabled.mpki <= without.mpki + 0.5


class TestBtb2Shape:
    """Sections II.A/III: the BTB2 recovers large-footprint coverage."""

    def test_btb2_improves_coverage_under_capacity_pressure(self):
        """A BTB1 too small for the footprint is backfilled from the
        BTB2; both coverage and MPKI improve."""
        from repro.configs.predictor import Btb1Config
        from repro.workloads.generators import large_footprint_program

        def ring():
            return large_footprint_program(block_count=256, taken_bias=0.4,
                                           seed=7, name="btb2-ring")

        def tiny_btb1_config(with_btb2):
            config = z15_config()
            config.btb1 = Btb1Config(rows=64, ways=4, policy="lru")
            if not with_btb2:
                config.btb2 = None
            return config.validate()

        with_engine = FunctionalEngine(
            LookaheadBranchPredictor(tiny_btb1_config(True))
        )
        with_btb2 = with_engine.run_program(ring(), max_branches=8000,
                                            warmup_branches=4000)
        without_engine = FunctionalEngine(
            LookaheadBranchPredictor(tiny_btb1_config(False))
        )
        without = without_engine.run_program(ring(), max_branches=8000,
                                             warmup_branches=4000)
        assert with_btb2.dynamic_coverage > without.dynamic_coverage
        assert with_btb2.mpki < without.mpki

    def test_btb2_irrelevant_when_footprint_fits(self):
        with_btb2 = run_config(z15_config(), "compute-kernel")
        without = run_config(z15_variant(btb2=None), "compute-kernel")
        assert abs(with_btb2.mpki - without.mpki) < 0.5


class TestSkootShape:
    """Section IV: SKOOT removes empty sequential searches."""

    def test_skoot_reduces_searches(self):
        with_skoot = run_config(z15_config(), "transactions")
        without = run_config(z15_variant(skoot_enabled=False), "transactions")
        assert with_skoot.lines_searched < without.lines_searched
        assert with_skoot.lines_skipped_by_skoot > 0

    def test_skoot_does_not_hurt_accuracy(self):
        with_skoot = run_config(z15_config(), "transactions")
        without = run_config(z15_variant(skoot_enabled=False), "transactions")
        assert with_skoot.mpki <= without.mpki * 1.1 + 0.5


class TestCrsShape:
    """Section VI: the CRS predicts call/return targets."""

    def test_crs_provides_correct_return_targets(self):
        stats = run_config(z15_config(), "services")
        crs_accuracy = stats.target_provider_accuracy(TargetProvider.CRS)
        assert crs_accuracy is not None, "CRS never used"
        assert crs_accuracy > 0.9

    def test_crs_disabled_falls_to_ctb_or_btb(self):
        without = run_config(z15_variant(crs=CrsConfig(enabled=False)),
                             "services")
        assert without.target_provider_accuracy(TargetProvider.CRS) is None
        with_crs = run_config(z15_config(), "services")
        assert with_crs.mpki <= without.mpki + 0.5


class TestCtbShape:
    """Section VI: the CTB predicts path-correlated changing targets."""

    def test_ctb_carries_dispatch_targets(self):
        stats = run_config(z15_config(), "dispatch")
        ctb_accuracy = stats.target_provider_accuracy(TargetProvider.CTB)
        assert ctb_accuracy is not None, "CTB never used"
        assert ctb_accuracy > 0.8

    def test_tiny_ctb_hurts_dispatch(self):
        tiny = z15_variant(ctb=CtbConfig(rows=1, ways=1, history=17))
        small_stats = run_config(tiny, "dispatch")
        full_stats = run_config(z15_config(), "dispatch")
        assert full_stats.mpki <= small_stats.mpki


class TestCpredShape:
    def test_cpred_accelerates_steady_streams(self):
        stats = run_config(z15_config(), "compute-kernel")
        assert stats.cpred_accelerated_streams > 0

    def test_cpred_disabled_removes_acceleration(self):
        stats = run_config(z15_variant(cpred=CpredConfig(enabled=False)),
                           "compute-kernel")
        assert stats.cpred_accelerated_streams == 0


class TestSpeculativeOverlayShape:
    """Section IV: SBHT/SPHT stop weak-state flutter under delayed
    updates."""

    def test_overlays_cut_flip_window_mispredicts(self):
        """A branch flipping direction with a long in-flight window: the
        corrected SBHT/SPHT entry stops the repeat mispredicts."""
        from repro.configs.predictor import SpeculativeOverlayConfig
        from repro.workloads.generators import pattern_program

        def flip_program():
            return pattern_program([[True] * 30 + [False] * 30])

        def run(enabled):
            config = z15_config()
            config.completion_delay = 24
            if not enabled:
                config.speculative = SpeculativeOverlayConfig(enabled=False)
            config.validate()
            engine = FunctionalEngine(LookaheadBranchPredictor(config))
            return engine.run_program(flip_program(), max_branches=3000,
                                      warmup_branches=0)

        with_overlays = run(True)
        without = run(False)
        assert with_overlays.mispredicted_branches < \
            without.mispredicted_branches
