"""SMT2 functional behaviour: per-thread state over shared tables."""

import pytest

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction
from repro.workloads import Smt2Run, get_workload
from repro.workloads.generators import loop_nest_program, pattern_program


def run_smt2(program_a, program_b, branches=6000, seed=3):
    run = Smt2Run(program_a, program_b, seed=seed)
    engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
    stats = engine.run_events(run.run(branches))
    stats.instructions = run.instructions_executed
    return stats, engine.predictor


class TestSmt2Run:
    def test_branch_count_and_alternation(self):
        run = Smt2Run(loop_nest_program(depths=(5, 3)),
                      pattern_program([[True, False]]), seed=1)
        events = list(run.run(200))
        branches = [e for e in events if isinstance(e, DynamicBranch)]
        assert len(branches) == 200
        threads = [b.thread for b in branches]
        # Strict alternation with interleave=1.
        assert threads[:6] == [0, 1, 0, 1, 0, 1]

    def test_sequences_global_monotonic(self):
        run = Smt2Run(loop_nest_program(depths=(5, 3)),
                      pattern_program([[True, False]]), seed=1)
        branches = [e for e in run.run(100) if isinstance(e, DynamicBranch)]
        sequences = [b.sequence for b in branches]
        assert sequences == sorted(set(sequences))

    def test_contexts_distinct(self):
        run = Smt2Run(loop_nest_program(depths=(5, 3)),
                      pattern_program([[True, False]]), seed=1)
        branches = [e for e in run.run(50) if isinstance(e, DynamicBranch)]
        assert {b.context for b in branches} == {0, 1}

    def test_interleave_validation(self):
        with pytest.raises(ValueError):
            Smt2Run(loop_nest_program(), loop_nest_program(), interleave=0)


class TestSmt2Prediction:
    def test_both_threads_converge(self):
        """Two predictable workloads interleaved both reach near-perfect
        accuracy despite sharing every table."""
        stats, _ = run_smt2(
            pattern_program([[True, True, False]], start=0x20000,
                            name="thread-a"),
            loop_nest_program(depths=(8, 4), start=0x80000),
            branches=8000,
        )
        assert stats.direction_accuracy > 0.97
        assert stats.mpki < 8.0

    def test_threads_do_not_cross_predict(self):
        """Interleaving two threads must not degrade them versus running
        each alone (per-thread search/GPV state; shared tables are big
        enough for both)."""
        def single(program):
            engine = FunctionalEngine(LookaheadBranchPredictor(z15_config()))
            return engine.run_program(program, max_branches=3000,
                                      warmup_branches=0)

        alone_a = single(loop_nest_program(depths=(6, 4), start=0x20000))
        alone_b = single(loop_nest_program(depths=(6, 4), start=0x90000))
        stats, _ = run_smt2(
            loop_nest_program(depths=(6, 4), start=0x20000),
            loop_nest_program(depths=(6, 4), start=0x90000),
            branches=6000,
        )
        alone_total = alone_a.mispredicted_branches + alone_b.mispredicted_branches
        assert stats.mispredicted_branches <= alone_total * 1.15 + 10

    def test_per_thread_crs_stacks(self):
        """Interleaved call/return pairs on both threads stay matched
        because the CRS stacks are per thread."""
        predictor = LookaheadBranchPredictor(z15_config())
        predictor.restart(0x1000, context=0, thread=0)
        predictor.restart(0x50000, context=1, thread=1)

        def call(address, target, thread, context, sequence):
            insn = Instruction(address=address, length=4,
                               kind=BranchKind.UNCONDITIONAL_RELATIVE,
                               static_target=target)
            return DynamicBranch(sequence=sequence, instruction=insn,
                                 taken=True, target=target, thread=thread,
                                 context=context)

        def ret(address, target, thread, context, sequence):
            insn = Instruction(address=address, length=4,
                               kind=BranchKind.UNCONDITIONAL_INDIRECT)
            return DynamicBranch(sequence=sequence, instruction=insn,
                                 taken=True, target=target, thread=thread,
                                 context=context)

        sequence = 0
        outcomes = []
        # Each thread has two call sites sharing one function, so its
        # return is genuinely multi-target and escalates to the CRS.
        sites = {
            0: {"fn": 0x8000, "ret": 0x8010, "calls": [0x1000, 0x3000]},
            1: {"fn": 0x60000, "ret": 0x60010, "calls": [0x50000, 0x52000]},
        }
        for repeat in range(16):
            events = []
            for thread in (0, 1):
                layout = sites[thread]
                site = layout["calls"][repeat % 2]
                other = layout["calls"][(repeat + 1) % 2]
                events.append(
                    call(site, layout["fn"], thread, thread, 0)
                )
                events.append(
                    ret(layout["ret"], site + 4, thread, thread, 0)
                )
                events.append(
                    call(site + 0x44, other, thread, thread, 0)
                )
            # Interleave the two threads' events.
            for event in [events[0], events[3], events[1], events[4],
                          events[2], events[5]]:
                stamped = DynamicBranch(
                    sequence=sequence,
                    instruction=event.instruction,
                    taken=event.taken,
                    target=event.target,
                    thread=event.thread,
                    context=event.context,
                )
                sequence += 1
                outcomes.append(predictor.predict_and_resolve(stamped))
        predictor.finalize()
        # Steady state: both threads' returns predicted via CRS without
        # target mispredicts (cross-threaded stacks would corrupt them).
        from repro.core.providers import TargetProvider

        crs_uses = [o for o in outcomes
                    if o.record.target_provider is TargetProvider.CRS]
        assert crs_uses, "CRS never engaged"
        tail = crs_uses[len(crs_uses) // 2:]
        assert all(not o.record.target_wrong for o in tail)
        assert {o.record.thread for o in crs_uses} == {0, 1}

    def test_mixed_with_unpredictable_thread(self):
        """An unpredictable thread degrades itself, not its sibling."""
        from repro.workloads.generators import large_footprint_program

        predictable = pattern_program([[True, False]], start=0x20000,
                                      name="predictable")
        noisy = large_footprint_program(block_count=64,
                                        deterministic_fraction=0.0,
                                        seed=9, start=0x400000,
                                        name="noisy")
        stats, _ = run_smt2(predictable, noisy, branches=8000)
        # Accuracy on thread 0's pattern branches stays high: filter by
        # address range.
        # (RunStats aggregates; this checks the blend is better than the
        # noisy thread alone could be.)
        assert stats.direction_accuracy > 0.75
