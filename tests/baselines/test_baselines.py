"""Tests for the baseline predictors."""

import pytest

from repro.baselines import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    DirectMappedBtb,
    GsharePredictor,
    LTagePredictor,
    StaticBtfntPredictor,
)
from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine import FunctionalEngine
from repro.workloads import get_workload


def accuracy(predictor, workload="patterned", branches=4000, warmup=1000):
    engine = FunctionalEngine(predictor)
    stats = engine.run_program(get_workload(workload), max_branches=branches,
                               warmup_branches=warmup)
    return stats


class TestDirectMappedBtb:
    def test_install_lookup(self):
        btb = DirectMappedBtb(64)
        assert btb.lookup(0x1000) is None
        btb.install(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_conflict_overwrites(self):
        btb = DirectMappedBtb(4)
        btb.install(0x1000, 0x2000)
        btb.install(0x1000 + 4 * 2, 0x3000)  # same index, different tag
        assert btb.lookup(0x1000) is None

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DirectMappedBtb(100)


class TestProtocol:
    @pytest.mark.parametrize(
        "factory",
        [AlwaysTakenPredictor, StaticBtfntPredictor, BimodalPredictor,
         GsharePredictor, LTagePredictor],
    )
    def test_runs_through_engine(self, factory):
        stats = accuracy(factory(), branches=1000, warmup=0)
        assert stats.branches == 1000
        assert 0 <= stats.direction_accuracy <= 1


class TestRelativeStrength:
    def test_bimodal_beats_static_on_biased_branches(self):
        bimodal = accuracy(BimodalPredictor(), workload="compute-kernel")
        static = accuracy(StaticBtfntPredictor(), workload="compute-kernel")
        assert bimodal.direction_accuracy >= static.direction_accuracy

    def test_gshare_beats_bimodal_on_patterns(self):
        gshare = accuracy(GsharePredictor(), workload="patterned")
        bimodal = accuracy(BimodalPredictor(), workload="patterned")
        assert gshare.direction_accuracy > bimodal.direction_accuracy

    def test_ltage_learns_patterns(self):
        ltage = accuracy(LTagePredictor(), workload="patterned")
        assert ltage.direction_accuracy > 0.99

    def test_z15_model_at_least_matches_gshare_on_patterns(self):
        z15 = accuracy(
            LookaheadBranchPredictor(z15_config()), workload="patterned"
        )
        gshare = accuracy(GsharePredictor(), workload="patterned")
        assert z15.direction_accuracy >= gshare.direction_accuracy - 0.01


class TestBimodalBehaviour:
    def test_learns_bias(self):
        from repro.isa.dynamic import DynamicBranch
        from repro.isa.instructions import BranchKind, Instruction

        predictor = BimodalPredictor()
        insn = Instruction(address=0x1000, length=4,
                           kind=BranchKind.CONDITIONAL_RELATIVE,
                           static_target=0x2000)
        for sequence in range(4):
            predictor.predict_and_resolve(
                DynamicBranch(sequence=sequence, instruction=insn, taken=True,
                              target=0x2000)
            )
        outcome = predictor.predict_and_resolve(
            DynamicBranch(sequence=5, instruction=insn, taken=True,
                          target=0x2000)
        )
        record = outcome.record
        assert record.predicted_taken
        assert record.predicted_target == 0x2000
        assert not record.mispredicted


class TestGshareBehaviour:
    def test_history_disambiguates(self):
        """gshare separates a branch's occurrences by history path."""
        stats = accuracy(GsharePredictor(), workload="correlated")
        bimodal = accuracy(BimodalPredictor(), workload="correlated")
        assert stats.direction_accuracy > 0.9
        assert stats.direction_accuracy > bimodal.direction_accuracy
