"""Seeded chaos scenarios against a live in-process server.

Each scenario boots a real :class:`PredictorServer` (real shard
processes, real spool), replays workload-suite traffic through the
:class:`LoadGenerator`, and injects one class of fault while the run is
in flight.  Afterwards it audits three invariants:

* **Liveness** — every batch the loadgen offered was eventually
  answered; every individual request got exactly one of
  ok/rejected/retry, and the server's ledger balances to zero.
* **Exactness** — the client-folded fingerprint chain equals the
  server's chain, and (whenever eviction was disabled) equals the
  chain of a local, uninterrupted run of the same plan.  Identical
  chains ⇔ byte-identical prediction streams.
* **Accounting** — the events journal carries one line per evict,
  restore and restart, matching the ledger's counters; injected faults
  show up as observed restarts.

The ``churn`` scenario intentionally enables eviction, where the
uninterrupted oracle no longer applies (the evict tier is lossy by
contract); there the oracle is *offline journal replay* — recovering
every tenant from the spool after shutdown must land on the exact chain
the client saw.
"""

from __future__ import annotations

import asyncio
import json
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ServeError
from repro.common.jsonl import iter_jsonl
from repro.serve.client import (
    LoadGenerator,
    ServeClient,
    TenantPlan,
    reference_fingerprint,
)
from repro.serve.server import PredictorServer, ServeOptions
from repro.serve.shard import TenantState

CHAOS_SCHEMA = "repro-chaos/v1"

SCENARIOS = ("baseline", "kill", "hang", "slow", "torn", "flood", "churn")

#: Workloads cycled across tenants (diverse branch behaviour).
_WORKLOADS = ("transactions", "dispatch", "services", "correlated")


def _plans(name: str, seed: int, tenants: int, branches: int,
           batch: int) -> List[TenantPlan]:
    deadline = 40 if name == "slow" else None
    burst = 8 if name == "flood" else 1
    # Pace the fault scenarios so the injection window is real: an
    # unpaced run finishes in milliseconds and the fault lands on a
    # drained server.
    pace = {"kill": 0.03, "hang": 0.05, "torn": 0.03}.get(name, 0.0)
    return [
        TenantPlan(
            f"tenant-{index}",
            workload=_WORKLOADS[index % len(_WORKLOADS)],
            seed=seed + index,
            branches=branches,
            batch_size=batch,
            deadline_ms=deadline if index % 2 == 0 else None,
            burst=burst,
            pace=pace,
        )
        for index in range(tenants)
    ]


def _options(name: str) -> ServeOptions:
    base = dict(shards=2, queue_depth=8, warm_tenants=64,
                shed_highwater=256, heartbeat_interval=0.15,
                heartbeat_timeout=2.0, checkpoint_every=3)
    if name == "flood":
        base.update(queue_depth=2, shed_highwater=6)
    elif name == "churn":
        base.update(warm_tenants=2)
    elif name == "slow":
        base.update(heartbeat_timeout=5.0)
    elif name == "hang":
        base.update(heartbeat_timeout=0.6)
    return ServeOptions(**base)


async def _wait_for_answers(server: PredictorServer, count: int,
                            done: asyncio.Event, limit: float = 30.0) -> bool:
    """Block until the server answered *count* predicts (or load ended)."""
    elapsed = 0.0
    while server.metrics.answered < count and not done.is_set():
        await asyncio.sleep(0.02)
        elapsed += 0.02
        if elapsed > limit:
            return False
    return not done.is_set()


async def _drive(name: str, server: PredictorServer, rng: random.Random,
                 plans: Sequence[TenantPlan],
                 done: asyncio.Event) -> Dict:
    """Inject this scenario's faults while the loadgen runs."""
    injected = {"kills": 0, "hangs": 0, "torn": 0, "slowed": 0}
    if name in ("baseline", "flood", "churn"):
        return injected
    admin = await ServeClient.connect("127.0.0.1", server.port)
    try:
        if name == "kill":
            for threshold in (3, 9):
                if not await _wait_for_answers(server, threshold, done):
                    break
                shard = rng.randrange(len(server.shards))
                await admin.chaos(mode="kill", shard=shard)
                injected["kills"] += 1
                # Hold until the supervisor replaces the corpse before
                # injecting again — a second kill aimed at a shard that
                # is still down would be a no-op, and the audit demands
                # one observed restart per injected kill.
                waited = 0.0
                while (server.metrics.restarts < injected["kills"]
                       and waited < 15.0):
                    await asyncio.sleep(0.05)
                    waited += 0.05
        elif name == "hang":
            if await _wait_for_answers(server, 3, done):
                shard = rng.randrange(len(server.shards))
                await admin.chaos(mode="hang", shard=shard)
                injected["hangs"] += 1
                # Hold until the supervisor notices and restarts —
                # the detection is the thing under test, and it must
                # be counted even if the traffic drained meanwhile.
                waited = 0.0
                while server.metrics.restarts == 0 and waited < 15.0:
                    await asyncio.sleep(0.05)
                    waited += 0.05
        elif name == "slow":
            if await _wait_for_answers(server, 2, done):
                for shard in range(len(server.shards)):
                    await admin.chaos(mode="slow", shard=shard,
                                      delay=0.08)
                injected["slowed"] = len(server.shards)
                await asyncio.sleep(rng.uniform(0.4, 0.7))
                for shard in range(len(server.shards)):
                    try:
                        await admin.chaos(mode="clear", shard=shard)
                    except ServeError:
                        pass
        elif name == "torn":
            if await _wait_for_answers(server, 3, done):
                plan = plans[rng.randrange(len(plans))]
                session = server.sessions.get(plan.tenant)
                if session is not None:
                    await admin.chaos(
                        mode="torn", shard=session.shard_index,
                        tenant=plan.tenant,
                        bytes=rng.randrange(8, 48),
                    )
                    injected["torn"] += 1
    finally:
        await admin.aclose()
    return injected


def _audit_events(spool_dir: Path) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    path = spool_dir / "events.jsonl"
    if path.exists():
        for _line, _offset, row in iter_jsonl(path):
            if isinstance(row, dict):
                kind = row.get("type", "?")
                counts[kind] = counts.get(kind, 0) + 1
    return counts


def _check(checks: List[Dict], name: str, passed: bool,
           detail: str = "") -> None:
    checks.append({"name": name, "passed": bool(passed), "detail": detail})


async def run_scenario(name: str, seed: int,
                       spool_dir: Path, *, tenants: int = 3,
                       branches: int = 240, batch: int = 40) -> Dict:
    """Run one scenario end to end; returns its report dict."""
    if name not in SCENARIOS:
        raise ServeError(f"unknown scenario {name!r}; known: {SCENARIOS}")
    if name == "churn":
        tenants = max(tenants, 4)
    rng = random.Random(f"{name}/{seed}")
    plans = _plans(name, seed, tenants, branches, batch)
    spool = Path(spool_dir) / name
    server = PredictorServer(spool, _options(name))
    await server.start()
    done = asyncio.Event()
    driver = asyncio.create_task(_drive(name, server, rng, plans, done))
    try:
        load_report = await LoadGenerator(
            "127.0.0.1", server.port
        ).run(plans)
    finally:
        done.set()
        injected = await driver
    metrics = server.metrics.to_dict()
    await server.stop(reason=f"chaos:{name}")

    checks: List[Dict] = []
    # (a) liveness: everything offered was answered, ledger balances.
    _check(checks, "all-batches-answered", load_report["complete"],
           json.dumps({t["tenant"]: [t["answered"], t["batches"]]
                       for t in load_report["tenants"]}))
    _check(checks, "ledger-balances", metrics["accounted"],
           f"received={metrics['received']} answered={metrics['answered']} "
           f"rejected={metrics['rejected_total']} "
           f"retries={metrics['retries_signalled']} "
           f"cancelled={metrics['cancelled']}")
    # (b) exactness: client chain == server chain, and == the
    # uninterrupted local oracle wherever eviction was off.
    _check(checks, "client-server-chains-agree",
           load_report["chains_agree"])
    if name != "churn":
        mismatches = []
        for plan, tenant_report in zip(plans, load_report["tenants"]):
            oracle = reference_fingerprint(plan)
            if oracle["fingerprint"] != tenant_report["client_fingerprint"]:
                mismatches.append(plan.tenant)
        _check(checks, "stream-identical-to-uninterrupted",
               not mismatches, ",".join(mismatches))
    else:
        # Eviction is lossy on purpose; the exactness oracle is offline
        # journal replay instead.
        mismatches = []
        for plan, tenant_report in zip(plans, load_report["tenants"]):
            replayed = TenantState.recover(plan.tenant, spool)
            if replayed.fingerprint != tenant_report["client_fingerprint"]:
                mismatches.append(plan.tenant)
            replayed.close()
        _check(checks, "journal-replay-matches-served-stream",
               not mismatches, ",".join(mismatches))
        _check(checks, "evictions-happened", metrics["evictions"] > 0,
               f"evictions={metrics['evictions']}")
        _check(checks, "restores-happened", metrics["restores"] > 0,
               f"restores={metrics['restores']}")
    # (c) accounting: the events journal matches the ledger and the
    # injected faults were observed.
    events = _audit_events(spool)
    _check(checks, "evictions-journaled",
           events.get("evict", 0) == metrics["evictions"],
           f"events={events.get('evict', 0)} "
           f"ledger={metrics['evictions']}")
    _check(checks, "restores-journaled",
           events.get("restore", 0) == metrics["restores"],
           f"events={events.get('restore', 0)} "
           f"ledger={metrics['restores']}")
    _check(checks, "restarts-journaled",
           events.get("restart", 0) == metrics["restarts"],
           f"events={events.get('restart', 0)} "
           f"ledger={metrics['restarts']}")
    faults = injected["kills"] + injected["hangs"] + injected["torn"]
    if faults:
        _check(checks, "injected-faults-caused-restarts",
               metrics["restarts"] >= faults,
               f"injected={faults} restarts={metrics['restarts']}")
    if name == "flood":
        flood_rejects = metrics["rejected"].get("queue-full", 0) + \
            metrics["rejected"].get("shed", 0)
        _check(checks, "backpressure-engaged", flood_rejects > 0,
               f"queue-full+shed={flood_rejects}")
    if name == "slow":
        _check(checks, "deadlines-enforced",
               metrics["rejected"].get("deadline", 0) > 0,
               f"deadline={metrics['rejected'].get('deadline', 0)}")

    return {
        "scenario": name,
        "seed": seed,
        "injected": injected,
        "passed": all(check["passed"] for check in checks),
        "checks": checks,
        "metrics": metrics,
        "loadgen": load_report,
    }


def run_chaos(scenarios: Sequence[str], seed: int,
              spool_dir, *, tenants: int = 3, branches: int = 240,
              batch: int = 40) -> Dict:
    """Run *scenarios* in order; returns the aggregate report."""
    for name in scenarios:
        if name not in SCENARIOS:
            raise ServeError(
                f"unknown scenario {name!r}; known: {SCENARIOS}"
            )
    results = []
    for name in scenarios:
        results.append(asyncio.run(run_scenario(
            name, seed, Path(spool_dir), tenants=tenants,
            branches=branches, batch=batch,
        )))
    return {
        "schema": CHAOS_SCHEMA,
        "seed": seed,
        "passed": all(result["passed"] for result in results),
        "scenarios": results,
    }
