"""Worker shards: the processes that own warm predictor instances.

A shard is one OS process holding the warm :class:`TenantState` for a
subset of tenants.  The parent talks to it over a pipe with a tiny
``(id, op, payload)`` framing; replies come back ``(id, payload)``.
The asyncio side wraps each shard in a :class:`ShardHandle` whose
reader thread pumps replies back into the event loop.

:class:`TenantState` is deliberately process-agnostic — the chaos
harness instantiates it directly as the uninterrupted oracle, and
recovery replays journals through the very same compute path that
served them, so "replay equals live" is structural rather than
aspirational.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import signal
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import JournalError, ServeError
from repro.configs import GENERATIONS
from repro.core.state_io import load_state, save_state
from repro.engine import create_predictor
from repro.serve import protocol
from repro.serve.journal import (
    JournalWriter,
    TenantPaths,
    journal_header,
    load_journal,
    read_snapshot,
    write_snapshot,
)
from repro.stats import RunStats
from repro.verification.differential import comparable_stats

#: Exit code a shard uses for a chaos-injected crash (os._exit).
CRASH_EXIT_CODE = 71


def config_factory(name: str):
    try:
        factory, _info = GENERATIONS[name]
    except KeyError:
        known = ", ".join(GENERATIONS)
        raise ServeError(f"unknown config {name!r}; known: {known}") from None
    return factory


def compute_batch(predictor, stats: RunStats, branches,
                  needs_restart: bool) -> Tuple[List, bool]:
    """Predict one batch; the single compute path live serving, journal
    replay and the chaos oracle all share.  Returns ``(records, False)``
    — the restart debt, if any, has been paid to the first branch."""
    if needs_restart and branches:
        first = branches[0]
        predictor.restart(first.address, context=first.context,
                          thread=first.thread)
    records = []
    record = stats.record
    resolve = predictor.predict_and_resolve
    encode = protocol.encode_record
    for branch in branches:
        outcome = resolve(branch)
        record(outcome)
        records.append(encode(outcome))
    return records, False


class TenantState:
    """One tenant's full serving state: predictor, stats, fingerprint
    chain, journal, and the warm/cold + restart-pending flags."""

    def __init__(self, tenant: str, config: str, backend: str,
                 spool_dir: Union[str, Path], checkpoint_every: int = 0):
        protocol.validate_tenant(tenant)
        config_factory(config)  # validate early
        self.tenant = tenant
        self.config = config
        self.backend = backend
        self.checkpoint_every = checkpoint_every
        self.paths = TenantPaths(spool_dir, tenant).ensure()
        self.predictor = None
        self.stats = RunStats()
        self.next_seq = 0
        self.fingerprint = protocol.GENESIS_FINGERPRINT
        self.warm = False
        #: The predictor must be restarted at the next batch's first
        #: branch — set on creation and after every evict/re-warm
        #: (lookahead search state does not survive either).
        self.needs_restart = True
        self.last_response: Optional[Dict] = None
        self.journal: Optional[JournalWriter] = None

    # -- lifecycle -------------------------------------------------------

    def open_fresh(self) -> None:
        self.journal = JournalWriter(
            self.paths.journal,
            journal_header(self.tenant, self.config, self.backend),
        )
        self.predictor = create_predictor(config_factory(self.config)(),
                                          self.backend)
        self.warm = True
        self.needs_restart = True

    @classmethod
    def recover(cls, tenant: str, spool_dir: Union[str, Path],
                checkpoint_every: int = 0) -> "TenantState":
        """Rebuild from the spool: snapshot, then journal replay.

        The replayed state answers the same retries the crashed shard
        would have — ``last_response`` is reconstructed too.
        """
        paths = TenantPaths(spool_dir, tenant)
        if not paths.exists():
            raise JournalError(f"{paths.directory}: nothing to recover")
        header, events = load_journal(paths.journal)
        state = cls(tenant, header["config"], header["backend"],
                    spool_dir, checkpoint_every)
        snapshot = read_snapshot(paths.snapshot)
        if snapshot is not None:
            if snapshot.get("tenant") != tenant:
                raise JournalError(
                    f"{paths.snapshot}: snapshot belongs to "
                    f"{snapshot.get('tenant')!r}, not {tenant!r}"
                )
            state.predictor = snapshot["predictor"]
            state.stats = snapshot["stats"]
            state.next_seq = snapshot["seq"]
            state.fingerprint = snapshot["fingerprint"]
            state.warm = snapshot["predictor"] is not None
            state.needs_restart = snapshot["needs_restart"]
            state.last_response = snapshot["last_response"]
        else:
            state.predictor = create_predictor(
                config_factory(state.config)(), state.backend
            )
            state.warm = True
        base_seq = state.next_seq
        for event in events:
            seq = event["seq"]
            if seq < base_seq or (event["type"] == "batch"
                                  and seq < state.next_seq):
                continue  # compacted into (or at) the snapshot
            state._replay(event)
        # Reopen for appends only now: replay must never double-journal.
        state.journal = JournalWriter(
            paths.journal,
            journal_header(tenant, state.config, state.backend),
        )
        return state

    def _replay(self, event: Dict) -> None:
        kind = event["type"]
        if kind == "batch":
            if event["seq"] != self.next_seq:
                raise JournalError(
                    f"{self.paths.journal}: journal gap — batch seq "
                    f"{event['seq']} but expected {self.next_seq}"
                )
            branches = [protocol.decode_branch(row)
                        for row in event["branches"]]
            self._apply_batch(event["seq"], branches)
        elif kind == "evict":
            self._apply_evict()
        elif kind == "restore":
            self._apply_restore()

    # -- the deterministic core (shared by live + replay) ----------------

    def _apply_batch(self, seq: int, branches) -> Dict:
        records, self.needs_restart = compute_batch(
            self.predictor, self.stats, branches, self.needs_restart
        )
        self.fingerprint = protocol.fold_fingerprint(self.fingerprint,
                                                     records)
        self.next_seq = seq + 1
        self.last_response = {
            "seq": seq,
            "records": records,
            "fingerprint": self.fingerprint,
            "next_seq": self.next_seq,
        }
        return self.last_response

    def _apply_evict(self) -> None:
        # The save is part of the deterministic story: identical state
        # saves identical bytes, so replaying an evict regenerates the
        # very evict-state file the live run wrote.
        save_state(self.predictor, self.paths.evict_state)
        self.predictor = None
        self.warm = False

    def _apply_restore(self) -> None:
        self.predictor = create_predictor(config_factory(self.config)(),
                                          self.backend)
        load_state(self.predictor, self.paths.evict_state)
        self.warm = True
        self.needs_restart = True

    # -- live operations (journal-before-act) ----------------------------

    def predict(self, seq: object, rows: List) -> Dict:
        if not isinstance(seq, int) or seq < 0:
            return {"rejected": protocol.REJECT_BAD_SEQ,
                    "detail": f"sequence must be a non-negative int, got {seq!r}"}
        if seq == self.next_seq - 1 and self.last_response is not None:
            # Idempotent retry of the batch we just answered (or
            # computed without managing to answer, pre-crash).
            return dict(self.last_response, cached=True, restored=False)
        if seq != self.next_seq:
            return {"rejected": protocol.REJECT_BAD_SEQ,
                    "detail": f"expected seq {self.next_seq}, got {seq}"}
        branches = [protocol.decode_branch(row) for row in rows]
        restored = False
        if not self.warm:
            self.journal.append({"type": "restore", "seq": seq})
            self._apply_restore()
            restored = True
        # Journal-before-respond: once this append returns, the batch
        # is owed an answer across any number of crashes.
        self.journal.append({"type": "batch", "seq": seq,
                             "branches": rows})
        response = dict(self._apply_batch(seq, branches),
                        cached=False, restored=restored)
        if self.checkpoint_every and self.next_seq % self.checkpoint_every == 0:
            self.checkpoint()
        return response

    def evict(self) -> bool:
        """Demote to the lossy tier (semi-inclusion: BTB/CTB survive,
        aux predictors re-learn).  No-op when already cold."""
        if not self.warm:
            return False
        self.journal.append({"type": "evict", "seq": self.next_seq})
        self._apply_evict()
        return True

    def checkpoint(self) -> None:
        """Snapshot-then-rotate compaction (crash-safe in that order)."""
        write_snapshot(self.paths.snapshot, {
            "tenant": self.tenant,
            "config": self.config,
            "backend": self.backend,
            "seq": self.next_seq,
            "fingerprint": self.fingerprint,
            "predictor": self.predictor,
            "stats": self.stats,
            "needs_restart": self.needs_restart,
            "last_response": self.last_response,
        })
        self.journal.rotate()

    def stats_payload(self) -> Dict:
        return {
            "stats": comparable_stats(self.stats),
            "next_seq": self.next_seq,
            "fingerprint": self.fingerprint,
            "warm": self.warm,
        }

    def close(self) -> None:
        self.checkpoint()
        if self.journal is not None:
            self.journal.close()
            self.journal = None


# -- the worker process --------------------------------------------------


def shard_main(conn, spool_dir: str, shard_index: int,
               checkpoint_every: int) -> None:
    """Entry point of one shard process: a blocking dispatch loop."""
    # The parent owns shutdown; a terminal Ctrl-C must not tear the
    # child mid-append when graceful drain is in flight.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:
        pass
    tenants: Dict[str, TenantState] = {}
    slow_delay = 0.0

    def get_tenant(payload) -> TenantState:
        name = payload.get("tenant")
        state = tenants.get(name)
        if state is None:
            raise ServeError(f"tenant {name!r} not open on shard "
                             f"{shard_index}")
        return state

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        msg_id, op, payload = message
        try:
            if op == "predict":
                if slow_delay:
                    time.sleep(slow_delay)
                state = get_tenant(payload)
                result = state.predict(payload.get("seq"),
                                       payload.get("branches") or [])
                if "rejected" in result:
                    reply = {"status": "rejected",
                             "code": result["rejected"],
                             "detail": result.get("detail", "")}
                else:
                    reply = {"status": "ok", **result}
            elif op == "open":
                name = protocol.validate_tenant(payload.get("tenant"))
                if name in tenants:
                    state = tenants[name]
                    reply = {"status": "ok", "recovered": False,
                             "next_seq": state.next_seq,
                             "fingerprint": state.fingerprint}
                elif TenantPaths(spool_dir, name).exists():
                    state = TenantState.recover(name, spool_dir,
                                                checkpoint_every)
                    tenants[name] = state
                    reply = {"status": "ok", "recovered": True,
                             "next_seq": state.next_seq,
                             "fingerprint": state.fingerprint}
                else:
                    state = TenantState(name, payload.get("config", "z15"),
                                        payload.get("backend", "object"),
                                        spool_dir, checkpoint_every)
                    state.open_fresh()
                    tenants[name] = state
                    reply = {"status": "ok", "recovered": False,
                             "next_seq": 0,
                             "fingerprint": state.fingerprint}
            elif op == "evict":
                reply = {"status": "ok",
                         "evicted": get_tenant(payload).evict()}
            elif op == "stats":
                reply = {"status": "ok", **get_tenant(payload).stats_payload()}
            elif op == "checkpoint":
                for state in tenants.values():
                    state.checkpoint()
                reply = {"status": "ok", "tenants": len(tenants)}
            elif op == "close":
                state = tenants.pop(payload.get("tenant"), None)
                if state is not None:
                    state.close()
                reply = {"status": "ok", "closed": state is not None}
            elif op == "ping":
                reply = {"status": "ok", "shard": shard_index,
                         "tenants": sorted(tenants),
                         "warm": sorted(n for n, s in tenants.items()
                                        if s.warm)}
            elif op == "chaos":
                reply = _chaos_op(tenants, payload)
                if "slow_delay" in reply:
                    slow_delay = reply.pop("slow_delay")
            elif op == "shutdown":
                for state in tenants.values():
                    state.close()
                conn.send((msg_id, {"status": "ok",
                                    "tenants": len(tenants)}))
                break
            else:
                reply = {"status": "error", "code": "protocol",
                         "detail": f"unknown shard op {op!r}"}
        except ServeError as exc:
            reply = {"status": "rejected",
                     "code": protocol.REJECT_UNKNOWN_TENANT
                     if "not open" in str(exc) else "invalid",
                     "detail": str(exc)}
        except Exception as exc:  # noqa: BLE001 — shard must not die silently
            reply = {"status": "error", "code": "internal",
                     "detail": f"{type(exc).__name__}: {exc}"}
        conn.send((msg_id, reply))


def _chaos_op(tenants: Dict[str, TenantState], payload: Dict) -> Dict:
    """Fault-injection hooks the chaos harness drives (loopback only)."""
    mode = payload.get("mode")
    if mode == "crash":
        os._exit(CRASH_EXIT_CODE)
    if mode == "hang":
        time.sleep(float(payload.get("seconds", 3600.0)))
        return {"status": "ok", "detail": "woke up"}
    if mode == "slow":
        return {"status": "ok", "slow_delay": float(payload.get("delay", 0.05))}
    if mode == "clear":
        return {"status": "ok", "slow_delay": 0.0}
    if mode == "torn":
        state = tenants.get(payload.get("tenant"))
        if state is None or state.journal is None:
            return {"status": "error", "code": "internal",
                    "detail": "tenant not open for torn injection"}
        state.journal.tear_after_bytes = int(payload.get("bytes", 24))
        return {"status": "ok", "detail": "next journal append tears"}
    return {"status": "error", "code": "protocol",
            "detail": f"unknown chaos mode {mode!r}"}


# -- the asyncio-side handle ---------------------------------------------


class ShardUnavailable(ServeError):
    """The owning shard died (or was killed) with requests in flight."""


class ShardHandle:
    """Parent-side wrapper: pipe, reader thread, future-based requests."""

    def __init__(self, index: int, spool_dir: Union[str, Path],
                 checkpoint_every: int, mp_context):
        self.index = index
        self.spool_dir = str(spool_dir)
        self.checkpoint_every = checkpoint_every
        self._ctx = mp_context
        self._ids = itertools.count()
        self._pending: Dict[int, asyncio.Future] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conn = None
        self.process = None
        self.alive = False
        self.generation = 0

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        parent_conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=shard_main,
            args=(child_conn, self.spool_dir, self.index,
                  self.checkpoint_every),
            daemon=True,
            name=f"repro-shard-{self.index}",
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        self.alive = True
        self.generation += 1
        threading.Thread(target=self._pump, args=(parent_conn,),
                         daemon=True,
                         name=f"repro-shard-{self.index}-reader").start()

    def _pump(self, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            self._loop.call_soon_threadsafe(self._resolve, message)
        # The staleness check must run in the loop thread at callback
        # time: checking ``conn is self._conn`` here races with a
        # kill()+start() restart — the old conn is still current while
        # the killed process's EOF arrives, and the queued mark-dead
        # would then execute after start(), condemning the fresh shard.
        self._loop.call_soon_threadsafe(self._mark_dead_if_current, conn)

    def _resolve(self, message) -> None:
        msg_id, reply = message
        future = self._pending.pop(msg_id, None)
        if future is not None and not future.done():
            future.set_result(reply)

    def _mark_dead_if_current(self, conn) -> None:
        if conn is self._conn:
            self._mark_dead()

    def _mark_dead(self) -> None:
        if not self.alive:
            return
        self.alive = False
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ShardUnavailable(f"shard {self.index} died")
                )

    async def request(self, op: str, payload: Dict,
                      timeout: Optional[float] = None) -> Dict:
        """Send one op and await its reply.

        Raises :class:`ShardUnavailable` when the shard is (or goes)
        down, and :class:`asyncio.TimeoutError` on deadline — in which
        case the shard may still complete the work; the idempotent
        retry path makes that safe.
        """
        if not self.alive:
            raise ShardUnavailable(f"shard {self.index} is down")
        msg_id = next(self._ids)
        future = self._loop.create_future()
        self._pending[msg_id] = future
        try:
            self._conn.send((msg_id, op, payload))
        except (OSError, ValueError) as exc:
            self._pending.pop(msg_id, None)
            self._mark_dead()
            raise ShardUnavailable(f"shard {self.index} pipe broken") from exc
        try:
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(msg_id, None)

    def post(self, op: str, payload: Dict) -> None:
        """Fire-and-forget (chaos crash/hang: no reply will ever come)."""
        if not self.alive:
            raise ShardUnavailable(f"shard {self.index} is down")
        msg_id = next(self._ids)
        try:
            self._conn.send((msg_id, op, payload))
        except (OSError, ValueError) as exc:
            self._mark_dead()
            raise ShardUnavailable(f"shard {self.index} pipe broken") from exc

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)
        self._mark_dead()

    async def stop(self, timeout: float = 10.0) -> bool:
        """Graceful drain: checkpoint everything, then exit."""
        try:
            await self.request("shutdown", {}, timeout=timeout)
        except (ShardUnavailable, asyncio.TimeoutError):
            self.kill()
            return False
        self.process.join(timeout=5)
        self._mark_dead()
        return True
