"""Per-tenant crash-recovery artifacts: journal, snapshot, evict state.

The service keeps **two tiers** of durable state per tenant, mirroring
the paper's two-level BTB hierarchy:

* The *evict tier* rides :mod:`repro.core.state_io` — the BTB2-style
  semi-inclusive save (BTB1/BTB2/CTB only; TAGE, perceptron and other
  aux state are deliberately dropped).  Eviction is lossy by contract:
  a re-warmed tenant predicts a little worse for a while, exactly like
  a line refetched from BTB2.  It never loses *answers*.

* The *crash-recovery tier* is exact.  Every accepted batch is appended
  to the tenant journal **before** it is computed or answered
  (journal-before-respond).  Prediction is deterministic, so replaying
  the journal on top of the last snapshot reproduces the predictor,
  the stats, and the chained stream fingerprint bit for bit — including
  evictions and re-warms, which are journaled too (a save → load round
  trip of identical state is itself deterministic).

Snapshots compact the journal: an atomic pickle of the full warm state
is written first, *then* the journal is rotated down to a fresh header.
A crash between the two steps is benign — recovery skips journal events
at or below the snapshot's sequence number.  A crash mid-append tears
at most the final journal line, which the loader drops: a torn batch
was by construction never answered, so dropping it is the only correct
reading.
"""

from __future__ import annotations

import io
import json
import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.common.atomic import (
    append_line,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.common.errors import JournalError
from repro.common.jsonl import format_location, iter_jsonl

JOURNAL_SCHEMA = "repro-serve-journal/v1"
SNAPSHOT_SCHEMA = "repro-serve-snapshot/v1"

JOURNAL_EVENT_TYPES = ("batch", "evict", "restore")


class TenantPaths:
    """Where one tenant's durable artifacts live under the spool."""

    def __init__(self, spool_dir: Union[str, Path], tenant: str):
        self.directory = Path(spool_dir) / "tenants" / tenant
        self.journal = self.directory / "journal.jsonl"
        self.snapshot = self.directory / "snapshot.pickle"
        self.evict_state = self.directory / "evict-state.json"

    def ensure(self) -> "TenantPaths":
        self.directory.mkdir(parents=True, exist_ok=True)
        return self

    def exists(self) -> bool:
        return self.journal.exists() or self.snapshot.exists()


def journal_header(tenant: str, config: str, backend: str) -> Dict:
    return {"type": "header", "schema": JOURNAL_SCHEMA, "tenant": tenant,
            "config": config, "backend": backend}


class JournalWriter:
    """Append-only, fsync-per-event writer for one tenant journal.

    ``tear_after_bytes`` is the chaos hook: when set, the next append
    writes only that many bytes of its line and hard-kills the process
    — a faithful torn write, the exact artifact a power cut mid-append
    leaves behind.
    """

    def __init__(self, path: Union[str, Path], header: Dict):
        self.path = Path(path)
        self.header = dict(header)
        self.tear_after_bytes: Optional[int] = None
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._stream: Optional[io.TextIOWrapper] = open(
            self.path, "a", encoding="utf-8"
        )
        if fresh:
            self._append_obj(self.header)

    def _append_obj(self, obj: Dict) -> None:
        if self._stream is None:
            raise ValueError("journal writer is closed")
        line = json.dumps(obj, sort_keys=True, separators=(",", ":"))
        if self.tear_after_bytes is not None:
            # Chaos: emulate dying mid-append.  Write a prefix, make it
            # durable so recovery really sees the torn tail, then die
            # the way a crashed process dies — no unwinding, no atexit.
            self._stream.write(line[: self.tear_after_bytes])
            self._stream.flush()
            os.fsync(self._stream.fileno())
            os._exit(70)
        append_line(self._stream, line, fsync=True)

    def append(self, event: Dict) -> None:
        """Durably record one event (fsync before returning)."""
        if event.get("type") not in JOURNAL_EVENT_TYPES:
            raise JournalError(f"unknown journal event {event.get('type')!r}")
        self._append_obj(event)

    def rotate(self) -> None:
        """Compact: replace the journal with a lone header.

        Called *after* the snapshot landed; a crash in between leaves
        stale events recovery skips by sequence number.
        """
        if self._stream is None:
            raise ValueError("journal writer is closed")
        self._stream.close()
        header_line = json.dumps(self.header, sort_keys=True,
                                 separators=(",", ":"))
        atomic_write_text(self.path, header_line + "\n")
        self._stream = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


def load_journal(
    path: Union[str, Path], strict: bool = False
) -> Tuple[Dict, List[Dict]]:
    """Read one tenant journal: ``(header, events)``.

    The torn final line a crashed writer leaves is dropped (strict mode
    refuses it instead); corruption anywhere else is a real error.
    """
    header: Optional[Dict] = None
    events: List[Dict] = []
    for line_number, offset, obj in iter_jsonl(path, strict=strict,
                                               error=JournalError):
        where = format_location(path, line_number, offset)
        if not isinstance(obj, dict):
            raise JournalError(f"{where}: journal rows must be objects")
        kind = obj.get("type")
        if kind == "header":
            if header is not None:
                raise JournalError(f"{where}: duplicate journal header")
            if obj.get("schema") != JOURNAL_SCHEMA:
                raise JournalError(
                    f"{where}: unsupported journal schema "
                    f"{obj.get('schema')!r} (expected {JOURNAL_SCHEMA!r})"
                )
            header = obj
            continue
        if header is None:
            raise JournalError(f"{where}: journal event before header")
        if kind not in JOURNAL_EVENT_TYPES:
            raise JournalError(f"{where}: unknown journal event {kind!r}")
        if not isinstance(obj.get("seq"), int):
            raise JournalError(f"{where}: journal event without int seq")
        events.append(obj)
    if header is None:
        raise JournalError(f"{path}: journal has no header")
    return header, events


def write_snapshot(path: Union[str, Path], payload: Dict) -> None:
    """Atomically persist one snapshot (pickle: predictors ride along)."""
    payload = dict(payload, schema=SNAPSHOT_SCHEMA)
    atomic_write_bytes(path, pickle.dumps(payload, protocol=4))


def read_snapshot(path: Union[str, Path]) -> Optional[Dict]:
    """Load a snapshot; ``None`` when absent.

    Snapshots are written atomically, so an unreadable one is genuine
    corruption, not a crash artifact — :class:`JournalError`.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = pickle.loads(path.read_bytes())
    except Exception as exc:  # pickle raises a zoo of types
        raise JournalError(f"{path}: unreadable snapshot: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
        raise JournalError(
            f"{path}: unsupported snapshot schema "
            f"{payload.get('schema') if isinstance(payload, dict) else None!r}"
        )
    return payload
