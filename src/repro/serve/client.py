"""Client library and load generator for the prediction service.

:class:`ServeClient` is a thin pipelining wrapper over one connection:
requests get monotonic ids, a reader task routes responses back to
their futures, so any number of coroutines can share the connection.

:class:`LoadGenerator` replays workload-suite traffic through the
service the way the sweep engines replay it locally: each tenant is a
seeded :class:`~repro.workloads.executor.Executor` stream chopped into
batches.  The generator retries every clean rejection (queue-full,
shed, deadline, shard-restart) until the batch is answered, folds the
returned records into its own fingerprint chain, and finally checks its
chain against the server's — the client-side half of the byte-identical
contract.  :func:`reference_fingerprint` computes the same chain
locally with no server at all: the uninterrupted oracle the chaos
harness compares against.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ServeError
from repro.serve import protocol
from repro.serve.shard import compute_batch, config_factory
from repro.stats import RunStats
from repro.engine import create_predictor
from repro.workloads import get_workload
from repro.workloads.executor import Executor


class TenantPlan:
    """One tenant's traffic: a seeded workload stream in fixed batches."""

    def __init__(self, tenant: str, workload: str, seed: int,
                 branches: int, batch_size: int, *, config: str = "z15",
                 backend: str = "object",
                 deadline_ms: Optional[int] = None, burst: int = 1,
                 pace: float = 0.0):
        self.tenant = protocol.validate_tenant(tenant)
        self.workload = workload
        self.seed = seed
        self.branches = branches
        self.batch_size = batch_size
        self.config = config
        self.backend = backend
        self.deadline_ms = deadline_ms
        self.burst = max(1, burst)
        #: Seconds between waves — stretches the run so injected
        #: faults land mid-flight (chaos) or to model think time.
        self.pace = pace

    def batches(self) -> List[List]:
        """The encoded wire batches, computed deterministically."""
        executor = Executor(get_workload(self.workload, self.seed),
                            seed=self.seed)
        rows = [protocol.encode_branch(branch)
                for branch in executor.run(max_branches=self.branches)]
        return [rows[i:i + self.batch_size]
                for i in range(0, len(rows), self.batch_size)]

    def to_dict(self) -> Dict:
        return {"tenant": self.tenant, "workload": self.workload,
                "seed": self.seed, "branches": self.branches,
                "batch_size": self.batch_size, "config": self.config,
                "backend": self.backend, "deadline_ms": self.deadline_ms,
                "burst": self.burst, "pace": self.pace}


def reference_fingerprint(plan: TenantPlan) -> Dict:
    """Serve *plan* locally, uninterrupted — the chaos oracle.

    Shares :func:`~repro.serve.shard.compute_batch` with the shards, so
    identity here means the service layer added nothing and lost
    nothing.
    """
    predictor = create_predictor(config_factory(plan.config)(),
                                 plan.backend)
    stats = RunStats()
    fingerprint = protocol.GENESIS_FINGERPRINT
    needs_restart = True
    for rows in plan.batches():
        branches = [protocol.decode_branch(row) for row in rows]
        records, needs_restart = compute_batch(predictor, stats, branches,
                                               needs_restart)
        fingerprint = protocol.fold_fingerprint(fingerprint, records)
    return {"fingerprint": fingerprint, "branches": stats.branches,
            "mispredicted": stats.mispredicted_branches}


class ServeClient:
    """One pipelined connection to a :class:`PredictorServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count()
        self._pending: Dict[int, asyncio.Future] = {}
        self._lock = asyncio.Lock()
        self._pump = asyncio.create_task(self._read_loop(),
                                         name="serve-client-reader")

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = protocol.decode_message(line)
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            pending, self._pending = self._pending, {}
            for future in pending.values():
                if not future.done():
                    future.set_exception(
                        ServeError("connection closed mid-request")
                    )

    async def call(self, op: str, **payload) -> Dict:
        request_id = next(self._ids)
        message = {"op": op, "id": request_id}
        message.update(payload)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        async with self._lock:
            self._writer.write(protocol.encode_message(message))
            await self._writer.drain()
        return await future

    # Convenience wrappers -----------------------------------------------

    async def open(self, tenant: str, config: str = "z15",
                   backend: str = "object") -> Dict:
        return await self.call("open", tenant=tenant, config=config,
                               backend=backend)

    async def predict(self, tenant: str, seq: int, branches: Sequence,
                      deadline_ms: Optional[int] = None) -> Dict:
        payload = {"tenant": tenant, "seq": seq,
                   "branches": list(branches)}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return await self.call("predict", **payload)

    async def stats(self, tenant: str) -> Dict:
        return await self.call("stats", tenant=tenant)

    async def close_tenant(self, tenant: str) -> Dict:
        return await self.call("close", tenant=tenant)

    async def metrics(self) -> Dict:
        return await self.call("metrics")

    async def chaos(self, **payload) -> Dict:
        return await self.call("chaos", **payload)

    async def aclose(self) -> None:
        self._pump.cancel()
        try:
            await self._pump
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TenantReport:
    """What one tenant's replay observed: retries, rejections, chains."""

    def __init__(self, plan: TenantPlan):
        self.plan = plan
        self.batches = 0
        self.answered = 0
        self.attempts = 0
        self.rejections: Dict[str, int] = {}
        self.retries = 0
        self.restores_seen = 0
        self.cached_hits = 0
        self.client_fingerprint = protocol.GENESIS_FINGERPRINT
        self.server_fingerprint: Optional[str] = None
        self.error: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.error is None and self.answered == self.batches

    @property
    def chains_agree(self) -> bool:
        return self.server_fingerprint == self.client_fingerprint

    def to_dict(self) -> Dict:
        return {
            "tenant": self.plan.tenant,
            "batches": self.batches,
            "answered": self.answered,
            "attempts": self.attempts,
            "rejections": dict(sorted(self.rejections.items())),
            "retries": self.retries,
            "restores_seen": self.restores_seen,
            "cached_hits": self.cached_hits,
            "client_fingerprint": self.client_fingerprint,
            "server_fingerprint": self.server_fingerprint,
            "complete": self.complete,
            "chains_agree": self.chains_agree,
            "error": self.error,
        }


class LoadGenerator:
    """Drive a set of tenant plans against one server."""

    def __init__(self, host: str, port: int, *,
                 max_attempts: int = 200, backoff: float = 0.01):
        self.host = host
        self.port = port
        self.max_attempts = max_attempts
        self.backoff = backoff

    async def run(self, plans: Sequence[TenantPlan]) -> Dict:
        reports = await asyncio.gather(
            *(self._run_tenant(plan) for plan in plans)
        )
        return {
            "tenants": [report.to_dict() for report in reports],
            "complete": all(report.complete for report in reports),
            "chains_agree": all(report.chains_agree for report in reports),
        }

    async def _run_tenant(self, plan: TenantPlan) -> TenantReport:
        report = TenantReport(plan)
        batches = plan.batches()
        report.batches = len(batches)
        client = await ServeClient.connect(self.host, self.port)
        try:
            await self._call_until_ok(client, report, "open",
                                      tenant=plan.tenant,
                                      config=plan.config,
                                      backend=plan.backend)
            responses: Dict[int, Dict] = {}
            for start in range(0, len(batches), plan.burst):
                wave = list(range(start, min(start + plan.burst,
                                             len(batches))))
                results = await asyncio.gather(
                    *(self._predict_until_answered(client, plan, report,
                                                   seq, batches[seq])
                      for seq in wave)
                )
                for seq, response in zip(wave, results):
                    responses[seq] = response
                if plan.pace:
                    await asyncio.sleep(plan.pace)
            # Fold in sequence order (waves may answer out of order).
            for seq in range(len(batches)):
                report.client_fingerprint = protocol.fold_fingerprint(
                    report.client_fingerprint, responses[seq]["records"]
                )
                report.answered += 1
            if batches:
                report.server_fingerprint = \
                    responses[len(batches) - 1]["fingerprint"]
            else:
                report.server_fingerprint = report.client_fingerprint
        except ServeError as exc:
            report.error = str(exc)
        finally:
            await client.aclose()
        return report

    async def _call_until_ok(self, client: ServeClient,
                             report: TenantReport, op: str,
                             **payload) -> Dict:
        for attempt in range(self.max_attempts):
            report.attempts += 1
            response = await client.call(op, **payload)
            status = response.get("status")
            if status == "ok":
                return response
            if status == "retry":
                report.retries += 1
            elif status == "rejected":
                code = response.get("code", "?")
                report.rejections[code] = report.rejections.get(code, 0) + 1
                if code not in (protocol.REJECT_QUEUE_FULL,
                                protocol.REJECT_SHED,
                                protocol.REJECT_DEADLINE,
                                protocol.REJECT_BAD_SEQ,
                                protocol.REJECT_UNKNOWN_TENANT):
                    raise ServeError(
                        f"{op} rejected with {code}: "
                        f"{response.get('detail')}"
                    )
            else:
                raise ServeError(f"{op} failed: {response.get('detail')}")
            await asyncio.sleep(self.backoff * min(attempt + 1, 10))
        raise ServeError(f"{op} still unanswered after "
                         f"{self.max_attempts} attempts")

    async def _predict_until_answered(self, client: ServeClient,
                                      plan: TenantPlan,
                                      report: TenantReport, seq: int,
                                      rows: List) -> Dict:
        for attempt in range(self.max_attempts):
            report.attempts += 1
            response = await client.predict(plan.tenant, seq, rows,
                                            deadline_ms=plan.deadline_ms)
            status = response.get("status")
            if status == "ok":
                if response.get("cached"):
                    report.cached_hits += 1
                if response.get("restored"):
                    report.restores_seen += 1
                return response
            if status == "retry":
                report.retries += 1
            elif status == "rejected":
                code = response.get("code", "?")
                report.rejections[code] = report.rejections.get(code, 0) + 1
                if code == protocol.REJECT_UNKNOWN_TENANT:
                    # The owning shard restarted and its recovery lost a
                    # race with us; re-open (recovers the journal) and
                    # resend.
                    await client.open(plan.tenant, plan.config,
                                      plan.backend)
                elif code not in (protocol.REJECT_QUEUE_FULL,
                                  protocol.REJECT_SHED,
                                  protocol.REJECT_DEADLINE,
                                  protocol.REJECT_BAD_SEQ):
                    raise ServeError(
                        f"predict seq {seq} rejected with {code}: "
                        f"{response.get('detail')}"
                    )
            else:
                raise ServeError(
                    f"predict seq {seq} failed: {response.get('detail')}"
                )
            await asyncio.sleep(self.backoff * min(attempt + 1, 10))
        raise ServeError(
            f"predict seq {seq} still unanswered after "
            f"{self.max_attempts} attempts"
        )
