"""The asyncio front end: sessions, backpressure, LRU, supervision.

One :class:`PredictorServer` multiplexes any number of client
connections over a small pool of shard processes.  The design borrows
the paper's recovery posture wholesale: every structure the service
keeps is either *rebuildable* (warm predictor state — the evict tier)
or *journaled* (accepted work — the crash-recovery tier), so the answer
to any failure is the same as the z15's answer to a parity error —
invalidate, restore, carry on — never a wrong answer.

Admission control happens in arrival order on the connection's read
loop: per-tenant outstanding batches are capped (``queue_depth``), and
above a global high-water mark the heaviest tenants are shed first.
Every accepted request produces exactly one response — ``ok``,
``rejected`` or ``retry`` — and the metrics ledger accounts for each,
which the chaos harness audits to zero.

A supervisor task heartbeats every shard; a dead or hung shard is
killed and respawned, and its tenants are recovered from their journals
before new work is accepted for them.  In-flight requests on the dead
shard fail over to a ``retry`` response; the journal-before-respond
discipline plus idempotent retry-by-sequence makes the resend exact.
"""

from __future__ import annotations

import asyncio
import io
import json
import multiprocessing
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.common.atomic import append_line, atomic_write_json, \
    discard_stale_temps
from repro.common.errors import ServeError
from repro.obs.manifest import build_manifest
from repro.serve import protocol
from repro.serve.shard import ShardHandle, ShardUnavailable

EVENTS_SCHEMA = "repro-serve-events/v1"


class ServeOptions:
    """Tunables for one server instance."""

    def __init__(self, *, shards: int = 2, queue_depth: int = 8,
                 warm_tenants: int = 64, shed_highwater: int = 256,
                 heartbeat_interval: float = 0.25,
                 heartbeat_timeout: float = 3.0,
                 request_timeout: float = 60.0,
                 checkpoint_every: int = 4,
                 default_deadline_ms: Optional[int] = None,
                 start_method: str = "forkserver"):
        if shards < 1:
            raise ServeError(f"need at least one shard, got {shards}")
        if queue_depth < 1:
            raise ServeError(f"queue depth must be positive, got {queue_depth}")
        self.shards = shards
        self.queue_depth = queue_depth
        self.warm_tenants = warm_tenants
        self.shed_highwater = shed_highwater
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.request_timeout = request_timeout
        self.checkpoint_every = checkpoint_every
        self.default_deadline_ms = default_deadline_ms
        self.start_method = start_method

    def to_dict(self) -> Dict:
        return {
            "shards": self.shards,
            "queue_depth": self.queue_depth,
            "warm_tenants": self.warm_tenants,
            "shed_highwater": self.shed_highwater,
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
            "request_timeout": self.request_timeout,
            "checkpoint_every": self.checkpoint_every,
            "default_deadline_ms": self.default_deadline_ms,
            "start_method": self.start_method,
        }


class ServerMetrics:
    """The accounting ledger: every request lands in exactly one bucket."""

    def __init__(self):
        self.received = 0
        self.answered = 0
        self.rejected: Dict[str, int] = {}
        self.retries_signalled = 0
        self.cancelled = 0
        self.evictions = 0
        self.restores = 0
        self.restarts = 0
        self.recoveries = 0
        self.opened = 0
        self.closed = 0
        self.per_tenant: Dict[str, Dict[str, int]] = {}

    def tenant(self, name: str) -> Dict[str, int]:
        bucket = self.per_tenant.get(name)
        if bucket is None:
            bucket = self.per_tenant[name] = {
                "received": 0, "answered": 0, "rejected": 0, "retries": 0,
                "cancelled": 0, "evictions": 0, "restores": 0,
            }
        return bucket

    def reject(self, tenant: Optional[str], code: str) -> None:
        self.rejected[code] = self.rejected.get(code, 0) + 1
        if tenant:
            self.tenant(tenant)["rejected"] += 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def accounted(self) -> bool:
        """Does every received request have exactly one outcome?"""
        return self.received == (self.answered + self.rejected_total +
                                 self.retries_signalled + self.cancelled)

    def to_dict(self) -> Dict:
        return {
            "received": self.received,
            "answered": self.answered,
            "rejected": dict(sorted(self.rejected.items())),
            "rejected_total": self.rejected_total,
            "retries_signalled": self.retries_signalled,
            "cancelled": self.cancelled,
            "evictions": self.evictions,
            "restores": self.restores,
            "restarts": self.restarts,
            "recoveries": self.recoveries,
            "opened": self.opened,
            "closed": self.closed,
            "accounted": self.accounted(),
            "per_tenant": {name: dict(bucket) for name, bucket
                           in sorted(self.per_tenant.items())},
        }


class TenantSession:
    """Server-side view of one tenant: placement, load, warmth, recency."""

    def __init__(self, tenant: str, config: str, backend: str,
                 shard_index: int):
        self.tenant = tenant
        self.config = config
        self.backend = backend
        self.shard_index = shard_index
        self.outstanding = 0
        self.warm = True
        self.last_used = 0
        self.open = True


class PredictorServer:
    """The multi-tenant prediction service."""

    def __init__(self, spool_dir: Union[str, Path],
                 options: Optional[ServeOptions] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.spool_dir = Path(spool_dir)
        self.options = options or ServeOptions()
        self.host = host
        self.port = port
        self.metrics = ServerMetrics()
        self.sessions: Dict[str, TenantSession] = {}
        self.shards: List[ShardHandle] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._supervisor: Optional[asyncio.Task] = None
        self._events: Optional[io.TextIOWrapper] = None
        self._tick = 0
        self._started = None
        self._restarting: Dict[int, asyncio.Event] = {}
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        discard_stale_temps(self.spool_dir)
        self._started = time.monotonic()
        self._events = open(self.spool_dir / "events.jsonl", "a",
                            encoding="utf-8")
        self._event("boot", schema=EVENTS_SCHEMA,
                    options=self.options.to_dict())
        # fork would inherit the event loop's locks mid-state from the
        # reader threads; spawn-family start methods sidestep that.
        ctx = multiprocessing.get_context(self.options.start_method)
        self.shards = [
            ShardHandle(index, self.spool_dir, self.options.checkpoint_every,
                        ctx)
            for index in range(self.options.shards)
        ]
        for shard in self.shards:
            shard.start(loop)
        # Cold boot must not read as a hang: wait out each shard's first
        # ping under the generous request timeout before the supervisor
        # starts judging liveness by heartbeat_timeout.
        await asyncio.gather(*(self._await_ready(shard)
                               for shard in self.shards))
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._supervisor = asyncio.create_task(self._supervise(),
                                               name="serve-supervisor")

    async def stop(self, reason: str = "shutdown") -> Dict:
        """Drain, checkpoint, stop shards, write the final manifest."""
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for shard in self.shards:
            await shard.stop()
        manifest = build_manifest(
            "serve",
            wall_seconds=(time.monotonic() - self._started
                          if self._started else None),
            extra={
                "serve": {
                    "reason": reason,
                    "options": self.options.to_dict(),
                    "metrics": self.metrics.to_dict(),
                    "tenants": sorted(self.sessions),
                },
            },
        )
        atomic_write_json(self.spool_dir / "manifest.json", manifest,
                          indent=2, trailing_newline=True)
        self._event("final", reason=reason, metrics=self.metrics.to_dict())
        if self._events is not None:
            self._events.close()
            self._events = None
        return manifest

    def _event(self, kind: str, **fields) -> None:
        if self._events is None:
            return
        row = {"type": kind}
        row.update(fields)
        append_line(self._events, json.dumps(row, sort_keys=True),
                    fsync=True)

    # -- supervision -----------------------------------------------------

    async def _await_ready(self, shard: ShardHandle) -> None:
        try:
            await shard.request("ping", {},
                                timeout=self.options.request_timeout)
        except (ShardUnavailable, asyncio.TimeoutError):
            pass  # genuinely broken: the supervisor will restart it

    async def _supervise(self) -> None:
        while True:
            await asyncio.sleep(self.options.heartbeat_interval)
            for shard in self.shards:
                if not shard.alive:
                    await self._restart_shard(shard, "died")
                    continue
                try:
                    await shard.request(
                        "ping", {}, timeout=self.options.heartbeat_timeout
                    )
                except asyncio.TimeoutError:
                    await self._restart_shard(shard, "hung")
                except ShardUnavailable:
                    await self._restart_shard(shard, "died")

    async def _restart_shard(self, shard: ShardHandle, why: str) -> None:
        if shard.index in self._restarting:
            return
        gate = self._restarting[shard.index] = asyncio.Event()
        try:
            self.metrics.restarts += 1
            self._event("restart", shard=shard.index, why=why)
            shard.kill()
            shard.start(asyncio.get_running_loop())
            await self._await_ready(shard)
            for session in self.sessions.values():
                if session.shard_index != shard.index or not session.open:
                    continue
                try:
                    reply = await shard.request(
                        "open",
                        {"tenant": session.tenant,
                         "config": session.config,
                         "backend": session.backend},
                        timeout=self.options.request_timeout,
                    )
                except (ShardUnavailable, asyncio.TimeoutError):
                    continue  # next heartbeat tries again
                if reply.get("status") == "ok":
                    self.metrics.recoveries += 1
                    session.warm = True
                    self._event("recover", shard=shard.index,
                                tenant=session.tenant,
                                next_seq=reply.get("next_seq"))
        finally:
            self._restarting.pop(shard.index, None)
            gate.set()

    # -- placement + LRU -------------------------------------------------

    def _place(self) -> int:
        loads = [0] * len(self.shards)
        for session in self.sessions.values():
            if session.open:
                loads[session.shard_index] += 1
        return loads.index(min(loads))

    def _touch(self, session: TenantSession) -> None:
        self._tick += 1
        session.last_used = self._tick

    async def _enforce_warm_cap(self) -> None:
        """BTB2-style demotion: least-recently-used warm tenants spill
        to the lossy evict tier until the warm set fits."""
        while True:
            warm = [s for s in self.sessions.values() if s.warm and s.open]
            if len(warm) <= self.options.warm_tenants:
                return
            idle = [s for s in warm if s.outstanding == 0]
            if not idle:
                return  # everyone is busy; next admission retries
            victim = min(idle, key=lambda s: s.last_used)
            shard = self.shards[victim.shard_index]
            try:
                reply = await shard.request(
                    "evict", {"tenant": victim.tenant},
                    timeout=self.options.request_timeout,
                )
            except (ShardUnavailable, asyncio.TimeoutError):
                return
            victim.warm = False
            if reply.get("evicted"):
                self.metrics.evictions += 1
                self.metrics.tenant(victim.tenant)["evictions"] += 1
                self._event("evict", tenant=victim.tenant,
                            shard=victim.shard_index)

    # -- the client loop -------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    message = protocol.decode_message(line)
                except ServeError as exc:
                    await self._send(writer, lock, protocol.error(None,
                                                                  str(exc)))
                    continue
                task = asyncio.create_task(
                    self._serve_one(message, writer, lock)
                )
                task.is_predict = message.get("op") == "predict"
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
                    # Only admitted predicts sit in the ledger's
                    # "received" column; other ops aren't counted.
                    if task.is_predict:
                        self.metrics.cancelled += 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer, lock, message: Dict) -> None:
        async with lock:
            writer.write(protocol.encode_message(message))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, message: Dict, writer, lock) -> None:
        request_id = message.get("id")
        op = message.get("op")
        try:
            if op == "predict":
                response = await self._op_predict(message)
            elif op == "open":
                response = await self._op_open(message)
            elif op == "stats":
                response = await self._forward_session_op(message, "stats")
            elif op == "close":
                response = await self._op_close(message)
            elif op == "metrics":
                response = protocol.ok(request_id,
                                       metrics=self.metrics.to_dict())
            elif op == "hello":
                from repro.configs import GENERATIONS
                response = protocol.ok(
                    request_id, schema=protocol.PROTOCOL_SCHEMA,
                    configs=list(GENERATIONS), shards=len(self.shards),
                )
            elif op == "chaos":
                response = await self._op_chaos(message)
            else:
                response = protocol.error(request_id,
                                          f"unknown op {op!r}")
        except asyncio.CancelledError:
            raise
        except ServeError as exc:
            response = protocol.error(request_id, str(exc))
        except Exception as exc:  # noqa: BLE001 — a bug must not drop a reply
            response = protocol.error(
                request_id, f"internal: {type(exc).__name__}: {exc}"
            )
        response["id"] = request_id
        await self._send(writer, lock, response)

    # -- ops -------------------------------------------------------------

    async def _op_open(self, message: Dict) -> Dict:
        request_id = message.get("id")
        tenant = protocol.validate_tenant(message.get("tenant"))
        session = self.sessions.get(tenant)
        if session is not None and session.open:
            return protocol.ok(request_id, existing=True,
                               shard=session.shard_index)
        shard_index = self._place()
        if shard_index in self._restarting:
            return protocol.retry(request_id, protocol.RETRY_SHARD_RESTART,
                                  f"shard {shard_index} restarting")
        try:
            reply = await self.shards[shard_index].request(
                "open",
                {"tenant": tenant,
                 "config": message.get("config", "z15"),
                 "backend": message.get("backend", "object")},
                timeout=self.options.request_timeout,
            )
        except (ShardUnavailable, asyncio.TimeoutError):
            # The shard died (or was culled) with our open in flight;
            # the client's resend lands after the supervisor's restart.
            return protocol.retry(request_id, protocol.RETRY_SHARD_RESTART,
                                  f"shard {shard_index} unavailable")
        if reply.get("status") != "ok":
            return dict(reply, id=request_id)
        session = TenantSession(tenant, message.get("config", "z15"),
                                message.get("backend", "object"),
                                shard_index)
        self.sessions[tenant] = session
        self._touch(session)
        self.metrics.opened += 1
        if reply.get("recovered"):
            self.metrics.recoveries += 1
        self._event("open", tenant=tenant, shard=shard_index,
                    recovered=bool(reply.get("recovered")))
        await self._enforce_warm_cap()
        return protocol.ok(request_id, existing=False, shard=shard_index,
                           recovered=bool(reply.get("recovered")),
                           next_seq=reply.get("next_seq"),
                           fingerprint=reply.get("fingerprint"))

    async def _op_predict(self, message: Dict) -> Dict:
        request_id = message.get("id")
        tenant = message.get("tenant")
        self.metrics.received += 1
        session = self.sessions.get(tenant)
        if session is None or not session.open:
            self.metrics.reject(tenant if isinstance(tenant, str) else None,
                                protocol.REJECT_UNKNOWN_TENANT)
            return protocol.rejected(request_id,
                                     protocol.REJECT_UNKNOWN_TENANT,
                                     f"tenant {tenant!r} has no session")
        bucket = self.metrics.tenant(tenant)
        bucket["received"] += 1
        if session.shard_index in self._restarting:
            self.metrics.retries_signalled += 1
            bucket["retries"] += 1
            return protocol.retry(
                request_id, protocol.RETRY_SHARD_RESTART,
                f"shard {session.shard_index} restarting"
            )
        # Admission control, in arrival order.
        if session.outstanding >= self.options.queue_depth:
            self.metrics.reject(tenant, protocol.REJECT_QUEUE_FULL)
            return protocol.rejected(
                request_id, protocol.REJECT_QUEUE_FULL,
                f"{session.outstanding} batches already queued"
            )
        total_outstanding = sum(s.outstanding
                                for s in self.sessions.values())
        if (total_outstanding >= self.options.shed_highwater
                and session.outstanding > 0):
            # Overload: shed from tenants that already have work queued;
            # a tenant's *first* outstanding batch is never shed.
            self.metrics.reject(tenant, protocol.REJECT_SHED)
            return protocol.rejected(
                request_id, protocol.REJECT_SHED,
                f"server over high-water mark ({total_outstanding})"
            )
        deadline_ms = message.get("deadline_ms",
                                  self.options.default_deadline_ms)
        timeout = self.options.request_timeout
        if deadline_ms is not None:
            timeout = min(timeout, deadline_ms / 1000.0)
        session.outstanding += 1
        self._touch(session)
        shard = self.shards[session.shard_index]
        try:
            reply = await shard.request(
                "predict",
                {"tenant": tenant, "seq": message.get("seq"),
                 "branches": message.get("branches") or []},
                timeout=timeout,
            )
        except asyncio.TimeoutError:
            # The shard may still finish the batch; the client's resend
            # of the same seq hits the idempotent cache and stays exact.
            self.metrics.reject(tenant, protocol.REJECT_DEADLINE)
            return protocol.rejected(
                request_id, protocol.REJECT_DEADLINE,
                f"deadline of {deadline_ms} ms exceeded"
            )
        except ShardUnavailable:
            self.metrics.retries_signalled += 1
            bucket["retries"] += 1
            return protocol.retry(
                request_id, protocol.RETRY_SHARD_RESTART,
                f"shard {session.shard_index} restarting"
            )
        finally:
            session.outstanding -= 1
        if reply.get("status") != "ok":
            self.metrics.reject(tenant, reply.get("code", "invalid"))
            return dict(reply, id=request_id)
        self.metrics.answered += 1
        bucket["answered"] += 1
        if reply.get("restored"):
            session.warm = True
            self.metrics.restores += 1
            bucket["restores"] += 1
            self._event("restore", tenant=tenant,
                        shard=session.shard_index)
            await self._enforce_warm_cap()
        return dict(reply, id=request_id)

    async def _forward_session_op(self, message: Dict, op: str) -> Dict:
        request_id = message.get("id")
        tenant = message.get("tenant")
        session = self.sessions.get(tenant)
        if session is None or not session.open:
            return protocol.rejected(request_id,
                                     protocol.REJECT_UNKNOWN_TENANT,
                                     f"tenant {tenant!r} has no session")
        try:
            reply = await self.shards[session.shard_index].request(
                op, {"tenant": tenant},
                timeout=self.options.request_timeout,
            )
        except (ShardUnavailable, asyncio.TimeoutError):
            return protocol.retry(request_id, protocol.RETRY_SHARD_RESTART,
                                  f"shard {session.shard_index} unavailable")
        return dict(reply, id=request_id)

    async def _op_close(self, message: Dict) -> Dict:
        response = await self._forward_session_op(message, "close")
        session = self.sessions.get(message.get("tenant"))
        if session is not None and response.get("status") == "ok":
            session.open = False
            self.metrics.closed += 1
            self._event("close", tenant=session.tenant)
        return response

    async def _op_chaos(self, message: Dict) -> Dict:
        """Fault injection (the chaos harness's admin surface)."""
        request_id = message.get("id")
        shard_index = message.get("shard", 0)
        if not isinstance(shard_index, int) or \
                not 0 <= shard_index < len(self.shards):
            return protocol.error(request_id,
                                  f"no shard {shard_index!r}")
        shard = self.shards[shard_index]
        mode = message.get("mode")
        payload = {key: value for key, value in message.items()
                   if key not in ("id", "op", "shard")}
        if mode == "kill":
            shard.kill()  # SIGKILL from outside: no goodbye at all
            return protocol.ok(request_id, injected="kill")
        if mode in ("crash", "hang"):
            try:
                shard.post("chaos", payload)
            except ShardUnavailable:
                pass
            return protocol.ok(request_id, injected=mode)
        try:
            reply = await shard.request("chaos", payload,
                                        timeout=self.options.request_timeout)
        except (ShardUnavailable, asyncio.TimeoutError):
            return protocol.retry(request_id, protocol.RETRY_SHARD_RESTART,
                                  "shard unavailable for chaos op")
        return dict(reply, id=request_id)
