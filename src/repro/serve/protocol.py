"""Wire protocol for the prediction service.

One request or response per line, each a JSON object — the same
newline-delimited discipline every other artifact in this repo uses, so
the loaders, torn-tail rules and fsync story carry over unchanged.

Requests carry ``op`` plus an ``id`` the response echoes, so a client
may pipeline.  Responses carry exactly one ``status``:

``ok``
    The request was served; the payload rides alongside.
``rejected``
    The request was refused *cleanly* (queue full, deadline exceeded,
    load shed, bad sequence number…) — the tenant's predictor state did
    not advance on its behalf.  ``code`` says why.
``retry``
    The owning shard was restarting; the request was not lost, merely
    unanswerable right now.  Resend the same sequence number.
``error``
    A protocol-level problem (malformed request, unknown op).

Branch batches travel as compact arrays (one row per branch) rather
than objects: at thousands of branches per batch the key repetition
would dominate the wire.  The row layout is
``[sequence, address, length, kind, static_target, taken, target,
context, thread]``.

Every accepted batch advances a *chained fingerprint*:
``fp' = sha256(fp + canonical_json(records))`` over the hex digest and
the canonical (sorted-key, no-whitespace) encoding of the prediction
records.  Unlike a raw hash object the chain value is a plain string,
so it checkpoints, journals and replays; byte-identical streams and
identical chains are equivalent by construction.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ServeError
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction

PROTOCOL_SCHEMA = "repro-serve/v1"

#: Hard cap on one wire line; beyond this something is wrong, not big.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: The fingerprint chain's genesis value (no batches folded yet).
GENESIS_FINGERPRINT = hashlib.sha256(PROTOCOL_SCHEMA.encode("ascii")).hexdigest()

#: Tenant names double as spool directory names; keep them boring.
TENANT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

# Rejection codes (status == "rejected").
REJECT_QUEUE_FULL = "queue-full"
REJECT_SHED = "shed"
REJECT_DEADLINE = "deadline"
REJECT_BAD_SEQ = "bad-seq"
REJECT_UNKNOWN_TENANT = "unknown-tenant"
REJECT_CLOSED = "closed"

# Retry codes (status == "retry").
RETRY_SHARD_RESTART = "shard-restart"

OPS = ("hello", "open", "predict", "stats", "close", "metrics", "chaos")


def validate_tenant(name: object) -> str:
    """Check a tenant name is a safe spool-directory component."""
    if not isinstance(name, str) or not TENANT_PATTERN.match(name):
        raise ServeError(
            f"invalid tenant name {name!r} (want {TENANT_PATTERN.pattern})"
        )
    return name


# -- framing -------------------------------------------------------------


def encode_message(message: Dict) -> bytes:
    """One wire line for *message* (compact JSON + newline)."""
    return json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict:
    """Parse one wire line; :class:`ServeError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeError(f"wire line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServeError(f"malformed wire line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServeError(
            f"wire line must be a JSON object, got {type(message).__name__}"
        )
    return message


# -- branch codec --------------------------------------------------------


def encode_branch(branch: DynamicBranch) -> List:
    """One wire row for *branch* (see module docstring for the layout)."""
    return [
        branch.sequence,
        branch.address,
        branch.instruction.length,
        branch.kind.value,
        branch.instruction.static_target,
        1 if branch.taken else 0,
        branch.target,
        branch.context,
        branch.thread,
    ]


def decode_branch(row: Sequence) -> DynamicBranch:
    """Rebuild the :class:`DynamicBranch` a wire row describes."""
    if not isinstance(row, (list, tuple)) or len(row) != 9:
        raise ServeError(f"branch row must have 9 fields, got {row!r}")
    sequence, address, length, kind, static_target, taken, target, \
        context, thread = row
    try:
        instruction = Instruction(
            address=address,
            length=length,
            kind=BranchKind(kind),
            static_target=static_target,
        )
        return DynamicBranch(
            sequence=sequence,
            instruction=instruction,
            taken=bool(taken),
            target=target,
            thread=thread,
            context=context,
        )
    except (ValueError, TypeError) as exc:
        raise ServeError(f"invalid branch row {row!r}: {exc}") from exc


def encode_record(outcome) -> List:
    """The served prediction for one branch:
    ``[dynamic, predicted_taken, predicted_target, mispredicted]``."""
    record = outcome.record
    return [
        1 if record.dynamic else 0,
        1 if record.predicted_taken else 0,
        record.predicted_target,
        1 if outcome.mispredicted else 0,
    ]


# -- fingerprint chain ---------------------------------------------------


def canonical_records(records: Sequence) -> str:
    """The canonical JSON text the fingerprint chain folds over."""
    return json.dumps(records, sort_keys=True, separators=(",", ":"))


def fold_fingerprint(previous: str, records: Sequence) -> str:
    """Advance the chained stream fingerprint by one batch."""
    digest = hashlib.sha256()
    digest.update(previous.encode("ascii"))
    digest.update(canonical_records(records).encode("utf-8"))
    return digest.hexdigest()


# -- response helpers ----------------------------------------------------


def ok(request_id: Optional[int], **payload) -> Dict:
    response = {"id": request_id, "status": "ok"}
    response.update(payload)
    return response


def rejected(request_id: Optional[int], code: str, detail: str = "") -> Dict:
    return {"id": request_id, "status": "rejected", "code": code,
            "detail": detail}


def retry(request_id: Optional[int], code: str, detail: str = "") -> Dict:
    return {"id": request_id, "status": "retry", "code": code,
            "detail": detail}


def error(request_id: Optional[int], detail: str) -> Dict:
    return {"id": request_id, "status": "error", "code": "protocol",
            "detail": detail}
