"""Prediction-as-a-service: a supervised multi-tenant predictor server.

The paper's predictor serves one core's instruction stream; this
package serves *many* streams — thousands of tenant sessions
multiplexed over a small pool of warm predictor shards, with the same
recovery philosophy the hardware uses: state is either rebuildable
(the lossy, BTB2-style evict tier) or journaled (the exact
crash-recovery tier), so no failure ever produces a wrong answer —
only a slower or re-learned one.

Modules
-------
``protocol``
    Newline-delimited JSON wire format, branch/record codecs, and the
    chained stream fingerprint.
``journal``
    Per-tenant durable artifacts: journal-before-respond event log,
    atomic snapshots, lossy evict state.
``shard``
    Worker processes owning warm predictors; ``TenantState`` (live,
    replay and oracle share one compute path); the asyncio-side handle.
``server``
    The asyncio front end: admission control, LRU eviction, deadlines,
    shard supervision and restart, the metrics ledger.
``client``
    Pipelining client and the workload-replaying load generator.
``chaos``
    Seeded fault-injection scenarios with liveness / exactness /
    accounting audits.
"""

from repro.serve.chaos import CHAOS_SCHEMA, SCENARIOS, run_chaos, run_scenario
from repro.serve.client import (
    LoadGenerator,
    ServeClient,
    TenantPlan,
    reference_fingerprint,
)
from repro.serve.journal import (
    JOURNAL_SCHEMA,
    SNAPSHOT_SCHEMA,
    JournalWriter,
    TenantPaths,
    load_journal,
    read_snapshot,
    write_snapshot,
)
from repro.serve.protocol import (
    GENESIS_FINGERPRINT,
    PROTOCOL_SCHEMA,
    decode_branch,
    decode_message,
    encode_branch,
    encode_message,
    fold_fingerprint,
)
from repro.serve.server import PredictorServer, ServeOptions, ServerMetrics
from repro.serve.shard import ShardHandle, TenantState, compute_batch

__all__ = [
    "CHAOS_SCHEMA",
    "GENESIS_FINGERPRINT",
    "JOURNAL_SCHEMA",
    "JournalWriter",
    "LoadGenerator",
    "PROTOCOL_SCHEMA",
    "PredictorServer",
    "SCENARIOS",
    "SNAPSHOT_SCHEMA",
    "ServeClient",
    "ServeOptions",
    "ServerMetrics",
    "ShardHandle",
    "TenantPaths",
    "TenantPlan",
    "TenantState",
    "compute_batch",
    "decode_branch",
    "decode_message",
    "encode_branch",
    "encode_message",
    "fold_fingerprint",
    "load_journal",
    "read_snapshot",
    "reference_fingerprint",
    "run_chaos",
    "run_scenario",
    "write_snapshot",
]
