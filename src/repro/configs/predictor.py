"""Predictor configuration dataclasses.

Every structure size and policy threshold in the model is collected here
so that the generation presets (:mod:`repro.configs.generations`) and the
benchmark parameter sweeps can vary them without touching predictor code.

Values that the paper states explicitly are used verbatim and noted; the
remaining thresholds are engineering choices marked ``assumption``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError


def _require_power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{name} must be a positive power of two, got {value}")


@dataclass
class Btb1Config:
    """BTB1 + embedded BHT.  Paper: 16K branches = 2K rows x 8 ways."""

    rows: int = 2048
    ways: int = 8
    #: Width of the partial tag (section IV notes partial tagging makes
    #: bad predictions possible); assumption: 16 bits.
    tag_bits: int = 16
    #: Bytes of address space one row covers (one search), paper: 64.
    line_size: int = 64
    #: Replacement policy: "plru" matches 8-way hardware; "lru" is exact.
    policy: str = "plru"

    def validate(self) -> None:
        _require_power_of_two("btb1.rows", self.rows)
        if self.ways < 1:
            raise ConfigError(f"btb1.ways must be >= 1, got {self.ways}")
        if self.policy == "plru":
            _require_power_of_two("btb1.ways (plru)", self.ways)
        _require_power_of_two("btb1.line_size", self.line_size)
        if self.tag_bits < 4:
            raise ConfigError(f"btb1.tag_bits too small: {self.tag_bits}")

    @property
    def capacity(self) -> int:
        return self.rows * self.ways


@dataclass
class Btb2Config:
    """Second-level BTB.  Paper: 128K branches = 32K rows x 4 ways.

    The BTB2 is searched when content is "thought to be missing" from the
    BTB1: after ``empty_search_threshold`` successive no-prediction
    searches (paper: three), proactively when an unusual number of
    disruptive surprise branches occur within a window, and on context
    changes.  A search transfers the branches of ``transfer_lines``
    consecutive lines (up to 128 branches = 32 lines x 4 ways) through a
    staging queue.
    """

    rows: int = 32768
    ways: int = 4
    tag_bits: int = 16
    line_size: int = 64
    policy: str = "lru"
    #: Successive qualified empty BTB1 searches that trigger a search (paper: 3).
    empty_search_threshold: int = 3
    #: Lines transferred per BTB2 search; 32 lines x 4 ways = 128 branches (paper).
    transfer_lines: int = 32
    #: Staging queue depth between BTB2 and BTB1 (assumption: 64).
    staging_capacity: int = 64
    #: Surprise branches within the window that proactively fire a search
    #: (paper: "unusual number of non-predicted disruptive branches";
    #: assumption: 4 within 64 completed branches).
    surprise_trigger_count: int = 4
    surprise_trigger_window: int = 64
    #: No-hit searches between periodic-refresh writebacks.  The hardware
    #: runs ~5 searches per branch; the functional model walks ~1.3, so
    #: the threshold is scaled down to keep the writeback-per-install
    #: ratio comparable (assumption: 4).
    refresh_threshold: int = 4
    #: True = z15 semi-inclusive + periodic refresh; False = zEC12-style
    #: semi-exclusive victim handling.
    inclusive: bool = True

    def validate(self) -> None:
        _require_power_of_two("btb2.rows", self.rows)
        if self.ways < 1:
            raise ConfigError(f"btb2.ways must be >= 1, got {self.ways}")
        if self.empty_search_threshold < 1:
            raise ConfigError("btb2.empty_search_threshold must be >= 1")
        if self.transfer_lines < 1:
            raise ConfigError("btb2.transfer_lines must be >= 1")
        if self.staging_capacity < 1:
            raise ConfigError("btb2.staging_capacity must be >= 1")

    @property
    def capacity(self) -> int:
        return self.rows * self.ways


@dataclass
class PhtConfig:
    """Pattern history table(s).

    With ``tage=True`` this is the z15 two-table TAGE arrangement (short
    table indexed with the 9 most recent GPV branches, long with all 17);
    with ``tage=False`` it is the single tagged PHT of z196..z14 vintage
    using ``short_history`` only.
    """

    tage: bool = True
    rows: int = 512
    ways: int = 8
    tag_bits: int = 9
    #: Direction counter width (3-bit saturating; taken when >= 4).
    counter_bits: int = 3
    usefulness_bits: int = 2
    short_history: int = 9
    long_history: int = 17
    #: New installs favour the short table 2:1 when both victims are
    #: usefulness-0 (paper).
    short_install_ratio: int = 2
    #: Global weak-confidence counter: weak predictions are allowed to
    #: provide only while the counter is above this threshold (paper's
    #: "weak prediction counter"; assumption: 4 of an 8-wide counter).
    weak_counter_bits: int = 4
    weak_threshold: int = 4

    def validate(self) -> None:
        _require_power_of_two("pht.rows", self.rows)
        if self.ways < 1:
            raise ConfigError(f"pht.ways must be >= 1, got {self.ways}")
        if self.short_history < 1 or self.long_history < self.short_history:
            raise ConfigError("pht history lengths inconsistent")
        if self.counter_bits < 2:
            raise ConfigError("pht.counter_bits must be >= 2")

    @property
    def capacity(self) -> int:
        tables = 2 if self.tage else 1
        return tables * self.rows * self.ways


@dataclass
class PerceptronConfig:
    """Perceptron auxiliary direction predictor.

    Paper: 32 entries as 16 rows x 2 ways, weights over the GPV with 2:1
    virtualisation (34 GPV bits -> 17 weights), protection limit and
    usefulness-based replacement, provider promotion above a global
    usefulness threshold.
    """

    enabled: bool = True
    rows: int = 16
    ways: int = 2
    weight_count: int = 17
    #: Signed weight magnitude limit (assumption: 6-bit -> +/-31).
    weight_limit: int = 31
    #: Installs start with this protection count (assumption: 4).
    protection_limit: int = 4
    usefulness_bits: int = 4
    #: Usefulness at/above which the perceptron becomes the provider
    #: (the paper's "predetermined global threshold"; assumption: 3).
    provider_threshold: int = 3
    #: Below this usefulness the entry is still "learning": usefulness is
    #: incremented even when both perceptron and alternate are wrong.
    learning_threshold: int = 2
    #: Weight magnitude at/below which virtualisation retargets the
    #: weight to its alternate GPV bit (assumption: 2).
    virtualization_threshold: int = 2
    #: Updates an entry must have seen before virtualisation can occur.
    virtualization_age: int = 16

    def validate(self) -> None:
        if self.enabled:
            _require_power_of_two("perceptron.rows", self.rows)
            if self.ways < 1:
                raise ConfigError("perceptron.ways must be >= 1")
            if self.weight_count < 1:
                raise ConfigError("perceptron.weight_count must be >= 1")

    @property
    def capacity(self) -> int:
        return self.rows * self.ways if self.enabled else 0


@dataclass
class CtbConfig:
    """Changing target buffer.  Paper: 2K entries as 4 x 512 arrays,
    indexed solely by the GPV, tagged with virtual-address bits."""

    rows: int = 512
    ways: int = 4
    tag_bits: int = 12
    #: GPV branches used for the index (z15: 17, pre-z15: 9).
    history: int = 17

    def validate(self) -> None:
        _require_power_of_two("ctb.rows", self.rows)
        if self.ways < 1:
            raise ConfigError("ctb.ways must be >= 1")

    @property
    def capacity(self) -> int:
        return self.rows * self.ways


@dataclass
class CrsConfig:
    """Call/return stack heuristic (section VI).

    One-entry stacks on both the completion (detection) and prediction
    sides; a branch whose taken distance exceeds ``distance_threshold``
    bytes pushes its NSIA; returns may land at NSIA plus one of
    ``return_offsets``.  CRS-mispredicting branches are blacklisted with
    ``amnesty_period`` granting periodic second chances.
    """

    enabled: bool = True
    #: Minimum |target - branch| in bytes to treat a branch as a call
    #: (paper: "a predetermined threshold number of byte blocks";
    #: assumption: 1024).
    distance_threshold: int = 1024
    #: Allowed return-landing offsets from the NSIA (paper: 0,2,4,6,8).
    return_offsets: tuple = (0, 2, 4, 6, 8)
    #: Every Nth completing wrong-target blacklisted branch is granted
    #: amnesty (assumption: 16).
    amnesty_period: int = 16

    def validate(self) -> None:
        if self.enabled and self.distance_threshold < 2:
            raise ConfigError("crs.distance_threshold must be >= 2")


@dataclass
class CpredConfig:
    """Column predictor: stream-indexed fast re-index + power prediction."""

    enabled: bool = True
    rows: int = 512
    ways: int = 2
    tag_bits: int = 10

    def validate(self) -> None:
        if self.enabled:
            _require_power_of_two("cpred.rows", self.rows)

    @property
    def capacity(self) -> int:
        return self.rows * self.ways if self.enabled else 0


@dataclass
class SpeculativeOverlayConfig:
    """SBHT / SPHT speculative direction overlays (section IV)."""

    enabled: bool = True
    #: Entries per overlay (assumption: 8 each; the paper says "a small
    #: number of entries").
    entries: int = 8

    def validate(self) -> None:
        if self.enabled and self.entries < 1:
            raise ConfigError("speculative overlay needs at least one entry")


@dataclass
class PredictorConfig:
    """Complete configuration of one modelled branch predictor."""

    btb1: Btb1Config = field(default_factory=Btb1Config)
    btb2: Optional[Btb2Config] = field(default_factory=Btb2Config)
    pht: PhtConfig = field(default_factory=PhtConfig)
    perceptron: PerceptronConfig = field(default_factory=PerceptronConfig)
    ctb: CtbConfig = field(default_factory=CtbConfig)
    crs: CrsConfig = field(default_factory=CrsConfig)
    cpred: CpredConfig = field(default_factory=CpredConfig)
    speculative: SpeculativeOverlayConfig = field(
        default_factory=SpeculativeOverlayConfig
    )
    #: Taken branches tracked by the GPV (z14/z15: 17, earlier: 9).
    gpv_depth: int = 17
    #: Bits of hashed branch address shifted into the GPV per taken branch.
    gpv_bits_per_branch: int = 2
    #: SKOOT empty-search skipping (z15 only).
    skoot_enabled: bool = True
    #: Maximum SKOOT skip distance in lines (field width assumption: 4 bits).
    skoot_max: int = 15
    #: In-flight branches between prediction and non-speculative update.
    completion_delay: int = 12
    #: Global prediction queue depth (assumption: 128).
    gpq_capacity: int = 128
    #: Write (install/update) queue depth (assumption: 16).
    write_queue_capacity: int = 16
    #: Write-queue entries drained per completion step ("up to one write
    #: queue entry per cycle"; several cycles pass per branch).
    write_drain_per_step: int = 4
    #: Functional-walk cap: sequential-search gaps longer than this many
    #: lines are summarised rather than searched line by line.
    search_walk_cap: int = 64
    #: Lines of additional walking before BTB2 staging-queue content
    #: becomes visible to the searcher (transfer latency approximation).
    btb2_visibility_lines: int = 2
    name: str = "custom"

    def validate(self) -> "PredictorConfig":
        """Check cross-field consistency; returns self for chaining."""
        self.btb1.validate()
        if self.btb2 is not None:
            self.btb2.validate()
        self.pht.validate()
        self.perceptron.validate()
        self.ctb.validate()
        self.crs.validate()
        self.cpred.validate()
        self.speculative.validate()
        if self.gpv_depth < 1:
            raise ConfigError("gpv_depth must be >= 1")
        if self.gpv_bits_per_branch < 1:
            raise ConfigError("gpv_bits_per_branch must be >= 1")
        gpv_bits = self.gpv_depth * self.gpv_bits_per_branch
        if self.pht.long_history > self.gpv_depth:
            raise ConfigError(
                f"pht.long_history ({self.pht.long_history}) exceeds "
                f"gpv_depth ({self.gpv_depth})"
            )
        if self.ctb.history > self.gpv_depth:
            raise ConfigError(
                f"ctb.history ({self.ctb.history}) exceeds gpv_depth "
                f"({self.gpv_depth})"
            )
        if self.perceptron.enabled and self.perceptron.weight_count > gpv_bits:
            raise ConfigError(
                f"perceptron.weight_count ({self.perceptron.weight_count}) "
                f"exceeds GPV width ({gpv_bits})"
            )
        if self.completion_delay < 0:
            raise ConfigError("completion_delay must be >= 0")
        if self.completion_delay >= self.gpq_capacity:
            raise ConfigError("completion_delay must be < gpq_capacity")
        return self
