"""Generation presets: zEC12, z13, z14, z15.

The paper states the zEC12 (4K BTB1 / 24K BTB2) and z15 (16K / 128K)
BTB sizes, the GPV history change (9 branches before z14, 17 since), the
introduction points of the perceptron and CRS (z14), the single tagged
PHT (z196..z14) versus the two-table TAGE arrangement (z15), the BTBP
removal and SKOOT introduction (z15), and the search-port change
(2 x 32B before z15, 1 x 64B on z15).  The z13/z14 BTB capacities are not
in the available text of Table 1 and are interpolated from the IBM
Journal articles the paper cites; the presets mark those fields
approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.configs.predictor import (
    Btb1Config,
    Btb2Config,
    CpredConfig,
    CrsConfig,
    CtbConfig,
    PerceptronConfig,
    PhtConfig,
    PredictorConfig,
    SpeculativeOverlayConfig,
)


@dataclass
class GenerationInfo:
    """Descriptive metadata for one processor generation preset."""

    name: str
    year: int
    l1i_kib: int
    l2i_kib: int
    btb1_branches: int
    btb2_branches: int
    #: Fields whose sizes are interpolated rather than stated by the paper.
    approximate_fields: List[str] = field(default_factory=list)
    notes: str = ""


def zec12_config() -> PredictorConfig:
    """zEC12 (2012): 4K BTB1 + 24K BTB2, semi-exclusive, 9-branch GPV,
    single tagged PHT, no perceptron/CRS/SKOOT."""
    return PredictorConfig(
        name="zEC12",
        btb1=Btb1Config(rows=1024, ways=4, policy="lru", line_size=32),
        # 24K is not a power-of-two organisation; modelled as 8K rows x 4
        # ways = 32K capacity with inclusive=False semi-exclusive handling
        # approximating the paper's 24K effective capacity.
        btb2=Btb2Config(rows=4096, ways=4, inclusive=False),
        pht=PhtConfig(tage=False, rows=256, ways=4, short_history=9, long_history=9),
        perceptron=PerceptronConfig(enabled=False),
        ctb=CtbConfig(rows=256, ways=4, history=9),
        crs=CrsConfig(enabled=False),
        cpred=CpredConfig(enabled=False),
        speculative=SpeculativeOverlayConfig(enabled=True),
        gpv_depth=9,
        skoot_enabled=False,
    ).validate()


def z13_config() -> PredictorConfig:
    """z13 (2015): larger BTBs, 9-branch GPV, single tagged PHT,
    strict dispatch synchronisation introduced."""
    return PredictorConfig(
        name="z13",
        btb1=Btb1Config(rows=1024, ways=6, policy="lru", line_size=32),
        btb2=Btb2Config(rows=8192, ways=4, inclusive=False),
        pht=PhtConfig(tage=False, rows=512, ways=6, short_history=9, long_history=9),
        perceptron=PerceptronConfig(enabled=False),
        ctb=CtbConfig(rows=512, ways=4, history=9),
        crs=CrsConfig(enabled=False),
        cpred=CpredConfig(enabled=False),
        speculative=SpeculativeOverlayConfig(enabled=True),
        gpv_depth=9,
        skoot_enabled=False,
    ).validate()


def z14_config() -> PredictorConfig:
    """z14 (2017): 17-branch GPV, perceptron and basic CRS introduced,
    CPRED introduced, still single tagged PHT and BTBP-era install path."""
    return PredictorConfig(
        name="z14",
        btb1=Btb1Config(rows=2048, ways=4, policy="lru", line_size=32),
        btb2=Btb2Config(rows=16384, ways=4, inclusive=False),
        # The single tagged PHT keeps the z13-era 9-branch index function
        # (the z15 short table also indexes with 9 of the 17 GPV
        # branches); only the perceptron consumes the full 17.
        pht=PhtConfig(tage=False, rows=512, ways=8, short_history=9,
                      long_history=9),
        perceptron=PerceptronConfig(enabled=True),
        ctb=CtbConfig(rows=512, ways=4, history=9),
        crs=CrsConfig(enabled=True),
        cpred=CpredConfig(enabled=True),
        speculative=SpeculativeOverlayConfig(enabled=True),
        gpv_depth=17,
        skoot_enabled=False,
    ).validate()


def z15_config() -> PredictorConfig:
    """z15 (2019): the paper's design.  16K BTB1 (2K x 8), 128K BTB2
    (32K x 4) semi-inclusive with periodic refresh, two-table TAGE PHT,
    perceptron, enhanced CRS, CPRED + SKOOT, 17-branch GPV."""
    return PredictorConfig(
        name="z15",
        btb1=Btb1Config(rows=2048, ways=8),
        btb2=Btb2Config(rows=32768, ways=4, inclusive=True),
        pht=PhtConfig(tage=True, rows=512, ways=8, short_history=9, long_history=17),
        perceptron=PerceptronConfig(enabled=True),
        ctb=CtbConfig(rows=512, ways=4, history=17),
        crs=CrsConfig(enabled=True),
        cpred=CpredConfig(enabled=True),
        speculative=SpeculativeOverlayConfig(enabled=True),
        gpv_depth=17,
        skoot_enabled=True,
    ).validate()


#: Factories plus descriptive metadata, in chronological order.
GENERATIONS: Dict[str, "tuple[Callable[[], PredictorConfig], GenerationInfo]"] = {
    "zEC12": (
        zec12_config,
        GenerationInfo(
            name="zEC12",
            year=2012,
            l1i_kib=64,
            l2i_kib=1024,
            btb1_branches=4096,
            btb2_branches=24576,
            approximate_fields=["l2i_kib"],
            notes="original multi-level BTB design (paper section III)",
        ),
    ),
    "z13": (
        z13_config,
        GenerationInfo(
            name="z13",
            year=2015,
            l1i_kib=96,
            l2i_kib=2048,
            btb1_branches=6144,
            btb2_branches=32768,
            approximate_fields=["btb1_branches", "btb2_branches"],
            notes="strict dispatch synchronisation introduced",
        ),
    ),
    "z14": (
        z14_config,
        GenerationInfo(
            name="z14",
            year=2017,
            l1i_kib=128,
            l2i_kib=2048,
            btb1_branches=8192,
            btb2_branches=65536,
            approximate_fields=["btb1_branches", "btb2_branches"],
            notes="perceptron, CRS, CPRED and 17-branch GPV introduced",
        ),
    ),
    "z15": (
        z15_config,
        GenerationInfo(
            name="z15",
            year=2019,
            l1i_kib=128,
            l2i_kib=4096,
            btb1_branches=16384,
            btb2_branches=131072,
            notes="the paper's design: TAGE PHT, SKOOT, BTBP removed",
        ),
    ),
}
