"""Timing parameters for the cycle-level engine.

The paper gives these numbers directly (sections I-IV); anything it does
not state is marked as an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass
class TimingConfig:
    """Cycle-level costs and bandwidths of the modelled front end."""

    #: Branch-prediction search pipeline depth, b0..b5 (paper: 6 cycles).
    bpl_pipeline_depth: int = 6
    #: Cycles between taken-branch predictions without CPRED, single
    #: thread (paper: 5) and SMT2 (paper: 6, port sharing).
    taken_interval_st: int = 5
    taken_interval_smt2: int = 6
    #: Cycles between taken-branch predictions on a CPRED hit (paper: 2).
    taken_interval_cpred: int = 2
    #: Bytes of address space covered per search (paper: 64).
    search_bytes_per_cycle: int = 64
    #: Instruction fetch bandwidth (paper: 32 bytes/cycle).
    fetch_bytes_per_cycle: int = 32
    #: Pipeline restart penalty for a branch wrong (paper: "up to 26").
    restart_penalty: int = 26
    #: Statistical penalty including queueing disruption (paper: ~35).
    statistical_restart_penalty: int = 35
    #: Additional inefficiency refilling the issue queue after a complete
    #: restart (paper: "up to 10 cycles").
    restart_refill_penalty: int = 10
    #: L1 I-cache hit latency in cycles (assumption: 4).
    l1i_latency: int = 4
    #: L2 I-cache latency over an L1 hit (paper: minimum of 8 cycles).
    l2i_extra_latency: int = 8
    #: L3 latency over an L1 hit (paper: 45 cycles).
    l3_extra_latency: int = 45
    #: Memory latency over an L1 hit (assumption: 250).
    memory_extra_latency: int = 250
    #: Cycles the back end takes to produce an indirect surprise target
    #: (paper: "generally about a dozen cycles into the back end").
    indirect_resolution_delay: int = 12
    #: Decode-time restart cost for a statically-guessed-taken relative
    #: surprise branch, where "the front end ... can generate the restart
    #: address" (assumption: 8 cycles).
    decode_restart_penalty: int = 8
    #: Maximum instructions decoded/dispatched per cycle (paper: 6).
    dispatch_width: int = 6

    def validate(self) -> "TimingConfig":
        if self.bpl_pipeline_depth < 1:
            raise ConfigError("bpl_pipeline_depth must be >= 1")
        if self.taken_interval_cpred > self.taken_interval_st:
            raise ConfigError("CPRED interval cannot exceed the base interval")
        if self.search_bytes_per_cycle < self.fetch_bytes_per_cycle:
            raise ConfigError(
                "search bandwidth below fetch bandwidth would let fetch "
                "permanently outrun prediction"
            )
        return self
