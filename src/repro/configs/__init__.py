"""Configuration presets for the modelled predictor generations."""

from repro.configs.predictor import (
    Btb1Config,
    Btb2Config,
    CpredConfig,
    CrsConfig,
    CtbConfig,
    PerceptronConfig,
    PhtConfig,
    PredictorConfig,
    SpeculativeOverlayConfig,
)
from repro.configs.generations import (
    GENERATIONS,
    GenerationInfo,
    z15_config,
    z14_config,
    z13_config,
    zec12_config,
)
from repro.configs.timing import TimingConfig

__all__ = [
    "Btb1Config",
    "Btb2Config",
    "CpredConfig",
    "CrsConfig",
    "CtbConfig",
    "PerceptronConfig",
    "PhtConfig",
    "PredictorConfig",
    "SpeculativeOverlayConfig",
    "TimingConfig",
    "GENERATIONS",
    "GenerationInfo",
    "z15_config",
    "z14_config",
    "z13_config",
    "zec12_config",
]
