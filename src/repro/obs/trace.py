"""The JSONL branch-trace sink: schema, writer, validation, reconcile.

A trace file is one JSON object per line, four record types:

* ``header`` — first line; schema version plus run identity (workload,
  predictor, seed, planned branches, sampling settings).
* ``branch`` — one counted branch (compact keys, see
  :data:`BRANCH_FIELDS`); written every ``every``-th branch.
* ``interval`` — one :class:`~repro.obs.sampler.IntervalSampler` window.
* ``summary`` — last line; the run's
  :func:`~repro.verification.differential.comparable_stats` slice and
  the final telemetry registry export.

The schema is versioned (:data:`TRACE_SCHEMA`); loaders reject files
whose header claims a different version.  When a trace is unsampled
(``every == 1``) :func:`reconcile` recomputes every shared accuracy
invariant from the branch records and diffs it against the summary —
the cross-check the ``repro trace --validate`` CLI and the CI trace
smoke job run.

Timestamps are deliberately absent: a trace of a seeded run is
byte-reproducible, which is what lets tests pin round-trips.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional

from repro.core.predictor import PredictionOutcome
from repro.stats.metrics import (
    MISPREDICT_CLASSES,
    MispredictClass,
    RunStats,
    classify,
)

#: Version tag in every trace header.
TRACE_SCHEMA = "repro-trace/v1"

#: Required keys per record type ("branch" keys are compact: one or two
#: letters, decoded below).
HEADER_FIELDS = ("type", "schema", "workload", "predictor", "seed",
                 "branches", "interval", "every")
BRANCH_FIELDS = (
    "type",
    "i",     # counted-branch index (0-based)
    "seq",   # global sequence number
    "addr",  # branch address
    "dyn",   # dynamically predicted (BTB1 hit)
    "pt",    # predicted taken
    "ptgt",  # predicted target (null when none)
    "taken", # resolved direction
    "tgt",   # resolved target (null when not taken)
    "cls",   # mispredict class (MispredictClass.value)
    "dp",    # direction provider (DirectionProvider.value)
    "tp",    # target provider (TargetProvider.value)
    "ls",    # lines searched reaching this branch
    "es",    # empty searches
    "sk",    # lines skipped by SKOOT
    "so",    # SKOOT overshoot flag
    "b2",    # BTB2 searches triggered
    "bpr",   # bad predictions removed
    "btr",   # bad-taken restarts
    "cpa",   # CPRED-accelerated stream exit flag
)
INTERVAL_FIELDS = ("type", "index", "branch_start", "branch_end", "branches",
                   "mispredicts", "accuracy", "mpki_approx",
                   "dynamic_coverage", "taken_rate", "provider_share")
SUMMARY_FIELDS = ("type", "stats", "telemetry")

_REQUIRED = {
    "header": HEADER_FIELDS,
    "branch": BRANCH_FIELDS,
    "interval": INTERVAL_FIELDS,
    "summary": SUMMARY_FIELDS,
}

#: Mispredict-class values that count as mispredicted branches.
_MISPREDICT_VALUES = frozenset(klass.value for klass in MISPREDICT_CLASSES)


class TraceSchemaError(ValueError):
    """A trace line violates the schema."""


def branch_record(index: int, outcome: PredictionOutcome) -> Dict[str, object]:
    """Encode one counted outcome as a compact branch record."""
    record = outcome.record
    trace = outcome.trace
    return {
        "type": "branch",
        "i": index,
        "seq": record.sequence,
        "addr": record.address,
        "dyn": record.dynamic,
        "pt": record.predicted_taken,
        "ptgt": record.predicted_target,
        "taken": bool(record.actual_taken),
        "tgt": record.actual_target,
        "cls": classify(outcome).value,
        "dp": record.direction_provider.value,
        "tp": record.target_provider.value,
        "ls": trace.lines_searched,
        "es": trace.empty_searches,
        "sk": trace.lines_skipped_by_skoot,
        "so": trace.skoot_overshoot,
        "b2": trace.btb2_triggers,
        "bpr": trace.bad_predictions_removed,
        "btr": trace.bad_taken_restarts,
        "cpa": trace.cpred_accelerated,
    }


def validate_record(obj: object, line_number: int = 0) -> Dict[str, object]:
    """Check one decoded trace line against the schema; returns it."""
    where = f"line {line_number}" if line_number else "record"
    if not isinstance(obj, dict):
        raise TraceSchemaError(f"{where}: expected a JSON object, "
                               f"got {type(obj).__name__}")
    kind = obj.get("type")
    required = _REQUIRED.get(kind)
    if required is None:
        raise TraceSchemaError(f"{where}: unknown record type {kind!r}")
    missing = [key for key in required if key not in obj]
    if missing:
        raise TraceSchemaError(
            f"{where}: {kind} record missing fields {missing}"
        )
    if kind == "header" and obj["schema"] != TRACE_SCHEMA:
        raise TraceSchemaError(
            f"{where}: unsupported trace schema {obj['schema']!r} "
            f"(expected {TRACE_SCHEMA!r})"
        )
    return obj


class TraceWriter:
    """Streams trace records to a JSONL file.

    Use as a context manager, or call :meth:`close` explicitly.  The
    header must be written first (:meth:`write_header`); the summary
    (:meth:`write_summary`) is normally last.

    Crash contract: the writer flushes every ``flush_every`` records and
    again on context-manager exit *including the error path*, so a run
    that dies mid-trace leaves a file whose damage is bounded to one
    torn tail line — which :func:`repro.stats.analysis.load_trace`
    drops on reload instead of refusing the whole file.
    """

    #: Records between forced flushes (bounds data lost to a hard kill).
    flush_every = 256

    def __init__(self, path: str, every: int = 1):
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.path = str(path)
        self.every = every
        self.records_written = 0
        self.branches_seen = 0
        self._stream: Optional[IO[str]] = open(self.path, "w")

    # -- record emission -----------------------------------------------

    def _emit(self, record: Dict[str, object]) -> None:
        stream = self._stream
        if stream is None:
            raise ValueError(f"trace writer for {self.path} is closed")
        stream.write(json.dumps(record, sort_keys=False,
                                separators=(",", ":")))
        stream.write("\n")
        self.records_written += 1
        if self.records_written % self.flush_every == 0:
            stream.flush()

    def write_header(self, *, workload: str, predictor: str, seed: int,
                     branches: int, interval: int) -> None:
        self._emit({
            "type": "header",
            "schema": TRACE_SCHEMA,
            "workload": workload,
            "predictor": predictor,
            "seed": seed,
            "branches": branches,
            "interval": interval,
            "every": self.every,
        })

    def observe(self, outcome: PredictionOutcome) -> None:
        """Record one counted branch (subject to ``every`` sampling)."""
        index = self.branches_seen
        self.branches_seen += 1
        if index % self.every == 0:
            self._emit(branch_record(index, outcome))

    def write_interval(self, sample: Dict[str, object]) -> None:
        record = {"type": "interval"}
        record.update(sample)
        self._emit(record)

    def write_summary(self, stats: Dict[str, object],
                      telemetry: Dict[str, object]) -> None:
        self._emit({"type": "summary", "stats": stats,
                    "telemetry": telemetry})

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            from repro.common.atomic import durable_flush

            # Durable close (flush + fsync): a completed trace survives
            # a crash of whatever runs after it.  Mid-run flushes stay
            # plain flushes — fsync every 256 branch records would sit
            # on the simulation hot path.
            durable_flush(self._stream)
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        # Flush-then-close on both paths: an exception inside the block
        # must still leave everything written so far on disk, so the
        # file stays loadable (minus at most a torn tail).
        self.close()


# ----------------------------------------------------------------------
# Reconciliation: branch records vs the summary aggregate
# ----------------------------------------------------------------------


def aggregate_branch_records(
    branches: List[Dict[str, object]]
) -> Dict[str, object]:
    """Recompute the shared accuracy invariants from branch records.

    Produces the same shape as :func:`~repro.verification.differential.
    comparable_stats` minus ``instructions`` (not derivable from a
    branch stream).
    """
    classes: Dict[str, int] = {}
    direction_providers: Dict[str, List[int]] = {}
    target_providers: Dict[str, List[int]] = {}
    totals = {
        "branches": 0,
        "dynamic_predictions": 0,
        "surprise_branches": 0,
        "taken_branches": 0,
        "mispredicted_branches": 0,
        "direction_wrong": 0,
        "target_wrong": 0,
        "lines_searched": 0,
        "empty_searches": 0,
        "lines_skipped_by_skoot": 0,
        "skoot_overshoots": 0,
        "btb2_triggers": 0,
        "bad_predictions_removed": 0,
        "bad_taken_restarts": 0,
        "cpred_accelerated_streams": 0,
        "predicted_taken_dynamic": 0,
    }
    for record in branches:
        totals["branches"] += 1
        dynamic = record["dyn"]
        taken = record["taken"]
        predicted_taken = record["pt"]
        if dynamic:
            totals["dynamic_predictions"] += 1
        else:
            totals["surprise_branches"] += 1
        if taken:
            totals["taken_branches"] += 1
        klass = record["cls"]
        classes[klass] = classes.get(klass, 0) + 1
        if klass in _MISPREDICT_VALUES:
            totals["mispredicted_branches"] += 1
        if klass == MispredictClass.DIRECTION_WRONG.value:
            totals["direction_wrong"] += 1
        elif klass == MispredictClass.TARGET_WRONG.value:
            totals["target_wrong"] += 1
        provider = record["dp"]
        stats = direction_providers.get(provider)
        if stats is None:
            stats = direction_providers[provider] = [0, 0]
        stats[0] += 1
        if predicted_taken == taken:
            stats[1] += 1
        if dynamic and predicted_taken:
            totals["predicted_taken_dynamic"] += 1
            if taken:
                target = record["tp"]
                tstats = target_providers.get(target)
                if tstats is None:
                    tstats = target_providers[target] = [0, 0]
                tstats[0] += 1
                if record["ptgt"] == record["tgt"]:
                    tstats[1] += 1
        totals["lines_searched"] += record["ls"]
        totals["empty_searches"] += record["es"]
        totals["lines_skipped_by_skoot"] += record["sk"]
        if record["so"]:
            totals["skoot_overshoots"] += 1
        totals["btb2_triggers"] += record["b2"]
        totals["bad_predictions_removed"] += record["bpr"]
        totals["bad_taken_restarts"] += record["btr"]
        if record["cpa"]:
            totals["cpred_accelerated_streams"] += 1
    aggregate: Dict[str, object] = dict(totals)
    aggregate["classes"] = {k: v for k, v in sorted(classes.items()) if v}
    aggregate["direction_providers"] = {
        k: v for k, v in sorted(direction_providers.items())
    }
    aggregate["target_providers"] = {
        k: v for k, v in sorted(target_providers.items())
    }
    return aggregate


def reconcile(header: Dict[str, object],
              branches: List[Dict[str, object]],
              summary: Dict[str, object]) -> List[str]:
    """Diff the branch-record aggregate against the summary stats.

    Returns human-readable mismatch strings (empty means the trace's
    per-branch records and its aggregate agree exactly).  Sampled traces
    (``every > 1``) cannot reconcile; one explanatory message comes back.
    """
    if header.get("every", 1) != 1:
        return [
            f"trace is sampled (every={header.get('every')}); "
            f"per-branch reconciliation requires every=1"
        ]
    recomputed = aggregate_branch_records(branches)
    stats = summary.get("stats", {})
    mismatches = []
    for key, value in recomputed.items():
        expected = stats.get(key)
        if expected != value:
            mismatches.append(
                f"{key}: summary={expected!r} recomputed={value!r}"
            )
    return mismatches


def reconcile_with_stats(branches: List[Dict[str, object]],
                         stats: RunStats) -> List[str]:
    """Diff the branch-record aggregate against a live RunStats."""
    from repro.verification.differential import comparable_stats

    recomputed = aggregate_branch_records(branches)
    reference = comparable_stats(stats)
    mismatches = []
    for key, value in recomputed.items():
        if reference.get(key) != value:
            mismatches.append(
                f"{key}: stats={reference.get(key)!r} trace={value!r}"
            )
    return mismatches
