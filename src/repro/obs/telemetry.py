"""The telemetry registry: named counters, gauges and histograms.

The paper reasons about the predictor through *component-level* numbers
— BTB2 transfer effectiveness, TAGE override rates, SKOOT search savings
(§IV-V) — so the observability layer is organised the same way: every
instrument has a dotted name whose first segment is the owning component
(``btb1.hits``, ``skoot.lines_skipped``, ``gpq.occupancy``), and reports
group by that prefix.

Two implementations share the interface:

* :class:`Telemetry` — the real registry.  Instruments are created on
  first use and kept in insertion-independent sorted order when
  exported.
* :class:`NullTelemetry` — the null object (:data:`NULL_TELEMETRY`).
  Every method is a no-op and the instance is *falsy*, so instrumented
  code can keep the PR-2 hot-path discipline: guard the per-branch work
  behind one truthiness check (``if telemetry:``), exactly like the
  engines' ``observer is None`` fast paths, and pay nothing when
  telemetry is off.

Nothing in this module imports the simulator; the registry is a plain
data structure so the trace loader can rebuild one from JSON.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Version tag for every machine-readable telemetry export.
TELEMETRY_SCHEMA = "repro-telemetry/v1"


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (occupancy, capacity, harvested totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


#: Default histogram bucket upper bounds (values above the last bound
#: land in the overflow bucket).
DEFAULT_BOUNDS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


class Histogram:
    """A fixed-bucket histogram with count/total/min/max summary.

    ``bounds`` are inclusive upper bounds; one overflow bucket catches
    everything beyond the last bound.  Buckets are fixed at creation so
    two histograms of the same name always merge/compare cleanly.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left makes each bound inclusive: value == bounds[i]
        # lands in bucket i; values past the last bound overflow.
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def percentile(self, q: float) -> Optional[float]:
        """Bucket-interpolated percentile estimate (``q`` in [0, 1]).

        The true sample values inside a bucket are gone, so the estimate
        interpolates linearly across the bucket's bound span; the first
        bucket's lower edge and the overflow bucket's upper edge come
        from the tracked min/max.  Returns None for an empty histogram
        (rendered as "n/a" downstream).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile q must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for index, in_bucket in enumerate(self.buckets):
            if in_bucket == 0:
                continue
            below = cumulative
            cumulative += in_bucket
            if cumulative >= target:
                if index == 0:
                    lower = self.min if self.min is not None else self.bounds[0]
                else:
                    lower = self.bounds[index - 1]
                if index < len(self.bounds):
                    upper = self.bounds[index]
                else:
                    upper = self.max if self.max is not None else lower
                fraction = (target - below) / in_bucket
                estimate = lower + fraction * (upper - lower)
                # Clamp to the observed range: interpolation never
                # invents values outside [min, max].
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
        return self.max

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (bucket-wise addition).

        Requires identical bounds — the reason bounds are fixed at
        creation.  Commutative and associative over the exported dict,
        so cross-cell aggregation can fold in any order.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bounds differ "
                f"({self.bounds} vs {other.bounds})"
            )
        for index, in_bucket in enumerate(other.buckets):
            self.buckets[index] += in_bucket
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min,
                                                             other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max,
                                                              other.max)
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            # Bucket-interpolated estimates (None when empty); derived,
            # so from_dict round-trips recompute them consistently.
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


def component_of(name: str) -> str:
    """The owning component of a dotted instrument name."""
    return name.split(".", 1)[0]


class Telemetry:
    """A registry of named instruments, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return True

    # -- instrument access ---------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    # -- recording convenience -----------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.value += amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).value = value

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        histogram.observe(value)

    def merge_counts(self, prefix: str, counts: Dict[str, float]) -> None:
        """Harvest a component's native counter dict as gauges.

        Core structures keep plain-int statistics attributes (zero
        overhead whether or not telemetry is attached); at snapshot time
        those are folded in under ``<prefix>.<key>``.
        """
        for key, value in counts.items():
            self.set_gauge(f"{prefix}.{key}", value)

    # -- cross-run aggregation -----------------------------------------

    def merge(self, other) -> "Telemetry":
        """Fold another registry into this one, instrument by instrument.

        Counters add, gauges add (every gauge in this system is a
        harvested total, so addition is the rollup semantics), and
        histograms merge bucket-wise (same-name histograms must share
        bounds).  Merging is commutative and associative over
        :meth:`to_dict`, and a fresh (or null) registry is the identity
        — the properties the cross-cell aggregation tests pin.  Accepts
        a :class:`Telemetry`, a falsy null object (no-op), or a
        :meth:`to_dict` payload.
        """
        if not other:
            return self
        if isinstance(other, dict):
            other = Telemetry.from_dict(other)
        for name, counter in other.counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other.gauges.items():
            self.gauge(name).value += gauge.value
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)
        return self

    # -- export ---------------------------------------------------------

    def components(self) -> List[str]:
        names: set = set()
        for mapping in (self.counters, self.gauges, self.histograms):
            names.update(component_of(name) for name in mapping)
        return sorted(names)

    def component_items(
        self, component: str
    ) -> Iterable[Tuple[str, object]]:
        """(name, instrument) pairs of one component, name-sorted."""
        prefix = component + "."
        for mapping in (self.counters, self.gauges, self.histograms):
            for name in sorted(mapping):
                if name.startswith(prefix) or name == component:
                    yield name, mapping[name]

    def to_dict(self) -> Dict[str, object]:
        """A stable, JSON-serialisable snapshot of every instrument."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].value for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Telemetry":
        """Rebuild a registry from :meth:`to_dict` output (trace loader)."""
        telemetry = cls()
        for name, value in payload.get("counters", {}).items():
            telemetry.counter(name).value = value
        for name, value in payload.get("gauges", {}).items():
            telemetry.set_gauge(name, value)
        for name, data in payload.get("histograms", {}).items():
            histogram = telemetry.histogram(name, data["bounds"])
            histogram.buckets = list(data["buckets"])
            histogram.count = data["count"]
            histogram.total = data["total"]
            histogram.min = data["min"]
            histogram.max = data["max"]
        return telemetry


class NullTelemetry:
    """The off-mode registry: falsy, and every operation is a no-op.

    Instrumented code holds one of these by default, so call sites can
    either skip the work entirely behind ``if telemetry:`` (the hot-path
    pattern) or call through unconditionally on cold paths.
    """

    enabled = False

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:
        return Counter(name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(name)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        return Histogram(name, bounds)

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge_counts(self, prefix: str, counts: Dict[str, float]) -> None:
        pass

    def merge(self, other) -> "NullTelemetry":
        return self

    def components(self) -> List[str]:
        return []

    def component_items(self, component: str):
        return iter(())

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": TELEMETRY_SCHEMA,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


#: The shared off-mode singleton (stateless, safe to share everywhere).
NULL_TELEMETRY = NullTelemetry()
