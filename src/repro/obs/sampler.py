"""Interval time-series sampling: MPKI / accuracy / provider share.

"Branch Prediction Is Not a Solved Problem" localises accuracy problems
by *windowing* the run — a predictor that looks fine in aggregate can be
terrible in one phase.  The :class:`IntervalSampler` implements that
view: every ``interval`` observed branches it closes a window and emits
one sample with the window's misprediction rate, direction accuracy,
dynamic coverage and direction-provider share.

MPKI inside a window is necessarily approximate when the stream carries
no per-branch instruction counts; the sampler derives it through the
engine's :data:`~repro.engine.functional.INSTRUCTIONS_PER_BRANCH`
density (the same approximation :class:`~repro.stats.metrics.RunStats`
flags via ``instructions_approximate``) and labels the field
``mpki_approx`` to keep that visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.predictor import PredictionOutcome
from repro.engine.functional import INSTRUCTIONS_PER_BRANCH
from repro.stats.metrics import MISPREDICT_CLASSES, MispredictClass, classify


class IntervalSampler:
    """Windows the outcome stream and emits per-interval samples."""

    def __init__(self, interval: int = 1000):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.samples: List[Dict[str, object]] = []
        self._seen = 0
        self._window_branches = 0
        self._window_mispredicts = 0
        self._window_direction_wrong = 0
        self._window_dynamic = 0
        self._window_taken = 0
        self._window_providers: Dict[str, int] = {}

    def observe(self, outcome: PredictionOutcome) -> Optional[Dict[str, object]]:
        """Fold one outcome in; returns the sample that a full window
        just produced, else None."""
        record = outcome.record
        self._seen += 1
        self._window_branches += 1
        if record.dynamic:
            self._window_dynamic += 1
        if record.actual_taken:
            self._window_taken += 1
        provider = record.direction_provider.value
        providers = self._window_providers
        providers[provider] = providers.get(provider, 0) + 1
        klass = classify(outcome)
        if klass in MISPREDICT_CLASSES:
            self._window_mispredicts += 1
            if klass is not MispredictClass.TARGET_WRONG:
                self._window_direction_wrong += 1
        if self._window_branches >= self.interval:
            return self._flush()
        return None

    def _flush(self) -> Dict[str, object]:
        branches = self._window_branches
        instructions = branches * INSTRUCTIONS_PER_BRANCH
        sample: Dict[str, object] = {
            "index": len(self.samples),
            "branch_start": self._seen - branches,
            "branch_end": self._seen,
            "branches": branches,
            "mispredicts": self._window_mispredicts,
            "accuracy": 1.0 - self._window_direction_wrong / branches,
            "mpki_approx": 1000.0 * self._window_mispredicts / instructions,
            "dynamic_coverage": self._window_dynamic / branches,
            "taken_rate": self._window_taken / branches,
            "provider_share": {
                provider: count / branches
                for provider, count in sorted(self._window_providers.items())
            },
        }
        self.samples.append(sample)
        self._window_branches = 0
        self._window_mispredicts = 0
        self._window_direction_wrong = 0
        self._window_dynamic = 0
        self._window_taken = 0
        self._window_providers = {}
        return sample

    def flush_partial(self) -> Optional[Dict[str, object]]:
        """Close a trailing partial window at end of run, if any."""
        if self._window_branches == 0:
            return None
        return self._flush()
