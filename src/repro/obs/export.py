"""OpenMetrics and canonical-JSON export of telemetry registries.

The registry's native export (:meth:`Telemetry.to_dict`) is for
round-tripping inside this codebase; this module renders the same data
in the two shapes external tooling expects:

* :func:`to_openmetrics` — the OpenMetrics text exposition format
  (Prometheus-compatible): ``# TYPE``/``# HELP`` metadata, counters with
  the ``_total`` suffix, histograms as cumulative ``_bucket{le="..."}``
  samples plus ``_sum``/``_count``, and the mandatory ``# EOF``
  terminator.  Dotted instrument names are sanitised to the metric
  charset; the original dotted name rides in the ``# HELP`` line so
  :func:`parse_openmetrics` can restore it.
* :func:`rollup_results` — cross-cell aggregation: merges per-cell
  telemetry payloads from a sweep/fleet into one registry per
  ``(backend, engine_mode, workload)`` group (plus a grand total), which
  :func:`to_openmetrics` then renders as label sets on the samples.

Rendering is deterministic: groups and instruments are emitted sorted,
floats via ``repr`` (shortest round-trip form), so
``render(parse(render(x))) == render(x)`` — the property the round-trip
test pins.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import Telemetry

#: Group keys used for cross-cell rollups, in label order.
ROLLUP_KEYS = ("backend", "engine_mode", "workload")

#: Label set marking the merged-everything group.
TOTAL_LABELS: Tuple[Tuple[str, str], ...] = ()

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_HELP_RE = re.compile(r"^# HELP ([a-zA-Z0-9_:]+) instrument (\S+)")
_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z0-9_:]+) (counter|gauge|histogram)$")
# The label body is a sequence of quoted strings and separators; the
# quoted-string alternative lets a value carry "}" or spaces, which a
# naive [^}]* body would misparse.
_SAMPLE_RE = re.compile(
    r'^([a-zA-Z0-9_:]+)(?:\{((?:[^"}]|"(?:[^"\\]|\\.)*")*)\})? (\S+)$'
)
_LABEL_RE = re.compile(r'([a-zA-Z0-9_]+)="((?:[^"\\]|\\.)*)"')
_UNESCAPE_RE = re.compile(r"\\(.)")


class OpenMetricsError(ValueError):
    """An exposition-format document cannot be parsed."""


def metric_name(instrument_name: str) -> str:
    """Sanitise a dotted instrument name to the metric charset."""
    name = _NAME_RE.sub("_", instrument_name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    # repr() is the shortest round-trip form, and ints stay ints —
    # deterministic output is what makes re-render comparisons exact.
    if isinstance(value, float) and value.is_integer():
        return repr(int(value))
    return repr(value)


def _format_labels(labels: Sequence[Tuple[str, str]],
                   extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(key, str(value).replace("\\", "\\\\")
                         .replace('"', '\\"').replace("\n", "\\n"))
        for key, value in pairs
    )
    return "{" + rendered + "}"


def _normalise_groups(telemetry_or_groups) -> List[
        Tuple[Tuple[Tuple[str, str], ...], Telemetry]]:
    if isinstance(telemetry_or_groups, dict):
        telemetry_or_groups = Telemetry.from_dict(telemetry_or_groups)
    if hasattr(telemetry_or_groups, "to_dict") and not isinstance(
            telemetry_or_groups, (list, tuple)):
        return [(TOTAL_LABELS, telemetry_or_groups)]
    groups = []
    for labels, telemetry in telemetry_or_groups:
        if isinstance(telemetry, dict):
            telemetry = Telemetry.from_dict(telemetry)
        groups.append((tuple(labels), telemetry))
    return groups


def to_openmetrics(telemetry_or_groups) -> str:
    """Render one registry — or ``[(labels, registry), ...]`` groups —
    as an OpenMetrics text exposition document.

    With groups, same-named instruments from different groups share one
    metric family and are distinguished by their label sets, which is
    how per-(backend, engine-mode, workload) rollups read naturally in
    Prometheus-style tooling.
    """
    groups = _normalise_groups(telemetry_or_groups)
    # family name -> (type, dotted name, [(labels, instrument)])
    families: Dict[str, Tuple[str, str, List]] = {}

    def add(kind: str, dotted: str, labels, instrument) -> None:
        base = metric_name(dotted)
        # Counters take the OpenMetrics _total suffix; histograms take
        # _dist unconditionally so a histogram can share its dotted name
        # with a gauge (the registry allows it: gpq.occupancy is both a
        # live gauge and a distribution) without a family collision.
        if kind == "counter":
            name = base + "_total"
        elif kind == "histogram":
            name = base + "_dist"
        else:
            name = base
        family = families.get(name)
        if family is None:
            family = families[name] = (kind, dotted, [])
        elif family[0] != kind:
            raise OpenMetricsError(
                f"instrument {dotted!r} exported as both {family[0]} "
                f"and {kind}"
            )
        family[2].append((labels, instrument))

    for labels, telemetry in groups:
        for dotted in sorted(telemetry.counters):
            add("counter", dotted, labels, telemetry.counters[dotted])
        for dotted in sorted(telemetry.gauges):
            add("gauge", dotted, labels, telemetry.gauges[dotted])
        for dotted in sorted(telemetry.histograms):
            add("histogram", dotted, labels, telemetry.histograms[dotted])

    lines: List[str] = []
    for name in sorted(families):
        kind, dotted, samples = families[name]
        base = name[: -len("_total")] if kind == "counter" else name
        lines.append(f"# HELP {base} instrument {dotted}")
        lines.append(f"# TYPE {base} {kind}")
        for labels, instrument in sorted(samples, key=lambda item: item[0]):
            label_str = _format_labels(labels)
            if kind == "counter":
                lines.append(
                    f"{name}{label_str} {_format_value(instrument.value)}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{name}{label_str} {_format_value(instrument.value)}"
                )
            else:
                cumulative = 0
                for bound, in_bucket in zip(instrument.bounds,
                                            instrument.buckets):
                    cumulative += in_bucket
                    bucket_labels = _format_labels(
                        labels, [("le", _format_value(float(bound)))]
                    )
                    lines.append(f"{base}_bucket{bucket_labels} {cumulative}")
                cumulative += instrument.buckets[-1]
                inf_labels = _format_labels(labels, [("le", "+Inf")])
                lines.append(f"{base}_bucket{inf_labels} {cumulative}")
                lines.append(
                    f"{base}_sum{_format_labels(labels)} "
                    f"{_format_value(instrument.total)}"
                )
                lines.append(
                    f"{base}_count{_format_labels(labels)} "
                    f"{instrument.count}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_labels(raw: Optional[str]) -> Tuple[Tuple[str, str], ...]:
    if not raw:
        return ()
    labels = []
    for match in _LABEL_RE.finditer(raw):
        # One-pass unescape: a single substitution cannot re-read the
        # backslash it just produced, unlike chained str.replace calls
        # (which would turn the escaped pair \\" into a bare quote).
        value = _UNESCAPE_RE.sub(
            lambda m: "\n" if m.group(1) == "n" else m.group(1),
            match.group(2),
        )
        labels.append((match.group(1), value))
    return tuple(labels)


def _parse_number(raw: str, where: str) -> float:
    try:
        return float(raw)
    except ValueError as exc:
        raise OpenMetricsError(f"{where}: bad sample value {raw!r}") from exc


def parse_openmetrics(text: str) -> List[
        Tuple[Tuple[Tuple[str, str], ...], Telemetry]]:
    """Parse a :func:`to_openmetrics` document back into groups.

    Returns ``[(labels, Telemetry), ...]`` with groups and instruments
    restored to their dotted names (via the ``# HELP`` metadata).  Only
    the subset of OpenMetrics this module emits is supported — enough to
    pin ``render(parse(render(x))) == render(x)``.
    """
    kinds: Dict[str, str] = {}
    dotted_names: Dict[str, str] = {}
    groups: Dict[Tuple[Tuple[str, str], ...], Telemetry] = {}
    # histogram assembly state: (labels, base) -> {"buckets": [...], ...}
    partial: Dict[Tuple, Dict] = {}

    def telemetry_for(labels) -> Telemetry:
        telemetry = groups.get(labels)
        if telemetry is None:
            telemetry = groups[labels] = Telemetry()
        return telemetry

    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            if help_match:
                dotted_names[help_match.group(1)] = help_match.group(2)
                continue
            type_match = _TYPE_RE.match(line)
            if type_match:
                kinds[type_match.group(1)] = type_match.group(2)
            continue
        sample = _SAMPLE_RE.match(line)
        if sample is None:
            raise OpenMetricsError(f"line {line_number}: bad sample {line!r}")
        name, raw_labels, raw_value = sample.groups()
        labels = _parse_labels(raw_labels)
        # Resolve the family this sample belongs to.
        if name.endswith("_total") and name[: -len("_total")] in kinds:
            base = name[: -len("_total")]
            kind = kinds[base]
        else:
            base, kind = None, None
            for suffix in ("_bucket", "_sum", "_count", ""):
                candidate = name[: -len(suffix)] if suffix else name
                if candidate in kinds:
                    base, kind = candidate, kinds[candidate]
                    if kind == "histogram" or not suffix:
                        break
            if base is None:
                raise OpenMetricsError(
                    f"line {line_number}: sample {name!r} has no # TYPE"
                )
        dotted = dotted_names.get(base, base)
        if kind == "counter":
            telemetry_for(labels).counter(dotted).value = int(
                _parse_number(raw_value, f"line {line_number}")
            )
        elif kind == "gauge":
            telemetry_for(labels).gauge(dotted).value = _parse_number(
                raw_value, f"line {line_number}"
            )
        else:  # histogram parts
            value = _parse_number(raw_value, f"line {line_number}")
            # The le label is positional bucket metadata, not part of
            # the group identity — strip it before keying the family.
            le_value = None
            group_labels = []
            for key, label_value in labels:
                if key == "le":
                    le_value = label_value
                else:
                    group_labels.append((key, label_value))
            state = partial.setdefault(
                (tuple(group_labels), base),
                {"bounds": [], "cumulative": [], "sum": 0.0, "count": 0},
            )
            if name.endswith("_bucket"):
                if le_value is None:
                    raise OpenMetricsError(
                        f"line {line_number}: bucket sample without le"
                    )
                if le_value != "+Inf":
                    state["bounds"].append(float(le_value))
                state["cumulative"].append(int(value))
            elif name.endswith("_sum"):
                state["sum"] = value
            elif name.endswith("_count"):
                state["count"] = int(value)
            else:
                raise OpenMetricsError(
                    f"line {line_number}: unexpected histogram sample "
                    f"{name!r}"
                )

    for (group_labels, base), state in partial.items():
        dotted = dotted_names.get(base, base)
        bounds = state["bounds"]
        cumulative = state["cumulative"]
        if len(cumulative) != len(bounds) + 1:
            raise OpenMetricsError(
                f"histogram {dotted!r}: {len(cumulative)} buckets for "
                f"{len(bounds)} bounds"
            )
        telemetry = telemetry_for(group_labels)
        histogram = telemetry.histogram(dotted, bounds)
        previous = 0
        for index, total in enumerate(cumulative):
            histogram.buckets[index] = total - previous
            previous = total
        histogram.count = state["count"]
        histogram.total = state["sum"]
    return sorted(groups.items(), key=lambda item: item[0])


def to_canonical_json(telemetry_or_groups) -> str:
    """The same data as canonical JSON (sorted keys, one object).

    Single registries export their :meth:`Telemetry.to_dict`; groups
    export ``{"groups": [{"labels": {...}, "telemetry": {...}}, ...]}``.
    """
    groups = _normalise_groups(telemetry_or_groups)
    if len(groups) == 1 and groups[0][0] == TOTAL_LABELS:
        payload = groups[0][1].to_dict()
    else:
        payload = {
            "groups": [
                {"labels": dict(labels), "telemetry": telemetry.to_dict()}
                for labels, telemetry in sorted(
                    groups, key=lambda item: item[0]
                )
            ]
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _label_value(value) -> str:
    # A fleet cell's ``workload`` may be a materialised Program rather
    # than a suite name — label with its name, not the object repr.
    name = getattr(value, "name", None)
    if name is not None and not isinstance(value, str):
        return str(name)
    return str(value)


def rollup_results(cells, results,
                   keys: Sequence[str] = ROLLUP_KEYS) -> List[
        Tuple[Tuple[Tuple[str, str], ...], Telemetry]]:
    """Merge per-cell telemetry into per-group registries.

    *cells* and *results* are parallel sequences (failed cells'
    ``CellError`` entries carry no telemetry and are skipped).  Each
    cell contributes to its ``(backend, engine_mode, workload)`` group
    and to the unlabeled grand total.  Returns the sorted group list
    :func:`to_openmetrics` accepts directly.
    """
    groups: Dict[Tuple[Tuple[str, str], ...], Telemetry] = {}
    total = Telemetry()
    contributed = False
    for cell, result in zip(cells, results):
        payload = getattr(result, "telemetry", None)
        if not payload:
            continue
        contributed = True
        labels = tuple(
            (key, _label_value(getattr(cell, key, None))) for key in keys
        )
        group = groups.get(labels)
        if group is None:
            group = groups[labels] = Telemetry()
        group.merge(payload)
        total.merge(payload)
    rollup = sorted(groups.items(), key=lambda item: item[0])
    if contributed:
        rollup.append((TOTAL_LABELS, total))
    return rollup


__all__ = [
    "OpenMetricsError",
    "ROLLUP_KEYS",
    "metric_name",
    "parse_openmetrics",
    "rollup_results",
    "to_canonical_json",
    "to_openmetrics",
]
