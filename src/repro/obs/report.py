"""Rendering a telemetry registry as a per-component text report.

The layout follows the paper's own component decomposition: one block
per component prefix (``btb1``, ``btb2``, ``tage``, ``perceptron``,
``cpred``, ``skoot``, ``crs``, ``ctb``, ``gpq``, ``power`` …), counters
and harvested gauges interleaved name-sorted, histograms as one summary
line.  An optional tail shows the last few interval samples so phase
behaviour is visible without loading the trace.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.obs.telemetry import Histogram, Telemetry

#: Preferred block order; components not listed follow alphabetically.
COMPONENT_ORDER = (
    "engine",
    "search",
    "btb1",
    "btb2",
    "staging",
    "direction",
    "target",
    "tage",
    "perceptron",
    "spec",
    "cpred",
    "skoot",
    "crs",
    "ctb",
    "gpq",
    "write_queue",
    "power",
    "mispredict",
    "predictor",
)


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return f"{int(value)}"


def _instrument_line(name: str, instrument: object, width: int) -> str:
    short = name.split(".", 1)[1] if "." in name else name
    if isinstance(instrument, Histogram):
        if instrument.count == 0:
            return f"  {short:<{width}} (no samples; p50/p95/p99 n/a)"
        return (
            f"  {short:<{width}} n={instrument.count}"
            f" mean={instrument.mean:.2f}"
            f" min={_format_value(instrument.min)}"
            f" max={_format_value(instrument.max)}"
            f" p50={instrument.percentile(0.50):.2f}"
            f" p95={instrument.percentile(0.95):.2f}"
            f" p99={instrument.percentile(0.99):.2f}"
        )
    value = instrument.value  # Counter / Gauge
    return f"  {short:<{width}} {_format_value(value):>10}"


def render_report(
    telemetry: Telemetry,
    title: str = "telemetry",
    samples: Optional[Sequence[Dict[str, object]]] = None,
    tail: int = 3,
) -> str:
    """The multi-line per-component report."""
    components = telemetry.components()
    ordered = [c for c in COMPONENT_ORDER if c in components]
    ordered += [c for c in sorted(components) if c not in COMPONENT_ORDER]
    lines = [f"== {title} =="]
    if not ordered:
        lines.append("(no instruments recorded)")
    for component in ordered:
        items = list(telemetry.component_items(component))
        if not items:
            continue
        lines.append(f"[{component}]")
        width = max(
            len(name.split(".", 1)[1] if "." in name else name)
            for name, _ in items
        )
        for name, instrument in items:
            lines.append(_instrument_line(name, instrument, width))
    if samples:
        shown = list(samples)[-tail:]
        lines.append(f"[intervals] last {len(shown)} of {len(samples)}:")
        for sample in shown:
            lines.append(
                f"  #{sample['index']:<3} branches "
                f"{sample['branch_start']}-{sample['branch_end']}: "
                f"accuracy {sample['accuracy']:6.2%}, "
                f"mpki~{sample['mpki_approx']:.2f}, "
                f"coverage {sample['dynamic_coverage']:6.2%}"
            )
    return "\n".join(lines)


__all__ = ["render_report", "COMPONENT_ORDER"]
