"""Folding prediction outcomes and component state into the registry.

Two complementary sources feed the :class:`~repro.obs.telemetry.
Telemetry` registry:

* **Per-branch events** — the :class:`TelemetryCollector` is an engine
  ``observer``: every :class:`~repro.core.predictor.PredictionOutcome`
  is decomposed into component counters (BTB1 hit/surprise, direction
  and target provider usage and correctness, TAGE provider vs alternate,
  perceptron overrides, SKOOT skip savings, CPRED acceleration, BTB2
  triggers, mispredict classes) and a GPQ-occupancy histogram sample.
  This path only runs when telemetry is attached, preserving the
  engines' ``observer is None`` fast paths.

* **Component harvest** — at snapshot time :func:`harvest_components`
  pulls every core structure's native plain-int statistics (via the
  ``component_counters()`` methods the structures already maintain at
  zero cost) into gauges, so the report can show transfer-queue dedup
  rates, write-backs, occupancy and the rest without any per-branch
  bookkeeping.
"""

from __future__ import annotations

from typing import Optional

from repro.core.predictor import LookaheadBranchPredictor, PredictionOutcome
from repro.core.providers import DirectionProvider
from repro.obs.telemetry import Telemetry
from repro.stats.metrics import MISPREDICT_CLASSES, classify

#: GPQ occupancy histogram buckets (the z15 GPQ holds tens of entries).
GPQ_BOUNDS = (0, 1, 2, 4, 8, 12, 16, 24, 32, 48, 64)

#: Lines-searched-per-branch histogram buckets.
SEARCH_BOUNDS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 32)


class TelemetryCollector:
    """An engine observer that instruments every prediction outcome."""

    def __init__(
        self,
        telemetry: Telemetry,
        predictor: Optional[LookaheadBranchPredictor] = None,
    ):
        self.telemetry = telemetry
        self.predictor = predictor
        # Instruments the per-branch path touches, bound once: observe()
        # runs for every branch of a telemetry-on run.
        self._branches = telemetry.counter("engine.branches")
        self._gpq_occupancy = telemetry.histogram("gpq.occupancy", GPQ_BOUNDS)
        self._lines_per_branch = telemetry.histogram(
            "search.lines_per_branch", SEARCH_BOUNDS
        )

    def observe(self, outcome: PredictionOutcome) -> None:
        """Fold one prediction outcome into the registry."""
        telemetry = self.telemetry
        record = outcome.record
        trace = outcome.trace
        inc = telemetry.inc
        self._branches.value += 1

        # --- BTB1 hit/miss and the search walk ------------------------
        if record.dynamic:
            inc("btb1.dynamic_hits")
        else:
            inc("btb1.surprise_misses")
        self._lines_per_branch.observe(trace.lines_searched)
        if trace.lines_searched:
            inc("search.lines_searched", trace.lines_searched)
        if trace.empty_searches:
            inc("search.empty", trace.empty_searches)
        if trace.walk_capped:
            inc("search.walk_capped")

        # --- SKOOT / CPRED search savings ------------------------------
        if trace.lines_skipped_by_skoot:
            inc("skoot.lines_skipped", trace.lines_skipped_by_skoot)
        if trace.skoot_overshoot:
            inc("skoot.overshoots")
        if trace.cpred_accelerated:
            inc("cpred.accelerated_streams")

        # --- BTB2 triggers and bad predictions -------------------------
        if trace.btb2_triggers:
            inc("btb2.search_triggers", trace.btb2_triggers)
        if trace.bad_predictions_removed:
            inc("btb1.bad_predictions_removed", trace.bad_predictions_removed)
        if trace.bad_taken_restarts:
            inc("btb1.bad_taken_restarts", trace.bad_taken_restarts)

        # --- Direction provider usage and correctness -------------------
        provider = record.direction_provider.value
        inc(f"direction.provider.{provider}")
        actual_taken = record.actual_taken
        if record.predicted_taken == actual_taken:
            inc(f"direction.correct.{provider}")

        # TAGE provider / alternate-provider split (§V): which PHT table
        # provided, and what the tracked alternate would have done.
        snapshot = record.tage
        if snapshot is not None and snapshot.provider is not None:
            inc(f"tage.provider.{snapshot.provider}")
            alternate = record.alternate_taken
            if alternate is not None and alternate != record.predicted_taken:
                inc("tage.alternate_disagreed")
                if record.predicted_taken == actual_taken:
                    inc("tage.provider_beat_alternate")
                elif alternate == actual_taken:
                    inc("tage.alternate_beat_provider")

        # Perceptron overrides (§V): the perceptron only ever *overrides*
        # the figure-8 chain, so provider==perceptron is an override.
        if record.direction_provider is DirectionProvider.PERCEPTRON:
            inc("perceptron.overrides")
            if record.predicted_taken == actual_taken:
                inc("perceptron.overrides_correct")
            alternate = record.alternate_taken
            if alternate is not None and alternate != record.predicted_taken:
                if record.predicted_taken == actual_taken:
                    inc("perceptron.override_saves")
                else:
                    inc("perceptron.override_damage")

        # --- Target provider usage (agreed-taken dynamic branches) ------
        if record.dynamic and record.predicted_taken:
            inc("direction.predicted_taken_dynamic")
            if actual_taken:
                target = record.target_provider.value
                inc(f"target.provider.{target}")
                if record.predicted_target == record.actual_target:
                    inc(f"target.correct.{target}")

        # --- Power gating (§VI) ----------------------------------------
        if not record.pht_powered:
            inc("power.pht_gated")
        if not record.perceptron_powered:
            inc("power.perceptron_gated")
        if not record.ctb_powered:
            inc("power.ctb_gated")

        # --- Mispredict classes ----------------------------------------
        klass = classify(outcome)
        inc(f"mispredict.{klass.value}")
        if klass in MISPREDICT_CLASSES:
            inc("engine.mispredicted_branches")
        if actual_taken:
            inc("engine.taken_branches")

        # --- GPQ occupancy (sampled after this branch's push/retire) ---
        predictor = self.predictor
        if predictor is not None:
            self._gpq_occupancy.observe(len(predictor.gpq))

    def harvest(self) -> None:
        """Pull component-native statistics into gauges (snapshot time)."""
        if self.predictor is not None:
            harvest_components(self.telemetry, self.predictor)


def harvest_components(
    telemetry: Telemetry, predictor: LookaheadBranchPredictor
) -> None:
    """Fold every core structure's native counters into the registry.

    The structures keep these as plain-int attributes whether or not
    telemetry is attached (the PR-2 hot paths are untouched); this just
    snapshots them under the component's dotted prefix.
    """
    for component, counts in predictor.component_counters().items():
        telemetry.merge_counts(component, counts)
