"""Observability: telemetry registry, interval sampling, branch tracing.

The structured counterpart of the one-shot :class:`~repro.stats.metrics.
RunStats` aggregate.  Attach a :class:`TelemetrySession` to an engine
(the ``telemetry=`` constructor parameter, or pass ``session.observe``
as the ``observer``) to get per-component counters, an interval time
series and — optionally — a schema-versioned JSONL branch trace that
``repro trace --validate`` and :func:`repro.stats.analysis.load_trace`
can round-trip and reconcile against the run's stats.

Telemetry off is the default everywhere and costs nothing: the engines
keep their ``observer is None`` fast paths, and instrumented call sites
hold the falsy :data:`NULL_TELEMETRY` null object.
"""

from repro.obs.collect import TelemetryCollector, harvest_components
from repro.obs.report import render_report
from repro.obs.sampler import IntervalSampler
from repro.obs.session import TelemetrySession
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    NullTelemetry,
    Telemetry,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceSchemaError,
    TraceWriter,
    aggregate_branch_records,
    branch_record,
    reconcile,
    reconcile_with_stats,
    validate_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalSampler",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TELEMETRY_SCHEMA",
    "TRACE_SCHEMA",
    "Telemetry",
    "TelemetryCollector",
    "TelemetrySession",
    "TraceSchemaError",
    "TraceWriter",
    "aggregate_branch_records",
    "branch_record",
    "harvest_components",
    "reconcile",
    "reconcile_with_stats",
    "render_report",
    "validate_record",
]
