"""Observability: telemetry, sampling, tracing, manifests, spans, export.

The structured counterpart of the one-shot :class:`~repro.stats.metrics.
RunStats` aggregate.  Attach a :class:`TelemetrySession` to an engine
(the ``telemetry=`` constructor parameter, or pass ``session.observe``
as the ``observer``) to get per-component counters, an interval time
series and — optionally — a schema-versioned JSONL branch trace that
``repro trace --validate`` and :func:`repro.stats.analysis.load_trace`
can round-trip and reconcile against the run's stats.

On top of the per-run layer sit the fleet-level pieces:

* :mod:`repro.obs.manifest` — the run manifest, a schema-versioned
  provenance record attached to every invocation;
* :mod:`repro.obs.spans` — phase span tracing through the warm-pool
  runner and the engines (wall/CPU, latency histograms, incident
  events);
* :mod:`repro.obs.export` — OpenMetrics / canonical-JSON rendering and
  cross-cell per-(backend, engine-mode, workload) rollups;
* :mod:`repro.obs.observatory` — the ``repro report`` dashboard over
  BENCH artifacts, streams, manifests, spans and bench history.

Telemetry and spans off is the default everywhere and costs nothing:
the engines keep their ``observer is None`` fast paths, and
instrumented call sites hold the falsy :data:`NULL_TELEMETRY` /
:data:`NULL_SPANS` null objects.
"""

from repro.obs.collect import TelemetryCollector, harvest_components
from repro.obs.export import (
    OpenMetricsError,
    parse_openmetrics,
    rollup_results,
    to_canonical_json,
    to_openmetrics,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    ManifestError,
    build_manifest,
    host_info,
    validate_manifest,
)
from repro.obs.observatory import (
    HISTORY_SCHEMA,
    ObservatoryError,
    append_history,
    collect_artifacts,
    history_row,
    load_history,
    render_dashboard,
)
from repro.obs.report import render_report
from repro.obs.sampler import IntervalSampler
from repro.obs.session import TelemetrySession
from repro.obs.spans import (
    NULL_SPANS,
    SPAN_SCHEMA,
    NullSpanTracer,
    SpanSchemaError,
    SpanTracer,
    SpanWriter,
    load_spans,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    NullTelemetry,
    Telemetry,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceSchemaError,
    TraceWriter,
    aggregate_branch_records,
    branch_record,
    reconcile,
    reconcile_with_stats,
    validate_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "HISTORY_SCHEMA",
    "Histogram",
    "IntervalSampler",
    "MANIFEST_SCHEMA",
    "ManifestError",
    "NULL_SPANS",
    "NULL_TELEMETRY",
    "NullSpanTracer",
    "NullTelemetry",
    "ObservatoryError",
    "OpenMetricsError",
    "SPAN_SCHEMA",
    "SpanSchemaError",
    "SpanTracer",
    "SpanWriter",
    "TELEMETRY_SCHEMA",
    "TRACE_SCHEMA",
    "Telemetry",
    "TelemetryCollector",
    "TelemetrySession",
    "TraceSchemaError",
    "TraceWriter",
    "aggregate_branch_records",
    "append_history",
    "branch_record",
    "build_manifest",
    "collect_artifacts",
    "harvest_components",
    "history_row",
    "host_info",
    "load_history",
    "load_spans",
    "parse_openmetrics",
    "reconcile",
    "reconcile_with_stats",
    "render_dashboard",
    "render_report",
    "rollup_results",
    "to_canonical_json",
    "to_openmetrics",
    "validate_manifest",
]
