"""Run manifests: the schema-versioned identity record of an invocation.

The paper's methodology section lists everything a z15 measurement is
conditioned on — machine generation, workload, measurement window —
because a counter value is meaningless without its provenance.  The
fleet-level counterpart here is the *run manifest*: one JSON object
attached to every ``run``/``sweep``/``fleet`` invocation (and embedded
in sweep-stream headers and ``BENCH_*.json`` artifacts) that records

* **what ran** — config name + specialization shape, predictor backend,
  engine mode, workload, seed, branch/warmup counts, fault plan;
* **where** — host platform, python version/implementation, cpu count;
* **how it went** — wall/cpu timings, the RunStats fingerprint digest,
  and (when state was saved) the learned-state fingerprint.

Manifests are plain dicts under schema :data:`MANIFEST_SCHEMA` so every
sink (JSONL stream header, BENCH artifact, standalone ``--manifest-out``
file) carries the same shape, and :func:`validate_manifest` is the one
loader-side gate.  Nothing here touches the simulation hot path: a
manifest is built once per invocation, after (or around) the run.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict, Optional

#: Version tag in every manifest.
MANIFEST_SCHEMA = "repro-manifest/v1"

#: Invocation kinds a manifest describes.
MANIFEST_KINDS = ("run", "cycles", "trace", "faults", "sweep", "fleet",
                  "cell", "bench", "serve", "loadgen", "chaos")

#: Keys every manifest must carry (beyond these, kinds add freely).
REQUIRED_FIELDS = ("schema", "kind", "host")


class ManifestError(ValueError):
    """A manifest violates the schema."""


def host_info() -> Dict[str, object]:
    """The execution-environment slice of a manifest."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "executable": os.path.basename(sys.executable or "python"),
        "cpu_count": os.cpu_count(),
    }


def stats_digest(stats) -> Optional[Dict[str, object]]:
    """The RunStats summary a manifest embeds: fingerprint + headlines.

    Accepts a live :class:`~repro.stats.metrics.RunStats`, a
    :class:`~repro.engine.stream.RestoredStats` view, or None.  Cycle
    results digest through their embedded accuracy RunStats plus the
    cycle headline.
    """
    if stats is None:
        return None
    accuracy = getattr(stats, "accuracy", None)
    if accuracy is not None and not isinstance(accuracy, float):
        digest = stats_digest(accuracy) or {}
        digest["cycles"] = getattr(stats, "cycles", None)
        digest["cpi"] = getattr(stats, "cpi", None)
        return digest
    digest: Dict[str, object] = {}
    try:
        from repro.verification.differential import stats_fingerprint

        digest["fingerprint"] = stats_fingerprint(stats)
    except Exception:
        digest["fingerprint"] = None
    for field in ("branches", "mispredicted_branches", "mpki",
                  "direction_accuracy", "dynamic_coverage"):
        value = getattr(stats, field, None)
        if value is not None:
            digest[field] = value
    return digest


def _config_info(config, config_name: Optional[str]) -> Optional[Dict]:
    if config is None:
        if config_name is None:
            return None
        return {"name": config_name, "shape": None}
    from repro.engine.specialize import config_shape

    return {
        "name": config_name or getattr(config, "name", None),
        # The specialization key: everything the compiled fast path's
        # generated source depends on (see repro.engine.specialize).
        "shape": list(config_shape(config)),
    }


def _fault_info(fault_plan) -> Optional[Dict]:
    if fault_plan is None:
        return None
    return {
        "seed": getattr(fault_plan, "seed", None),
        "rate": getattr(fault_plan, "rate", None),
        "kinds": list(getattr(fault_plan, "kinds", ()) or ()),
        "parity": getattr(fault_plan, "parity", None),
    }


def build_manifest(
    kind: str,
    *,
    config=None,
    config_name: Optional[str] = None,
    backend: Optional[str] = None,
    engine_mode: Optional[str] = None,
    workload: Optional[str] = None,
    seed: Optional[int] = None,
    branches: Optional[int] = None,
    warmup: Optional[int] = None,
    fault_plan=None,
    stats=None,
    state_fingerprint: Optional[str] = None,
    wall_seconds: Optional[float] = None,
    cpu_seconds: Optional[float] = None,
    grid: Optional[Dict] = None,
    extra: Optional[Dict] = None,
) -> Dict[str, object]:
    """Assemble one manifest dict for an invocation of *kind*."""
    if kind not in MANIFEST_KINDS:
        raise ManifestError(
            f"unknown manifest kind {kind!r}; known: {MANIFEST_KINDS}"
        )
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "host": host_info(),
        "config": _config_info(config, config_name),
        "backend": backend,
        "engine_mode": engine_mode,
        "workload": workload,
        "seed": seed,
        "branches": branches,
        "warmup": warmup,
        "fault_plan": _fault_info(fault_plan),
        "timings": {
            "wall_seconds": wall_seconds,
            "cpu_seconds": cpu_seconds,
        },
        "stats": stats_digest(stats),
        "state_fingerprint": state_fingerprint,
    }
    if grid is not None:
        manifest["grid"] = dict(grid)
    if extra:
        manifest.update(extra)
    return manifest


def validate_manifest(obj, where: str = "manifest") -> Dict[str, object]:
    """Check one decoded manifest against the schema; returns it."""
    if not isinstance(obj, dict):
        raise ManifestError(
            f"{where}: expected a JSON object, got {type(obj).__name__}"
        )
    if obj.get("schema") != MANIFEST_SCHEMA:
        raise ManifestError(
            f"{where}: unsupported manifest schema {obj.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    missing = [key for key in REQUIRED_FIELDS if key not in obj]
    if missing:
        raise ManifestError(f"{where}: missing fields {missing}")
    if obj.get("kind") not in MANIFEST_KINDS:
        raise ManifestError(
            f"{where}: unknown manifest kind {obj.get('kind')!r}"
        )
    return obj


def is_manifest(obj) -> bool:
    """Loose check used by loaders multiplexing row kinds in one file."""
    return isinstance(obj, dict) and obj.get("schema") == MANIFEST_SCHEMA


__all__ = [
    "MANIFEST_KINDS",
    "MANIFEST_SCHEMA",
    "ManifestError",
    "build_manifest",
    "host_info",
    "is_manifest",
    "stats_digest",
    "validate_manifest",
]
