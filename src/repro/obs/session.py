"""One run's telemetry bundle: collector + sampler + trace writer.

A :class:`TelemetrySession` is the single object callers attach to an
engine.  It owns a fresh :class:`~repro.obs.telemetry.Telemetry`
registry, exposes one per-branch :meth:`observe` entry point (usable
directly as the engines' ``observer`` hook or through their
``telemetry=`` parameter), and fans each outcome into:

* the :class:`~repro.obs.collect.TelemetryCollector` (component
  counters),
* the :class:`~repro.obs.sampler.IntervalSampler` (time series), and
* the :class:`~repro.obs.trace.TraceWriter` (JSONL sink), when a trace
  path was given.

``skip`` mirrors the engines' warmup handling: the engines hand the
observer *every* branch, warmup included, but
:class:`~repro.stats.metrics.RunStats` only aggregates the counted
phase — so a session skips the first ``skip`` outcomes to stay exactly
reconcilable with the run's stats.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.predictor import LookaheadBranchPredictor, PredictionOutcome
from repro.obs.collect import TelemetryCollector
from repro.obs.report import render_report
from repro.obs.sampler import IntervalSampler
from repro.obs.telemetry import Telemetry
from repro.obs.trace import TraceWriter, reconcile_with_stats
from repro.stats.metrics import RunStats


class TelemetrySession:
    """Everything observability-related about one simulation run."""

    def __init__(
        self,
        predictor: Optional[LookaheadBranchPredictor] = None,
        interval: int = 2000,
        trace_path: Optional[str] = None,
        trace_every: int = 1,
        skip: int = 0,
    ):
        self.telemetry = Telemetry()
        self.collector = TelemetryCollector(self.telemetry, predictor)
        self.sampler = IntervalSampler(interval) if interval else None
        self.writer = (
            TraceWriter(trace_path, every=trace_every) if trace_path else None
        )
        self._skip = skip
        self.finished = False

    # -- lifecycle -------------------------------------------------------

    def begin(self, *, workload: str, predictor: str, seed: int,
              branches: int) -> "TelemetrySession":
        """Write the trace header (no-op without a trace sink)."""
        if self.writer is not None:
            self.writer.write_header(
                workload=workload,
                predictor=predictor,
                seed=seed,
                branches=branches,
                interval=self.sampler.interval if self.sampler else 0,
            )
        return self

    def observe(self, outcome: PredictionOutcome) -> None:
        """The per-branch entry point (an engine ``observer``)."""
        if self._skip > 0:
            self._skip -= 1
            return
        self.collector.observe(outcome)
        writer = self.writer
        if self.sampler is not None:
            sample = self.sampler.observe(outcome)
            if sample is not None and writer is not None:
                writer.write_interval(sample)
        if writer is not None:
            writer.observe(outcome)

    def finish(self, stats: Optional[RunStats] = None) -> "TelemetrySession":
        """End of run: harvest component counters, flush the trailing
        interval window, write the trace summary, close the sink."""
        if self.finished:
            return self
        self.finished = True
        self.collector.harvest()
        writer = self.writer
        if self.sampler is not None:
            tail = self.sampler.flush_partial()
            if tail is not None and writer is not None:
                writer.write_interval(tail)
        if writer is not None:
            stats_payload: Dict[str, object] = {}
            if stats is not None:
                from repro.verification.differential import comparable_stats

                stats_payload = comparable_stats(stats)
            writer.write_summary(stats_payload, self.telemetry.to_dict())
            writer.close()
        return self

    # -- output ----------------------------------------------------------

    @property
    def samples(self) -> List[Dict[str, object]]:
        return self.sampler.samples if self.sampler is not None else []

    def report(self, title: str = "telemetry") -> str:
        """The per-component text report."""
        return render_report(self.telemetry, title=title,
                             samples=self.samples)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable export: registry plus the time series."""
        payload = self.telemetry.to_dict()
        payload["samples"] = list(self.samples)
        return payload

    def reconcile(self, stats: RunStats,
                  branches: List[Dict[str, object]]) -> List[str]:
        """Diff loaded trace branch records against this run's stats."""
        return reconcile_with_stats(branches, stats)
