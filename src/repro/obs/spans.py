"""Span tracing: wall/CPU timing of pipeline phases, off by default.

The warm-pool sweep runner (PR 7) reports *what* happened through
``pool_stats`` — chunks submitted, retries, pool breaks — but not *where
the time went*: a hung worker, a slow serialize, or merge overhead all
look the same from outside.  This module adds the missing axis: a
:class:`SpanTracer` records named phases (``serialize``, ``transfer``,
``execute``, ``merge``, engine ``warmup``/``counted``/``finalize``) with
wall and CPU durations, plus point events (``cell.retry``,
``cell.timeout``, ``pool.break``, ``isolation.round``) so rare incidents
are visible in order.

The tracer follows the telemetry null-object discipline exactly:
:data:`NULL_SPANS` is falsy and every method a no-op, so instrumented
code guards with ``if spans:`` and the off path pays one truthiness
check.  Spans never influence simulation results — they only observe —
so all committed fingerprints are byte-identical with tracing on or off.

On-disk format (:data:`SPAN_SCHEMA`, ``repro-spans/v1``): JSONL, a
header line then one object per span/event, written by
:class:`SpanWriter` with the same crash contract as the trace writer
(flush per record and on error-path exit; a torn tail line is dropped by
:func:`load_spans`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, IO, List, Optional

from repro.obs.telemetry import Histogram

#: Version tag in every span-file header.
SPAN_SCHEMA = "repro-spans/v1"

#: Histogram bounds for phase latencies, in milliseconds.  Phases span
#: sub-millisecond merges to multi-second chunk executions, so the
#: buckets are geometric.
LATENCY_BOUNDS_MS = (0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
                     500, 1000, 2500, 5000, 10000)


class SpanSchemaError(ValueError):
    """A span file violates the schema."""


class SpanTracer:
    """Collects phase spans and point events for one invocation.

    Spans are recorded two ways: :meth:`span` times a ``with`` block
    (wall via ``perf_counter``, CPU via ``process_time``), and
    :meth:`observe` folds in a duration measured elsewhere (e.g. a
    worker-side elapsed time that crossed the process boundary as a
    float).  Both feed the same per-phase latency histograms, exported
    by :meth:`phase_latency` into ``pool_stats`` and reports.
    """

    def __init__(self, writer: Optional["SpanWriter"] = None):
        self.writer = writer
        self.spans: List[Dict[str, object]] = []
        self.events: List[Dict[str, object]] = []
        self._histograms: Dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return True

    # -- recording -------------------------------------------------------

    def _observe_latency(self, name: str, wall_seconds: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, LATENCY_BOUNDS_MS
            )
        histogram.observe(wall_seconds * 1000.0)

    @contextmanager
    def span(self, name: str, **fields):
        """Time a block as one span named *name*; extra fields pass
        through to the record (chunk index, cell label, ...)."""
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall_start
            cpu = time.process_time() - cpu_start
            self.observe(name, wall, cpu=cpu, **fields)

    def observe(self, name: str, wall: float,
                cpu: Optional[float] = None, **fields) -> None:
        """Record one completed span with a pre-measured duration."""
        record: Dict[str, object] = {"type": "span", "name": name,
                                     "wall": wall, "cpu": cpu}
        if fields:
            record.update(fields)
        self.spans.append(record)
        self._observe_latency(name, wall)
        if self.writer is not None:
            self.writer.write(record)

    def event(self, name: str, **fields) -> None:
        """Record a point event (retry, timeout, pool break, ...)."""
        record: Dict[str, object] = {"type": "event", "name": name,
                                     "seq": len(self.events)}
        if fields:
            record.update(fields)
        self.events.append(record)
        if self.writer is not None:
            self.writer.write(record)

    # -- export ----------------------------------------------------------

    def histograms(self) -> Dict[str, Histogram]:
        """The live per-phase latency histograms (milliseconds)."""
        return dict(self._histograms)

    def phase_latency(self) -> Dict[str, Dict[str, object]]:
        """Per-phase latency summaries, name-sorted, for ``pool_stats``
        and reports (histogram dicts carry p50/p95/p99)."""
        return {
            name: self._histograms[name].to_dict()
            for name in sorted(self._histograms)
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SPAN_SCHEMA,
            "spans": len(self.spans),
            "events": list(self.events),
            "phase_latency": self.phase_latency(),
        }


class NullSpanTracer:
    """The off-mode tracer: falsy, every operation a no-op."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    @contextmanager
    def span(self, name: str, **fields):
        yield

    def observe(self, name: str, wall: float,
                cpu: Optional[float] = None, **fields) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    def histograms(self) -> Dict[str, Histogram]:
        return {}

    def phase_latency(self) -> Dict[str, Dict[str, object]]:
        return {}

    def to_dict(self) -> Dict[str, object]:
        return {"schema": SPAN_SCHEMA, "spans": 0, "events": [],
                "phase_latency": {}}


#: The shared off-mode singleton (stateless, safe to share everywhere).
NULL_SPANS = NullSpanTracer()


class SpanWriter:
    """Streams span/event records to a JSONL file.

    Same crash contract as :class:`~repro.obs.trace.TraceWriter`: the
    header goes first, every record is flushed as it is written (span
    volume is low — per phase, not per branch — so durability beats
    batching here), and context-manager exit closes on the error path
    too, so a crashed run leaves a loadable file with at most one torn
    tail line.
    """

    def __init__(self, path: str, kind: str = "run",
                 context: Optional[Dict[str, object]] = None):
        self.path = str(path)
        self.records_written = 0
        self._stream: Optional[IO[str]] = open(self.path, "w")
        header: Dict[str, object] = {"type": "header", "schema": SPAN_SCHEMA,
                                     "kind": kind}
        if context:
            header["context"] = context
        self.write(header)

    def write(self, record: Dict[str, object]) -> None:
        stream = self._stream
        if stream is None:
            raise ValueError(f"span writer for {self.path} is closed")
        stream.write(json.dumps(record, separators=(",", ":")))
        stream.write("\n")
        stream.flush()
        self.records_written += 1

    def write_summary(self, tracer: SpanTracer) -> None:
        """Append the tracer's aggregate view (phase latency rollup)."""
        record: Dict[str, object] = {"type": "summary"}
        record.update(tracer.to_dict())
        record.pop("events", None)  # already on disk as individual records
        self.write(record)

    def close(self) -> None:
        if self._stream is not None:
            from repro.common.atomic import durable_flush

            # Durable close: everything written is on the device before
            # the handle drops, so only a mid-record kill can tear.
            durable_flush(self._stream)
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        # Close on both paths so a crash still leaves the file loadable.
        self.close()


def load_spans(path: str, strict: bool = False) -> Dict[str, object]:
    """Parse a span file into header/spans/events/summary.

    A malformed *final* line — the torn tail of a killed writer — is
    dropped (unless *strict*, which makes it an error like any other);
    any other malformed line raises :class:`SpanSchemaError` naming the
    line number and byte offset.
    """
    from repro.common.jsonl import format_location, iter_jsonl

    header: Optional[Dict[str, object]] = None
    spans: List[Dict[str, object]] = []
    events: List[Dict[str, object]] = []
    summary: Optional[Dict[str, object]] = None
    for line_number, offset, obj in iter_jsonl(path, strict=strict,
                                               error=SpanSchemaError):
        where = format_location(path, line_number, offset)
        if not isinstance(obj, dict) or "type" not in obj:
            raise SpanSchemaError(f"{where}: expected an object with a type")
        kind = obj["type"]
        if kind == "header":
            if obj.get("schema") != SPAN_SCHEMA:
                raise SpanSchemaError(
                    f"{where}: unsupported span schema "
                    f"{obj.get('schema')!r} (expected {SPAN_SCHEMA!r})"
                )
            if header is not None:
                raise SpanSchemaError(f"{where}: duplicate header record")
            header = obj
        elif header is None:
            raise SpanSchemaError(f"{where}: {kind} record before header")
        elif kind == "span":
            spans.append(obj)
        elif kind == "event":
            events.append(obj)
        elif kind == "summary":
            summary = obj
        else:
            raise SpanSchemaError(f"{where}: unknown record type {kind!r}")
    if header is None:
        raise SpanSchemaError(f"{path}: no header record")
    return {"path": str(path), "header": header, "spans": spans,
            "events": events, "summary": summary}


__all__ = [
    "LATENCY_BOUNDS_MS",
    "NULL_SPANS",
    "NullSpanTracer",
    "SPAN_SCHEMA",
    "SpanSchemaError",
    "SpanTracer",
    "SpanWriter",
    "load_spans",
]
