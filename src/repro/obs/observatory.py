"""The ``repro report`` observatory: artifact ingestion and dashboards.

Every earlier PR left a machine-readable artifact behind —
``BENCH_throughput.json`` (``repro-throughput/v3``), ``BENCH_fleet.json``
(``repro-fleet/v1``), sweep checkpoint streams
(``repro-sweep-stream/v1``), branch traces (``repro-trace/v1``) — and
this PR adds manifests (``repro-manifest/v1``), span files
(``repro-spans/v1``) and a bench-history JSONL
(:data:`HISTORY_SCHEMA`).  The observatory is the read side: it
classifies artifacts by probing their schema tags, aggregates them, and
renders one markdown dashboard with

* throughput headlines and **trend deltas** against the previous
  history entry (regressions highlighted);
* fleet rollups per backend / engine mode / workload;
* sweep-stream summaries rolled up per (backend, engine mode) with
  failure counts;
* run manifests (what ran where), and span phase-latency percentiles.

Nothing here executes the simulator; the observatory is pure file
reading, so it can run over artifacts from any machine or CI job.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.manifest import MANIFEST_SCHEMA, is_manifest

#: Version tag of bench-history JSONL rows.
HISTORY_SCHEMA = "repro-bench-history/v1"

#: Relative change beyond which a throughput delta is flagged.
REGRESSION_THRESHOLD = -0.05

#: Artifact schema tag -> observatory kind.
_SCHEMA_KINDS = {
    "repro-throughput/v3": "throughput",
    "repro-fleet/v1": "fleet",
    MANIFEST_SCHEMA: "manifest",
    "repro-sweep-stream/v1": "stream",
    "repro-spans/v1": "spans",
    "repro-trace/v1": "trace",
    HISTORY_SCHEMA: "history",
}


class ObservatoryError(ValueError):
    """An artifact cannot be ingested."""


# ----------------------------------------------------------------------
# Bench history (BENCH_history.jsonl)
# ----------------------------------------------------------------------


def history_row(kind: str, metrics: Dict[str, float],
                manifest: Optional[Dict] = None,
                label: Optional[str] = None) -> Dict[str, object]:
    """One bench-history row: a flat metric dict plus its manifest."""
    row: Dict[str, object] = {
        "schema": HISTORY_SCHEMA,
        "kind": kind,
        "metrics": dict(metrics),
    }
    if label is not None:
        row["label"] = label
    if manifest is not None:
        row["manifest"] = manifest
    return row


def append_history(path: str, row: Dict[str, object]) -> None:
    """Append one row to the history JSONL (created on first use)."""
    if row.get("schema") != HISTORY_SCHEMA:
        raise ObservatoryError(
            f"history rows must carry schema {HISTORY_SCHEMA!r}"
        )
    from repro.common.atomic import append_line

    # History rows are appended rarely (once per bench invocation), so
    # each is fsynced: the trend data a dashboard is built on should
    # not evaporate in a crash that happens minutes later.
    with open(path, "a") as stream:
        append_line(stream, json.dumps(row, sort_keys=True), fsync=True)


def load_history(path: str, strict: bool = False) -> List[Dict[str, object]]:
    """Load history rows, tolerating a torn tail line (unless *strict*).

    Mid-file corruption raises :class:`ObservatoryError` naming the
    line number and byte offset.
    """
    from repro.common.jsonl import format_location, iter_jsonl

    rows: List[Dict[str, object]] = []
    for line_number, offset, row in iter_jsonl(path, strict=strict,
                                               error=ObservatoryError):
        if not isinstance(row, dict) or row.get("schema") != HISTORY_SCHEMA:
            raise ObservatoryError(
                f"{format_location(path, line_number, offset)}: "
                f"not a {HISTORY_SCHEMA} row"
            )
        rows.append(row)
    return rows


def throughput_metrics(payload: Dict[str, object]) -> Dict[str, float]:
    """Flatten a throughput artifact to dotted metric names."""
    metrics: Dict[str, float] = {}
    sequential = payload.get("sequential") or {}
    parallel = payload.get("parallel") or {}
    if "branches_per_second" in sequential:
        metrics["sweep.sequential.bps"] = sequential["branches_per_second"]
    if "branches_per_second" in parallel:
        metrics["sweep.parallel.bps"] = parallel["branches_per_second"]
    if payload.get("speedup") is not None:
        metrics["sweep.speedup"] = payload["speedup"]
    for workload, backends in (payload.get("single_run") or {}).items():
        for backend, modes in backends.items():
            for mode, cell in modes.items():
                metrics[f"single.{workload}.{backend}.{mode}.bps"] = (
                    cell["branches_per_second"]
                )
    return metrics


def fleet_metrics(payload: Dict[str, object]) -> Dict[str, float]:
    """Flatten a fleet artifact to dotted metric names."""
    metrics: Dict[str, float] = {}
    for section in ("sequential", "parallel"):
        data = payload.get(section) or {}
        if "branches_per_second" in data:
            metrics[f"fleet.{section}.bps"] = data["branches_per_second"]
    if payload.get("speedup") is not None:
        metrics["fleet.speedup"] = payload["speedup"]
    rollups = payload.get("rollups") or {}
    for group_name, groups in sorted(rollups.items()):
        axis = group_name[len("by_"):] if group_name.startswith(
            "by_") else group_name
        for key, cell in sorted(groups.items()):
            if isinstance(cell, dict) and "branches_per_second" in cell:
                metrics[f"fleet.{axis}.{key}.bps"] = (
                    cell["branches_per_second"]
                )
    return metrics


def trend_deltas(history: Sequence[Dict[str, object]],
                 kind: str) -> List[Tuple[str, float, float, float]]:
    """(metric, previous, latest, relative change) for the newest pair
    of history rows of *kind*; empty when fewer than two exist."""
    rows = [row for row in history if row.get("kind") == kind]
    if len(rows) < 2:
        return []
    previous, latest = rows[-2]["metrics"], rows[-1]["metrics"]
    deltas = []
    for metric in sorted(latest):
        if metric not in previous:
            continue
        before, after = previous[metric], latest[metric]
        if not before:
            continue
        deltas.append((metric, before, after, (after - before) / before))
    return deltas


# ----------------------------------------------------------------------
# Artifact classification
# ----------------------------------------------------------------------


def classify_artifact(path: str) -> Optional[str]:
    """Probe one file's schema tag; None when unrecognised.

    JSON files are classified by their top-level ``schema``; JSONL files
    by the first parseable line's schema (or ``cell`` rows' own tag).
    """
    try:
        with open(path) as stream:
            head = stream.read(65536)
    except (OSError, UnicodeDecodeError):
        return None
    head = head.lstrip()
    if not head:
        return None
    head_lines = head.split("\n")
    for candidate in (head_lines[0], head):
        try:
            obj = json.loads(candidate)
        except json.JSONDecodeError:
            continue
        if isinstance(obj, dict):
            kind = _SCHEMA_KINDS.get(obj.get("schema"))
            if kind == "manifest" and len(head_lines) > 1:
                # A sweep stream may embed its manifest as the first
                # JSONL line; the second line tells them apart.
                try:
                    second = json.loads(head_lines[1])
                except json.JSONDecodeError:
                    second = None
                if isinstance(second, dict):
                    follow = _SCHEMA_KINDS.get(second.get("schema"))
                    if follow:
                        return follow
            if kind:
                return kind
    return None


def collect_artifacts(paths: Sequence[str]) -> Dict[str, List[str]]:
    """Classify files (directories are scanned one level deep) into
    ``{kind: [paths]}``; unrecognised files are ignored."""
    artifacts: Dict[str, List[str]] = {}
    candidates: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                full = os.path.join(path, name)
                if os.path.isfile(full):
                    candidates.append(full)
        else:
            candidates.append(path)
    for path in candidates:
        kind = classify_artifact(path)
        if kind:
            artifacts.setdefault(kind, []).append(path)
    return artifacts


# ----------------------------------------------------------------------
# Dashboard rendering
# ----------------------------------------------------------------------


def _load_json(path: str) -> Dict[str, object]:
    with open(path) as stream:
        return json.load(stream)


def _fmt(value, digits: int = 1) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    return f"{value:,}"


def _delta_cell(change: float) -> str:
    mark = " ⚠" if change <= REGRESSION_THRESHOLD else ""
    return f"{change:+.1%}{mark}"


def _throughput_section(paths: List[str],
                        history: List[Dict]) -> List[str]:
    lines = ["## Throughput"]
    for path in paths:
        payload = _load_json(path)
        lines.append(f"\n`{os.path.basename(path)}` — backend "
                     f"`{payload.get('backend')}`, engine mode "
                     f"`{payload.get('engine_mode')}`, "
                     f"{_fmt(payload.get('cpu_count'), 0)} cpus")
        sequential = payload.get("sequential") or {}
        parallel = payload.get("parallel") or {}
        lines.append("")
        lines.append("| metric | value |")
        lines.append("|---|---|")
        lines.append(f"| sequential sweep bps | "
                     f"{_fmt(sequential.get('branches_per_second'))} |")
        lines.append(f"| parallel sweep bps | "
                     f"{_fmt(parallel.get('branches_per_second'))} |")
        lines.append(f"| speedup | {_fmt(payload.get('speedup'), 2)}x |")
        single = payload.get("single_run") or {}
        if single:
            lines.append("")
            lines.append("| workload | backend | mode | bps |")
            lines.append("|---|---|---|---|")
            for workload in sorted(single):
                for backend in sorted(single[workload]):
                    for mode in sorted(single[workload][backend]):
                        bps = single[workload][backend][mode][
                            "branches_per_second"]
                        lines.append(f"| {workload} | {backend} | {mode} "
                                     f"| {_fmt(bps)} |")
    deltas = trend_deltas(history, "throughput")
    if deltas:
        lines.append("\n### Trend vs previous run")
        lines.append("")
        lines.append("| metric | previous | latest | delta |")
        lines.append("|---|---|---|---|")
        for metric, before, after, change in deltas:
            lines.append(f"| {metric} | {_fmt(before)} | {_fmt(after)} "
                         f"| {_delta_cell(change)} |")
    return lines


def _fleet_section(paths: List[str], history: List[Dict]) -> List[str]:
    lines = ["## Fleet"]
    for path in paths:
        payload = _load_json(path)
        parallel = payload.get("parallel") or {}
        sequential = payload.get("sequential") or {}
        grid = payload.get("grid") or {}
        lines.append(f"\n`{os.path.basename(path)}` — "
                     f"{_fmt(grid.get('cells'), 0)} cells, "
                     f"{_fmt(parallel.get('workers'), 0)} workers, "
                     f"equivalent={payload.get('equivalent')}, "
                     f"failed={_fmt(payload.get('failed_cells'), 0)}")
        lines.append("")
        lines.append("| metric | value |")
        lines.append("|---|---|")
        lines.append(f"| sequential bps | "
                     f"{_fmt(sequential.get('branches_per_second'))} |")
        lines.append(f"| parallel bps | "
                     f"{_fmt(parallel.get('branches_per_second'))} |")
        lines.append(f"| speedup | {_fmt(payload.get('speedup'), 2)}x |")
        lines.append(f"| pool breaks | "
                     f"{_fmt(parallel.get('pool_breaks'), 0)} |")
        rollups = payload.get("rollups") or {}
        for group_name in sorted(rollups):
            groups = rollups[group_name]
            if not groups:
                continue
            axis = group_name[len("by_"):] if group_name.startswith(
                "by_") else group_name
            lines.append("")
            lines.append(f"| {axis} | branches | bps |")
            lines.append("|---|---|---|")
            for key in sorted(groups):
                cell = groups[key]
                lines.append(
                    f"| {key} | {_fmt(cell.get('branches'), 0)} | "
                    f"{_fmt(cell.get('branches_per_second'))} |"
                )
    deltas = trend_deltas(history, "fleet")
    if deltas:
        lines.append("\n### Trend vs previous run")
        lines.append("")
        lines.append("| metric | previous | latest | delta |")
        lines.append("|---|---|---|---|")
        for metric, before, after, change in deltas:
            lines.append(f"| {metric} | {_fmt(before)} | {_fmt(after)} "
                         f"| {_delta_cell(change)} |")
    return lines


def _stream_section(paths: List[str], strict: bool = False) -> List[str]:
    from repro.engine.stream import load_stream, load_stream_manifest

    lines = ["## Sweep streams"]
    for path in paths:
        rows = load_stream(path, strict=strict)
        manifest = load_stream_manifest(path)
        ok = [row for row in rows if row.get("status") == "ok"]
        failed = [row for row in rows if row.get("status") != "ok"]
        lines.append(f"\n`{os.path.basename(path)}` — {len(rows)} rows "
                     f"({len(ok)} ok, {len(failed)} failed)")
        if manifest:
            host = manifest.get("host") or {}
            lines.append(f"manifest: kind `{manifest.get('kind')}` on "
                         f"`{host.get('platform', '?')}`, python "
                         f"{host.get('python', '?')}")
        groups: Dict[Tuple[str, str], Dict[str, float]] = {}
        for row in ok:
            cell = row.get("cell") or {}
            key = (str(cell.get("backend")), str(cell.get("engine_mode")))
            group = groups.setdefault(
                key, {"cells": 0, "branches": 0, "elapsed": 0.0}
            )
            group["cells"] += 1
            group["branches"] += cell.get("branches") or 0
            group["elapsed"] += row.get("elapsed") or 0.0
        if groups:
            lines.append("")
            lines.append("| backend | mode | cells | branches | bps |")
            lines.append("|---|---|---|---|---|")
            for (backend, mode) in sorted(groups):
                group = groups[(backend, mode)]
                bps = (group["branches"] / group["elapsed"]
                       if group["elapsed"] else None)
                lines.append(
                    f"| {backend} | {mode} | {_fmt(group['cells'], 0)} | "
                    f"{_fmt(group['branches'], 0)} | {_fmt(bps)} |"
                )
        for row in failed:
            error = row.get("error") or {}
            cell = row.get("cell") or {}
            lines.append(f"- failed cell `{cell.get('label')}` "
                         f"({error.get('kind')}): {error.get('message')}")
    return lines


def _manifest_section(paths: List[str]) -> List[str]:
    from repro.obs.manifest import validate_manifest

    lines = ["## Manifests", ""]
    lines.append("| kind | config | backend | mode | workload | seed "
                 "| wall s | fingerprint |")
    lines.append("|---|---|---|---|---|---|---|---|")
    for path in paths:
        manifest = validate_manifest(_load_json(path), path)
        config = manifest.get("config") or {}
        timings = manifest.get("timings") or {}
        stats = manifest.get("stats") or {}
        fingerprint = stats.get("fingerprint") or "n/a"
        if isinstance(fingerprint, str) and len(fingerprint) > 12:
            fingerprint = fingerprint[:12] + "…"
        lines.append(
            f"| {manifest.get('kind')} | {config.get('name') or 'n/a'} "
            f"| {manifest.get('backend') or 'n/a'} "
            f"| {manifest.get('engine_mode') or 'n/a'} "
            f"| {manifest.get('workload') or 'n/a'} "
            f"| {manifest.get('seed') if manifest.get('seed') is not None else 'n/a'} "
            f"| {_fmt(timings.get('wall_seconds'), 2)} "
            f"| {fingerprint} |"
        )
    return lines


def _spans_section(paths: List[str], strict: bool = False) -> List[str]:
    from repro.obs.spans import load_spans

    lines = ["## Span traces"]
    for path in paths:
        document = load_spans(path, strict=strict)
        spans = document["spans"]
        events = document["events"]
        summary = document["summary"] or {}
        lines.append(f"\n`{os.path.basename(path)}` — {len(spans)} spans, "
                     f"{len(events)} events (kind "
                     f"`{document['header'].get('kind')}`)")
        phase_latency = summary.get("phase_latency") or {}
        if not phase_latency:
            # No summary (crashed run): rebuild the rollup from spans.
            from repro.obs.spans import SpanTracer

            tracer = SpanTracer()
            for span in spans:
                tracer.observe(span["name"], span.get("wall") or 0.0)
            phase_latency = tracer.phase_latency()
        if phase_latency:
            lines.append("")
            lines.append("| phase | n | p50 ms | p95 ms | p99 ms "
                         "| max ms |")
            lines.append("|---|---|---|---|---|---|")
            for name in sorted(phase_latency):
                data = phase_latency[name]
                lines.append(
                    f"| {name} | {_fmt(data.get('count'), 0)} "
                    f"| {_fmt(data.get('p50'), 2)} "
                    f"| {_fmt(data.get('p95'), 2)} "
                    f"| {_fmt(data.get('p99'), 2)} "
                    f"| {_fmt(data.get('max'), 2)} |"
                )
        incidents = [event for event in events
                     if event.get("name") != "isolation.round"]
        retries = [e for e in events if e.get("name") == "cell.retry"]
        timeouts = [e for e in events if e.get("name") == "cell.timeout"]
        breaks = [e for e in events if e.get("name") == "pool.break"]
        if retries or timeouts or breaks:
            lines.append(f"\nincidents: {len(retries)} retries, "
                         f"{len(timeouts)} timeouts, "
                         f"{len(breaks)} pool breaks "
                         f"({len(incidents)} events total)")
    return lines


def _regression_section(history: List[Dict]) -> List[str]:
    flagged = []
    for kind in ("throughput", "fleet"):
        for metric, before, after, change in trend_deltas(history, kind):
            if change <= REGRESSION_THRESHOLD:
                flagged.append((kind, metric, before, after, change))
    if not flagged:
        return []
    lines = ["## ⚠ Regressions", ""]
    lines.append("| source | metric | previous | latest | delta |")
    lines.append("|---|---|---|---|---|")
    for kind, metric, before, after, change in flagged:
        lines.append(f"| {kind} | {metric} | {_fmt(before)} "
                     f"| {_fmt(after)} | {change:+.1%} |")
    return lines


def render_dashboard(artifacts: Dict[str, List[str]],
                     title: str = "repro observatory",
                     strict: bool = False) -> str:
    """Render the markdown dashboard over classified artifacts.

    *strict* refuses torn-tail lines in JSONL artifacts instead of
    dropping them (the CLI ``--strict`` surface).
    """
    history: List[Dict[str, object]] = []
    for path in artifacts.get("history", []):
        history.extend(load_history(path, strict=strict))
    sections: List[List[str]] = [[f"# {title}"]]
    counts = ", ".join(
        f"{len(paths)} {kind}" for kind, paths in sorted(artifacts.items())
    )
    sections.append([f"artifacts: {counts or 'none'}"])
    regressions = _regression_section(history)
    if regressions:
        sections.append(regressions)
    if artifacts.get("throughput"):
        sections.append(
            _throughput_section(artifacts["throughput"], history)
        )
    if artifacts.get("fleet"):
        sections.append(_fleet_section(artifacts["fleet"], history))
    if artifacts.get("stream"):
        sections.append(_stream_section(artifacts["stream"],
                                        strict=strict))
    if artifacts.get("manifest"):
        sections.append(_manifest_section(artifacts["manifest"]))
    if artifacts.get("spans"):
        sections.append(_spans_section(artifacts["spans"],
                                       strict=strict))
    if len(sections) == 2 and not history:
        sections.append(["", "No recognised artifacts found."])
    return "\n\n".join("\n".join(section) for section in sections) + "\n"


__all__ = [
    "HISTORY_SCHEMA",
    "ObservatoryError",
    "REGRESSION_THRESHOLD",
    "append_history",
    "classify_artifact",
    "collect_artifacts",
    "fleet_metrics",
    "history_row",
    "load_history",
    "render_dashboard",
    "throughput_metrics",
    "trend_deltas",
]
