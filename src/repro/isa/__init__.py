"""A synthetic z/Architecture-like instruction model.

The real z/Architecture is a CISC ISA with 2-, 4- and 6-byte
instructions, dozens of branch opcodes, relative branches (target =
branch address + signed halfword offset) and indirect branches (target =
base + index + displacement, resolved late in the pipeline), and *no*
architected call/return instructions.  This package models exactly the
properties the branch predictor can observe.
"""

from repro.isa.instructions import (
    BranchKind,
    Instruction,
    VALID_LENGTHS,
    is_branch,
    static_guess_taken,
    static_target_known,
)
from repro.isa.dynamic import DynamicBranch, DynamicInstruction

__all__ = [
    "BranchKind",
    "Instruction",
    "VALID_LENGTHS",
    "is_branch",
    "static_guess_taken",
    "static_target_known",
    "DynamicBranch",
    "DynamicInstruction",
]
