"""Static instruction model.

Only the attributes the branch predictor and front end can observe are
modelled: the instruction address, its length (2/4/6 bytes), whether it
is a branch and of which kind, and — for relative branches — the
statically encoded target.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.addresses import HALFWORD

#: Legal z-like instruction lengths in bytes.
VALID_LENGTHS = (2, 4, 6)


class BranchKind(enum.Enum):
    """Branch categories as the decode logic distinguishes them.

    The paper's static-guess rules (section IV): unconditional branches
    and loop branches are statically guessed taken; most conditional
    branches are statically guessed not-taken.  Relative branches have
    front-end-computable targets; indirect targets are produced about a
    dozen cycles into the back end.
    """

    #: Not a branch at all.
    NONE = "none"
    #: Conditional, target encoded as an offset in the instruction text.
    CONDITIONAL_RELATIVE = "cond-rel"
    #: Unconditional, relative target.
    UNCONDITIONAL_RELATIVE = "uncond-rel"
    #: Conditional, target from base+index+displacement (registers).
    CONDITIONAL_INDIRECT = "cond-ind"
    #: Unconditional indirect (e.g. branch-on-register), multi-target capable.
    UNCONDITIONAL_INDIRECT = "uncond-ind"
    #: Branch-on-count style loop-closing branch; statically guessed taken.
    LOOP_RELATIVE = "loop-rel"


#: Branch kinds whose dynamic target can vary between executions.
INDIRECT_KINDS = frozenset(
    {BranchKind.CONDITIONAL_INDIRECT, BranchKind.UNCONDITIONAL_INDIRECT}
)

#: Branch kinds that always redirect when executed.
UNCONDITIONAL_KINDS = frozenset(
    {BranchKind.UNCONDITIONAL_RELATIVE, BranchKind.UNCONDITIONAL_INDIRECT}
)


@dataclass(frozen=True)
class Instruction:
    """One static instruction in a program image.

    For relative branches *static_target* holds the encoded target
    (branch address + signed halfword offset already applied).  Indirect
    branches carry ``static_target=None``; their dynamic target comes
    from the executing behaviour model.
    """

    address: int
    length: int
    kind: BranchKind = BranchKind.NONE
    static_target: Optional[int] = None
    mnemonic: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.length not in VALID_LENGTHS:
            raise ValueError(
                f"instruction length must be one of {VALID_LENGTHS}, got {self.length}"
            )
        if self.address % HALFWORD:
            raise ValueError(
                f"instruction address {self.address:#x} is not halfword aligned"
            )
        if self.kind in INDIRECT_KINDS and self.static_target is not None:
            raise ValueError("indirect branches cannot carry a static target")
        relative_branch = self.kind in (
            BranchKind.CONDITIONAL_RELATIVE,
            BranchKind.UNCONDITIONAL_RELATIVE,
            BranchKind.LOOP_RELATIVE,
        )
        if relative_branch and self.static_target is None:
            raise ValueError(f"{self.kind.value} branch requires a static target")
        if self.static_target is not None and self.static_target % HALFWORD:
            raise ValueError(
                f"branch target {self.static_target:#x} is not halfword aligned"
            )

    @property
    def is_branch(self) -> bool:
        return self.kind is not BranchKind.NONE

    @property
    def is_conditional(self) -> bool:
        return self.kind in (
            BranchKind.CONDITIONAL_RELATIVE,
            BranchKind.CONDITIONAL_INDIRECT,
            BranchKind.LOOP_RELATIVE,
        )

    @property
    def is_indirect(self) -> bool:
        return self.kind in INDIRECT_KINDS

    @property
    def next_sequential(self) -> int:
        """Address of the next sequential instruction (the branch NSIA)."""
        return self.address + self.length

    @property
    def end_address(self) -> int:
        """One past the last byte of this instruction."""
        return self.address + self.length


def is_branch(instruction: Instruction) -> bool:
    """True when *instruction* is any kind of branch."""
    return instruction.is_branch


def static_guess_taken(instruction: Instruction) -> bool:
    """The decode-time static direction guess for a surprise branch.

    "Unconditional branches and loop branches are statically guessed
    taken.  Most conditional branches are statically guessed not-taken."
    (section IV)
    """
    if not instruction.is_branch:
        raise ValueError(f"{instruction!r} is not a branch")
    if instruction.kind in UNCONDITIONAL_KINDS:
        return True
    if instruction.kind is BranchKind.LOOP_RELATIVE:
        return True
    return False


def static_target_known(instruction: Instruction) -> bool:
    """Whether the front end can compute the taken target on its own.

    For statically guessed taken *relative* branches the front end can
    generate the restart address; for indirect branches it must wait for
    the execution units (section IV).
    """
    if not instruction.is_branch:
        raise ValueError(f"{instruction!r} is not a branch")
    return instruction.static_target is not None
