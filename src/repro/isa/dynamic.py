"""Dynamic execution records.

A workload's execution is a stream of :class:`DynamicInstruction` events;
the branch-bearing subset is what every predictor consumes.  Records are
immutable so engines, queues and verification monitors can share them
freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.instructions import BranchKind, Instruction


@dataclass(frozen=True)
class DynamicInstruction:
    """One executed instruction instance.

    ``sequence`` is the dynamic instruction number (0-based) within the
    run; ``thread`` identifies the SMT thread; ``context`` is a small
    address-space identifier used for virtual-address tagging (the CTB
    entry "can only be used if there is a tag match for the current
    address space", section VI).
    """

    sequence: int
    instruction: Instruction
    thread: int = 0
    context: int = 0

    @property
    def address(self) -> int:
        return self.instruction.address

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch


@dataclass(frozen=True)
class DynamicBranch:
    """One executed branch instance with its resolved outcome."""

    sequence: int
    instruction: Instruction
    taken: bool
    target: Optional[int]
    thread: int = 0
    context: int = 0

    def __post_init__(self) -> None:
        if not self.instruction.is_branch:
            raise ValueError("DynamicBranch requires a branch instruction")
        if self.taken and self.target is None:
            raise ValueError("a taken branch must carry a target")
        if not self.taken and self.target is not None:
            raise ValueError("a not-taken branch carries no target")

    @property
    def address(self) -> int:
        return self.instruction.address

    @property
    def kind(self) -> BranchKind:
        return self.instruction.kind

    @property
    def next_sequential(self) -> int:
        """The fall-through address (NSIA)."""
        return self.instruction.next_sequential

    @property
    def next_address(self) -> int:
        """Where control actually went: target if taken, else NSIA."""
        if self.taken:
            assert self.target is not None
            return self.target
        return self.instruction.next_sequential
