"""Dynamic execution records.

A workload's execution is a stream of :class:`DynamicInstruction` events;
the branch-bearing subset is what every predictor consumes.  Records are
immutable so engines, queues and verification monitors can share them
freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.slots import add_slots
from repro.isa.instructions import BranchKind, Instruction


@add_slots
@dataclass(frozen=True)
class DynamicInstruction:
    """One executed instruction instance.

    ``sequence`` is the dynamic instruction number (0-based) within the
    run; ``thread`` identifies the SMT thread; ``context`` is a small
    address-space identifier used for virtual-address tagging (the CTB
    entry "can only be used if there is a tag match for the current
    address space", section VI).
    """

    sequence: int
    instruction: Instruction
    thread: int = 0
    context: int = 0

    @property
    def address(self) -> int:
        return self.instruction.address

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch


@add_slots
@dataclass(frozen=True)
class DynamicBranch:
    """One executed branch instance with its resolved outcome."""

    sequence: int
    instruction: Instruction
    taken: bool
    target: Optional[int]
    thread: int = 0
    context: int = 0
    # Eagerly-derived views of the instruction (computed once in
    # __post_init__): the prediction chain reads each of these several
    # times per branch, so plain slots beat per-access properties.
    #: The branch's instruction address.
    address: int = field(init=False)
    #: The branch kind bits.
    kind: BranchKind = field(init=False)
    #: The fall-through address (NSIA).
    next_sequential: int = field(init=False)
    #: Where control actually went: target if taken, else NSIA.
    next_address: int = field(init=False)

    def __post_init__(self) -> None:
        instruction = self.instruction
        if instruction.kind is BranchKind.NONE:
            raise ValueError("DynamicBranch requires a branch instruction")
        target = self.target
        if self.taken:
            if target is None:
                raise ValueError("a taken branch must carry a target")
        elif target is not None:
            raise ValueError("a not-taken branch carries no target")
        set_attr = object.__setattr__
        address = instruction.address
        next_sequential = address + instruction.length
        set_attr(self, "address", address)
        set_attr(self, "kind", instruction.kind)
        set_attr(self, "next_sequential", next_sequential)
        set_attr(
            self, "next_address", target if self.taken else next_sequential
        )
