"""repro — an open-source model of the IBM z15 branch predictor.

A reproduction of "The IBM z15 High Frequency Mainframe Branch Predictor"
(ISCA 2020, Industry Track): the asynchronous lookahead multi-level
branch predictor (BTB1/BTB2, TAGE PHT, perceptron, CTB, CRS, CPRED,
SKOOT, GPV, GPQ, speculative overlays), the front-end substrate it
steers, functional and cycle-level engines, baseline predictors, and the
white-box verification methodology of the paper's section VII.

Quickstart::

    from repro import LookaheadBranchPredictor, FunctionalEngine
    from repro.configs import z15_config
    from repro.workloads import get_workload

    predictor = LookaheadBranchPredictor(z15_config())
    engine = FunctionalEngine(predictor)
    stats = engine.run_program(get_workload("transactions"),
                               max_branches=50_000, warmup_branches=10_000)
    print(stats.report("z15 / transactions"))
"""

from repro.configs import (
    PredictorConfig,
    TimingConfig,
    z13_config,
    z14_config,
    z15_config,
    zec12_config,
)
from repro.core import LookaheadBranchPredictor, PredictionOutcome
from repro.engine import (
    BACKENDS,
    ArrayLookaheadBranchPredictor,
    CycleEngine,
    CycleStats,
    FunctionalEngine,
    create_predictor,
)
from repro.stats import MispredictClass, RunStats

__version__ = "1.0.0"

__all__ = [
    "PredictorConfig",
    "TimingConfig",
    "z13_config",
    "z14_config",
    "z15_config",
    "zec12_config",
    "LookaheadBranchPredictor",
    "ArrayLookaheadBranchPredictor",
    "BACKENDS",
    "create_predictor",
    "PredictionOutcome",
    "CycleEngine",
    "CycleStats",
    "FunctionalEngine",
    "MispredictClass",
    "RunStats",
    "__version__",
]
