"""Bounded queues with occupancy statistics.

The z15 design places queues between the prediction pipeline and its
consumers "to prevent the consumers from excessively throttling the
search pipeline" (section IV), and uses a staging queue between the BTB2
and BTB1 plus a write queue for installs.  All of them are bounded FIFOs
whose overflow behaviour matters, so the model counts rejects.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class QueueFullError(Exception):
    """Raised by :meth:`BoundedQueue.push` when the queue is full."""


class BoundedQueue(Generic[T]):
    """A FIFO with a hard capacity and drop/occupancy accounting."""

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.pushes = 0
        self.pops = 0
        self.rejects = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item: T) -> None:
        """Append *item*; raises :class:`QueueFullError` when full."""
        if self.full:
            self.rejects += 1
            raise QueueFullError(f"{self.name} is full (capacity {self.capacity})")
        self._items.append(item)
        self.pushes += 1
        self.high_watermark = max(self.high_watermark, len(self._items))

    def try_push(self, item: T) -> bool:
        """Append *item* if there is room; returns success."""
        if self.full:
            self.rejects += 1
            return False
        self._items.append(item)
        self.pushes += 1
        self.high_watermark = max(self.high_watermark, len(self._items))
        return True

    def pop(self) -> T:
        """Remove and return the oldest item."""
        if not self._items:
            raise IndexError(f"pop from empty {self.name}")
        self.pops += 1
        return self._items.popleft()

    def try_pop(self) -> Optional[T]:
        """Remove and return the oldest item, or None when empty."""
        if not self._items:
            return None
        self.pops += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """The oldest item without removing it, or None when empty."""
        return self._items[0] if self._items else None

    def item_at(self, index: int) -> T:
        """Read the item *index* positions from the front (fault hooks)."""
        return self._items[index]

    def remove_at(self, index: int) -> T:
        """Remove and return the item at *index* without counting it as a
        pop — models a transfer lost in flight, not a consumed one."""
        item = self._items[index]
        del self._items[index]
        return item

    def drain(self) -> List[T]:
        """Remove and return every queued item, oldest first."""
        drained = list(self._items)
        self.pops += len(drained)
        self._items.clear()
        return drained

    def clear(self) -> None:
        """Discard contents without counting them as pops (a flush)."""
        self._items.clear()
