"""A generic set-associative table.

Every major z15 prediction array — BTB1 (2K x 8), BTB2 (32K x 4), the
TAGE PHT tables (512 x 8), the CTB (512 x 4) and the perceptron array
(16 x 2) — is a set-associative structure.  This class provides the row /
way / replacement mechanics; the tables in :mod:`repro.core` supply the
index and tag functions and the entry types.

Rows and their replacement-policy state are materialised lazily on
first access: a z15-sized BTB2 has 32K rows, and eagerly building a
list and an LRU object per row dominates predictor construction time
while short runs touch only a tiny fraction of them.
"""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, Tuple, TypeVar

from repro.structures.lru import PseudoLruTree, ReplacementPolicy, TrueLru

E = TypeVar("E")

PolicyFactory = Callable[[int], ReplacementPolicy]

_POLICY_FACTORIES = {
    "lru": TrueLru,
    "plru": PseudoLruTree,
}


class SetAssociativeTable(Generic[E]):
    """Rows x ways of optional entries with per-row replacement state."""

    def __init__(self, rows: int, ways: int, policy: str = "lru"):
        if rows <= 0:
            raise ValueError(f"rows must be positive, got {rows}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        if policy not in _POLICY_FACTORIES:
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.rows = rows
        self.ways = ways
        self.policy_name = policy
        self._policy_factory: PolicyFactory = _POLICY_FACTORIES[policy]
        # Lazily-materialised per-row storage: None until first access.
        self._data: List[Optional[List[Optional[E]]]] = [None] * rows
        self._policies: List[Optional[ReplacementPolicy]] = [None] * rows

    @property
    def capacity(self) -> int:
        """Total number of entries the table can hold."""
        return self.rows * self.ways

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range for {self.rows}-row table")

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise ValueError(f"way {way} out of range for {self.ways}-way row")

    def _row(self, row: int) -> List[Optional[E]]:
        """The backing list of *row*, materialising it on first use."""
        data = self._data[row]
        if data is None:
            data = self._data[row] = [None] * self.ways
        return data

    def row_entries(self, row: int) -> List[Optional[E]]:
        """A copy of the row's contents indexed by way."""
        self._check_row(row)
        return list(self._row(row))

    def row_ref(self, row: int) -> List[Optional[E]]:
        """The live backing list of *row*, indexed by way — no copy.

        Hot-path read accessor for per-search row scans; callers must
        not mutate the returned list (use :meth:`write` /
        :meth:`invalidate`) and must pass an in-range row.  Use
        :meth:`row_entries` when a safe copy is wanted.
        """
        data = self._data[row]
        if data is None:
            data = self._data[row] = [None] * self.ways
        return data

    def policy(self, row: int) -> ReplacementPolicy:
        """The live replacement-policy object of *row* — no range check.

        Hot-path accessor pairing with :meth:`row_ref`: a search that
        already validated the row can touch several ways through the
        returned policy without re-validating per touch.  Materialises
        the policy on first use.
        """
        policy = self._policies[row]
        if policy is None:
            policy = self._policies[row] = self._policy_factory(self.ways)
        return policy

    def read(self, row: int, way: int) -> Optional[E]:
        """The entry at (row, way), or None; does not touch replacement."""
        self._check_row(row)
        self._check_way(way)
        data = self._data[row]
        return None if data is None else data[way]

    def find(self, row: int, match: Callable[[E], bool]) -> Optional[Tuple[int, E]]:
        """First (way, entry) in *row* whose entry satisfies *match*."""
        self._check_row(row)
        data = self._data[row]
        if data is None:
            return None
        for way, entry in enumerate(data):
            if entry is not None and match(entry):
                return way, entry
        return None

    def find_all(self, row: int, match: Callable[[E], bool]) -> List[Tuple[int, E]]:
        """All (way, entry) pairs in *row* whose entries satisfy *match*.

        A BTB1 search reads a whole row and can report every branch in the
        64-byte line at once (up to 8 predictions per cycle, section IV).
        """
        self._check_row(row)
        data = self._data[row]
        if data is None:
            return []
        return [
            (way, entry)
            for way, entry in enumerate(data)
            if entry is not None and match(entry)
        ]

    def touch(self, row: int, way: int) -> None:
        """Mark (row, way) most recently used."""
        self._check_row(row)
        self._check_way(way)
        self.policy(row).touch(way)

    def victim_way(self, row: int) -> int:
        """The way a new install would displace: an empty way if one
        exists, otherwise the replacement policy's choice."""
        self._check_row(row)
        for way, entry in enumerate(self._row(row)):
            if entry is None:
                return way
        return self.policy(row).victim()

    def write(self, row: int, way: int, entry: E, touch: bool = True) -> Optional[E]:
        """Overwrite (row, way) with *entry*; returns the displaced entry."""
        self._check_row(row)
        self._check_way(way)
        data = self._row(row)
        displaced = data[way]
        data[way] = entry
        if touch:
            self.policy(row).touch(way)
        return displaced

    def install(
        self,
        row: int,
        entry: E,
        match: Optional[Callable[[E], bool]] = None,
    ) -> Tuple[int, Optional[E]]:
        """Install *entry* in *row*, returning ``(way, evicted_entry)``.

        When *match* is given and an existing entry satisfies it, that
        entry is overwritten in place (an update).  Otherwise an empty way
        is used, or the replacement victim is displaced.
        """
        self._check_row(row)
        if match is not None:
            found = self.find(row, match)
            if found is not None:
                way, _ = found
                return way, self.write(row, way, entry)
        way = self.victim_way(row)
        return way, self.write(row, way, entry)

    def invalidate(self, row: int, way: int) -> Optional[E]:
        """Remove and return the entry at (row, way)."""
        self._check_row(row)
        self._check_way(way)
        data = self._data[row]
        if data is None:
            return None
        removed = data[way]
        data[way] = None
        return removed

    def invalidate_where(self, match: Callable[[E], bool]) -> int:
        """Remove every entry satisfying *match*; returns removal count."""
        removed = 0
        for data in self._data:
            if data is None:
                continue
            for way, entry in enumerate(data):
                if entry is not None and match(entry):
                    data[way] = None
                    removed += 1
        return removed

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(
            1
            for data in self._data
            if data is not None
            for entry in data
            if entry is not None
        )

    def clear(self) -> None:
        """Invalidate every entry (replacement state is kept)."""
        for data in self._data:
            if data is None:
                continue
            for way in range(self.ways):
                data[way] = None

    def __iter__(self):
        """Iterate over ``(row, way, entry)`` for every valid entry."""
        for row_index, data in enumerate(self._data):
            if data is None:
                continue
            for way, entry in enumerate(data):
                if entry is not None:
                    yield row_index, way, entry
