"""Saturating counters — the building block of direction prediction.

The BHT embedded in the BTB1 is a 2-bit saturating counter that "indicates
the direction and strength" (section V).  TAGE PHT entries and usefulness
counts are also small saturating counters.
"""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating counter holding values in [0, 2**bits - 1]."""

    def __init__(self, bits: int, value: int = 0):
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        if not 0 <= value <= self.maximum:
            raise ValueError(f"value {value} out of range for {bits}-bit counter")
        self.value = value

    def increment(self, amount: int = 1) -> int:
        """Saturating add; returns the new value."""
        self.value = min(self.maximum, self.value + amount)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        """Saturating subtract; returns the new value."""
        self.value = max(0, self.value - amount)
        return self.value

    def is_saturated_high(self) -> bool:
        return self.value == self.maximum

    def is_saturated_low(self) -> bool:
        return self.value == 0

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class TwoBitDirectionCounter:
    """The classic 2-bit direction counter with named strength states.

    Encoding (matching the usual hardware convention):

    ====== =================
    value  meaning
    ====== =================
    0      strong not-taken
    1      weak not-taken
    2      weak taken
    3      strong taken
    ====== =================
    """

    STRONG_NOT_TAKEN = 0
    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2
    STRONG_TAKEN = 3

    def __init__(self, value: int = WEAK_NOT_TAKEN):
        if not 0 <= value <= 3:
            raise ValueError(f"2-bit counter value out of range: {value}")
        self.value = value

    @classmethod
    def for_direction(cls, taken: bool, strong: bool = False) -> "TwoBitDirectionCounter":
        """Build a counter primed to predict *taken*, weakly by default.

        New BTB installs prime the BHT weakly in the resolved direction so
        that a single contrary outcome can flip the prediction.
        """
        if taken:
            return cls(cls.STRONG_TAKEN if strong else cls.WEAK_TAKEN)
        return cls(cls.STRONG_NOT_TAKEN if strong else cls.WEAK_NOT_TAKEN)

    @property
    def taken(self) -> bool:
        """The predicted direction."""
        return self.value >= self.WEAK_TAKEN

    @property
    def strong(self) -> bool:
        """True in either saturated state."""
        return self.value in (self.STRONG_NOT_TAKEN, self.STRONG_TAKEN)

    @property
    def weak(self) -> bool:
        return not self.strong

    def update(self, taken: bool) -> None:
        """Move one step toward the resolved direction (saturating)."""
        if taken:
            self.value = min(self.STRONG_TAKEN, self.value + 1)
        else:
            self.value = max(self.STRONG_NOT_TAKEN, self.value - 1)

    def strengthen(self) -> None:
        """Move one step toward saturation in the current direction.

        Used by the speculative BHT/PHT mechanism: a weak prediction that
        is assumed correct updates the state to strong (section IV).
        """
        self.update(self.taken)

    def copy(self) -> "TwoBitDirectionCounter":
        return TwoBitDirectionCounter(self.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwoBitDirectionCounter):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        names = {0: "strong-NT", 1: "weak-NT", 2: "weak-T", 3: "strong-T"}
        return f"TwoBitDirectionCounter({names[self.value]})"
