"""Generic hardware-structure building blocks.

The z15 prediction tables are all variations on a small number of
primitives: set-associative arrays with an LRU-ish replacement policy,
saturating counters, and bounded queues.  The concrete predictor tables
in :mod:`repro.core` are thin, well-named compositions of these.
"""

from repro.structures.assoc import SetAssociativeTable
from repro.structures.lru import PseudoLruTree, ReplacementPolicy, TrueLru
from repro.structures.queues import BoundedQueue, QueueFullError
from repro.structures.saturating import SaturatingCounter, TwoBitDirectionCounter

__all__ = [
    "SetAssociativeTable",
    "ReplacementPolicy",
    "TrueLru",
    "PseudoLruTree",
    "BoundedQueue",
    "QueueFullError",
    "SaturatingCounter",
    "TwoBitDirectionCounter",
]
