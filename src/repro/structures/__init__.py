"""Generic hardware-structure building blocks.

The z15 prediction tables are all variations on a small number of
primitives: set-associative arrays with an LRU-ish replacement policy,
saturating counters, and bounded queues.  The concrete predictor tables
in :mod:`repro.core` are thin, well-named compositions of these; the
array-backed twins in :mod:`repro.structures.arrays` accelerate them
with bit-packed SWAR tag mirrors and flat weight buffers.

The array twins subclass the :mod:`repro.core` tables, so importing
them here eagerly would close an import cycle (core tables import the
primitives from this package); they are re-exported lazily instead.
"""

from repro.structures.assoc import SetAssociativeTable
from repro.structures.lru import PseudoLruTree, ReplacementPolicy, TrueLru
from repro.structures.queues import BoundedQueue, QueueFullError
from repro.structures.saturating import SaturatingCounter, TwoBitDirectionCounter

_ARRAY_EXPORTS = (
    "NUMPY_AVAILABLE",
    "PackedLanes",
    "ArrayBtb1",
    "ArrayBtb2",
    "ArrayPerceptron",
    "ArrayTagePht",
)

__all__ = [
    "SetAssociativeTable",
    "ReplacementPolicy",
    "TrueLru",
    "PseudoLruTree",
    "BoundedQueue",
    "QueueFullError",
    "SaturatingCounter",
    "TwoBitDirectionCounter",
    *_ARRAY_EXPORTS,
]


def __getattr__(name: str):
    if name in _ARRAY_EXPORTS:
        from repro.structures import arrays

        return getattr(arrays, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
