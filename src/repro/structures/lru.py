"""Replacement policies for set-associative tables.

Two policies are provided: exact LRU (list-based, what the paper's prose
reasons about when it says "next to be evicted (LRU) entry") and a
tree-based pseudo-LRU, the usual hardware implementation for 8-way
arrays.  Both answer the same three questions per row: which way is the
victim, which way was just used, and which way was just filled.
"""

from __future__ import annotations

from typing import List


class ReplacementPolicy:
    """Per-row replacement state for a set-associative structure."""

    def __init__(self, ways: int):
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.ways = ways

    def touch(self, way: int) -> None:
        """Record a use of *way* (moves it away from eviction)."""
        raise NotImplementedError

    def victim(self) -> int:
        """Return the way that would be evicted next."""
        raise NotImplementedError

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise ValueError(f"way {way} out of range for {self.ways}-way row")


class TrueLru(ReplacementPolicy):
    """Exact least-recently-used ordering."""

    def __init__(self, ways: int):
        super().__init__(ways)
        # Index 0 is least recently used; the last element is most recent.
        self._order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        # No range check: touch sits on the per-hit hot path; the table
        # layer validates ways on its public entry points.
        order = self._order
        order.remove(way)
        order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def recency_order(self) -> List[int]:
        """Ways ordered least- to most-recently used (for introspection)."""
        return list(self._order)


class PseudoLruTree(ReplacementPolicy):
    """Tree-based pseudo-LRU over a power-of-two number of ways.

    A binary tree of single-bit pointers; each internal node points toward
    the less recently used half.  This is the standard area-cheap
    approximation used for wide (8-way) hardware arrays such as the BTB1.
    """

    def __init__(self, ways: int):
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError(f"pseudo-LRU requires power-of-two ways, got {ways}")
        # One bit per internal node, heap-ordered; node 1 is the root.
        # A bit of 0 means "left subtree is older", 1 means "right is older".
        self._bits = [0] * ways  # index 0 unused

    def touch(self, way: int) -> None:
        # No range check — see TrueLru.touch.
        node = 1
        span = self.ways
        offset = 0
        while span > 1:
            half = span // 2
            if way < offset + half:
                # Used the left half: point the node at the right half.
                self._bits[node] = 1
                node = 2 * node
                span = half
            else:
                self._bits[node] = 0
                node = 2 * node + 1
                offset += half
                span = half

    def victim(self) -> int:
        node = 1
        span = self.ways
        offset = 0
        while span > 1:
            half = span // 2
            if self._bits[node] == 0:
                node = 2 * node
                span = half
            else:
                node = 2 * node + 1
                offset += half
                span = half
        return offset
