"""Array-backed prediction structures (the SRAM-shaped fast path).

The z15 predictor's big structures are regular SRAM/eDRAM arrays probed
in fixed-width lanes: a BTB1 search reads a whole 8-way row and compares
eight partial tags at once (section IV), and the TAGE tables and
perceptron weight matrix are equally regular.  The object model in
:mod:`repro.core` represents every entry as a Python object and pays a
per-way attribute-chase on every probe — the dominant cost of a search,
most of which miss.

This module provides the array twins:

* :class:`PackedLanes` — per-row valid+tag lanes kept in two
  synchronised views: bit-packed Python ints carrying a SWAR
  (SIMD-within-a-register) all-ways-at-once comparator — exactly the
  row-wide tag match the hardware performs (a z15 BTB1 row is 8 ways x
  17 bits = 136 bits, wider than any fixed-width dtype) — plus a flat
  sentinel tag array the hot probes scan at C speed.
* :class:`ArrayBtb1` / :class:`ArrayBtb2` / :class:`ArrayTagePht` —
  mirror-synchronised subclasses: the authoritative entry objects
  remain (the predictor trains them in place and checkpointing walks
  them), while the valid+tag mirror answers the per-probe question
  "does anything here match?" without touching a single entry object.
* :class:`ArrayPerceptron` — a full array reimplementation: weights,
  virtualisation maps and replacement metadata live in flat contiguous
  buffers indexed by ``(row, way, weight)``.

numpy is optional.  When importable (and not disabled via the
``REPRO_NO_NUMPY`` environment variable) it supplies bulk matrix
views over the perceptron buffers for whole-array audits; every
behavioural path works identically without it, so the array backend
runs — and is CI-tested — on numpy-free installs.

Every class honours the resilience contract from the fault-injection
subsystem: ``corrupt()`` keeps entries legal-but-wrong and returns a
:class:`~repro.common.corruption.Corruption` whose ``invalidate``
recovery action also repairs the mirror, and ``audit()`` additionally
cross-checks mirror consistency (a divergent mirror is a modelling bug,
never an injected fault).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.common.addresses import line_of
from repro.common.corruption import Corruption, flipped_bits
from repro.configs.predictor import (
    Btb1Config,
    Btb2Config,
    PerceptronConfig,
    PhtConfig,
)
from repro.core.btb1 import Btb1, BtbHit, InstallResult, _hit_offset
from repro.core.btb2 import Btb2System, StagedTransfer
from repro.core.perceptron import Perceptron, PerceptronLookup
from repro.core.tage import TableLookup, TagePht, _TageTable

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        _np = None

#: True when the optional numpy acceleration layer is active.
NUMPY_AVAILABLE = _np is not None

__all__ = [
    "NUMPY_AVAILABLE",
    "PackedLanes",
    "ArrayBtb1",
    "ArrayBtb2",
    "ArrayTagePht",
    "ArrayPerceptron",
]


class PackedLanes:
    """Bit-packed valid+tag lanes for one set-associative table.

    Each row is held in two synchronised views of the same lanes:

    * one Python int of ``ways`` lanes of ``tag_bits + 1`` bits — the
      tag in the low bits and a zero *guard* bit above it.  A probe can
      compare the searched tag against every lane simultaneously with
      the classic SWAR zero-lane detector::

          diff  = packed ^ (tag * LSB)        # 0 lanes where tags match
          match = ~((diff | GUARD) - LSB) & valid

      ``LSB`` broadcasts a 1 into every lane's bit 0 and ``GUARD`` into
      every guard bit.  ORing the guard bit in before subtracting makes
      every lane's minuend nonzero, so the per-lane ``-1`` can never
      borrow across lane boundaries; the guard bit of the difference
      ends up 0 exactly in the lanes whose tags matched, and
      complementing and masking with the valid word (one guard-position
      bit per valid way) leaves one set bit per matching valid way.
      This is the row-wide comparator the hardware builds.
    * a flat per-row tag array with a ``-1`` sentinel in invalid ways,
      scanned at C speed by ``list.count`` / ``list.index``.  Measured
      under CPython this beats the big-int SWAR ops (a miss probe costs
      one C containment scan instead of a multi-word multiply chain),
      so the hot probes read this view; ``match`` keeps the SWAR form
      and the audit proves both views agree.

    Mutations are rare next to probes, so maintaining both views costs
    nothing measurable on the prediction path.
    """

    __slots__ = (
        "rows", "ways", "tag_bits", "lane_bits",
        "_lsb", "_guard", "packed", "valid", "tags",
    )

    #: Sentinel stored in invalid ways of the tag-array view; real tags
    #: are XOR folds and therefore never negative.
    EMPTY = -1

    def __init__(self, rows: int, ways: int, tag_bits: int):
        self.rows = rows
        self.ways = ways
        self.tag_bits = tag_bits
        self.lane_bits = tag_bits + 1
        lsb = 0
        for way in range(ways):
            lsb |= 1 << (way * self.lane_bits)
        self._lsb = lsb
        self._guard = lsb << tag_bits
        #: One packed-tag int and one valid-guard-bit int per row.
        self.packed: List[int] = [0] * rows
        self.valid: List[int] = [0] * rows
        #: The C-scannable view: ``tags[row][way]`` is the tag or EMPTY.
        self.tags: List[List[int]] = [[-1] * ways for _ in range(rows)]

    def set(self, row: int, way: int, tag: int) -> None:
        """Make *way* valid with *tag* (overwriting any previous lane)."""
        shift = way * self.lane_bits
        lane_mask = ((1 << self.tag_bits) - 1) << shift
        self.packed[row] = (self.packed[row] & ~lane_mask) | (tag << shift)
        self.valid[row] |= 1 << (shift + self.tag_bits)
        self.tags[row][way] = tag

    def clear_way(self, row: int, way: int) -> None:
        """Invalidate one lane (the packed tag bits may stay stale)."""
        self.valid[row] &= ~(1 << (way * self.lane_bits + self.tag_bits))
        self.tags[row][way] = -1

    def clear_all(self) -> None:
        for row in range(self.rows):
            self.valid[row] = 0
        ways = self.ways
        for tags in self.tags:
            tags[:] = [-1] * ways

    def match(self, row: int, tag: int) -> int:
        """Guard-position bitmask of valid ways whose tag equals *tag*
        (the SWAR comparator over the packed view)."""
        valid = self.valid[row]
        if not valid:
            return 0
        diff = self.packed[row] ^ (tag * self._lsb)
        return ~((diff | self._guard) - self._lsb) & valid

    def match_ways(self, row: int, tag: int) -> List[int]:
        """Matching way indices in ascending order (object scan order)."""
        tags = self.tags[row]
        count = tags.count(tag)
        ways = []
        start = 0
        for _ in range(count):
            way = tags.index(tag, start)
            ways.append(way)
            start = way + 1
        return ways

    def way_tag(self, row: int, way: int) -> int:
        """The stored tag bits of one packed lane (valid or not)."""
        return (self.packed[row] >> (way * self.lane_bits)) & (
            (1 << self.tag_bits) - 1
        )

    def is_valid(self, row: int, way: int) -> bool:
        return bool(
            self.valid[row] >> (way * self.lane_bits + self.tag_bits) & 1
        )

    def valid_count(self) -> int:
        """Total valid lanes across every row."""
        total = 0
        for word in self.valid:
            total += bin(word).count("1")
        return total

    def view_violations(self, name: str) -> List[str]:
        """Cross-check the packed/SWAR view against the tag-array view."""
        violations = []
        for row in range(self.rows):
            tags = self.tags[row]
            for way in range(self.ways):
                tag = tags[way]
                if tag < 0:
                    if self.is_valid(row, way):
                        violations.append(
                            f"{name} lanes[row={row},way={way}] valid in "
                            "packed view but empty in tag view"
                        )
                elif not self.is_valid(row, way):
                    violations.append(
                        f"{name} lanes[row={row},way={way}] valid in tag "
                        "view but not in packed view"
                    )
                elif self.way_tag(row, way) != tag:
                    violations.append(
                        f"{name} lanes[row={row},way={way}] packed tag "
                        f"{self.way_tag(row, way)} != tag view {tag}"
                    )
        return violations


def _location_row(corruption: Corruption) -> int:
    """Parse the row index out of a ``row=R,way=W`` corruption location."""
    return int(corruption.location.split(",", 1)[0].split("=", 1)[1])


class ArrayBtb1(Btb1):
    """BTB1 with a packed valid+tag mirror answering probes row-wide.

    The authoritative :class:`~repro.core.entries.BtbEntry` objects stay
    in the parent's table — the predictor trains their BHT/target fields
    in place, checkpoints iterate them — but every search first runs the
    SWAR comparator over the mirror, rejecting the common no-match row
    without touching a single entry object.  Every table mutation path
    (install / remove / invalidate / clear / corrupt) resynchronises the
    mirror, and :meth:`audit` proves it stayed coherent.
    """

    def __init__(self, config: Btb1Config):
        super().__init__(config)
        lanes = PackedLanes(config.rows, config.ways, config.tag_bits)
        self._lanes = lanes
        # Rebound locally by the probe: the valid word rejects an empty
        # row before the tag fold runs, and the tag-array view is
        # scanned at C speed by list.count/list.index.
        self._mirror_valid = lanes.valid
        self._mirror_tags = lanes.tags

    # -- mirror maintenance --------------------------------------------

    def _resync_row(self, row: int) -> None:
        lanes = self._lanes
        for way, entry in enumerate(self._table.row_ref(row)):
            if entry is None:
                lanes.clear_way(row, way)
            else:
                lanes.set(row, way, entry.tag)

    # -- probe path ----------------------------------------------------

    def search_line(
        self, line_base: int, context: int, min_offset: int = 0
    ) -> List[BtbHit]:
        line_shift = self._line_shift
        base = (line_base >> line_shift) << line_shift
        line_number = base >> line_shift
        row = line_number & self._row_mask
        self.searches += 1
        hits: List[BtbHit] = []
        if self._mirror_valid[row]:
            # The tag fold only matters when the row holds something.
            value = (line_number >> self._row_bits) ^ (context * 0x9E37)
            tag = 0
            tag_bits = self._tag_bits
            fold_mask = self._tag_fold_mask
            while value:
                tag ^= value & fold_mask
                value >>= tag_bits
            tags = self._mirror_tags[row]
            count = tags.count(tag)
            if count:
                entries = self._table.row_ref(row)
                start = 0
                for _ in range(count):
                    way = tags.index(tag, start)
                    start = way + 1
                    entry = entries[way]
                    if entry.offset >= min_offset:
                        hits.append(
                            BtbHit(row=row, way=way, entry=entry,
                                   line_base=base)
                        )
        if hits:
            if len(hits) > 1:
                hits.sort(key=_hit_offset)
            self.hit_searches += 1
            touch = self._table.policy(row).touch
            for hit in hits:
                touch(hit.way)
        if self.on_search is not None:
            self.on_search(
                line_base=base, context=context, min_offset=min_offset, hits=hits
            )
        return hits

    # -- mutation paths ------------------------------------------------

    def install(self, address: int, context: int, entry) -> InstallResult:
        result = super().install(address, context, entry)
        if result.installed:
            self._lanes.set(result.row, result.way, entry.tag)
        return result

    def remove(self, hit: BtbHit) -> bool:
        removed = super().remove(hit)
        if removed:
            self._lanes.clear_way(hit.row, hit.way)
        return removed

    def invalidate_entry(self, row: int, way: int) -> None:
        super().invalidate_entry(row, way)
        self._lanes.clear_way(row, way)

    def clear(self) -> None:
        super().clear()
        self._lanes.clear_all()

    def corrupt(self, rng) -> Optional[Corruption]:
        corruption = super().corrupt(rng)
        if corruption is None:
            return None
        row = _location_row(corruption)
        # A tag flip (or any field, cheaply) must reach the mirror, and
        # the recovery action must clear the mirrored valid bit too.
        self._resync_row(row)
        inner = corruption.invalidate
        def _invalidate(inner=inner, resync=self._resync_row, row=row):
            inner()
            resync(row)
        corruption.invalidate = _invalidate
        return corruption

    # -- audit ---------------------------------------------------------

    def audit(self) -> List[str]:
        violations = super().audit()
        lanes = self._lanes
        mirrored = 0
        for row, way, entry in self._table:
            where = f"btb1[row={row},way={way}]"
            if not lanes.is_valid(row, way):
                violations.append(f"{where} live entry missing from mirror")
            elif lanes.way_tag(row, way) != entry.tag:
                violations.append(
                    f"{where} mirror tag {lanes.way_tag(row, way)} != "
                    f"entry tag {entry.tag}"
                )
            mirrored += 1
        stale = lanes.valid_count() - mirrored
        if stale:
            violations.append(
                f"btb1 mirror holds {stale} valid lane(s) with no entry"
            )
        return violations


class ArrayBtb2(Btb2System):
    """BTB2 with a packed valid+tag mirror over its 32K x 4 array.

    A BTB2 search sweeps ``transfer_lines`` (32) consecutive lines, and
    on a cold footprint almost every probed row is empty or tag-
    mismatched — exactly the case the SWAR mirror rejects in O(1).  The
    staging queue and every trigger/refresh behaviour come unchanged
    from the parent; only the row probe and the mutation paths are
    touched.
    """

    def __init__(self, config: Btb2Config, btb1: Btb1):
        super().__init__(config, btb1)
        self._lanes = PackedLanes(config.rows, config.ways, config.tag_bits)

    def _resync_row(self, row: int) -> None:
        lanes = self._lanes
        for way, entry in enumerate(self._table.row_ref(row)):
            if entry is None:
                lanes.clear_way(row, way)
            else:
                lanes.set(row, way, entry.tag)

    # -- probe path ----------------------------------------------------

    def search(self, address: int, context: int) -> int:
        self.searches += 1
        base = line_of(address, self.config.line_size)
        staged = 0
        mirror_valid = self._lanes.valid
        mirror_tags = self._lanes.tags
        table = self._table
        line_size = self.config.line_size
        row_of = self.row_of
        tag_of = self.tag_of
        for line_number in range(self.config.transfer_lines):
            line_base = base + line_number * line_size
            row = row_of(line_base)
            # Empty row: skip the tag fold entirely (the fold is pure).
            if not mirror_valid[row]:
                continue
            tags = mirror_tags[row]
            tag = tag_of(line_base, context)
            count = tags.count(tag)
            if not count:
                continue
            entries = table.row_ref(row)
            touch = table.policy(row).touch
            start = 0
            for _ in range(count):
                way = tags.index(tag, start)
                start = way + 1
                entry = entries[way]
                self.transfers_found += 1
                touch(way)
                transfer = StagedTransfer(
                    address=line_base + entry.offset, context=context,
                    entry=entry,
                )
                if self.staging.try_push(transfer):
                    staged += 1
                else:
                    self.staging_overflows += 1
        self.transfers_staged += staged
        return staged

    # -- mutation paths ------------------------------------------------

    def writeback_entry(self, entry) -> None:
        super().writeback_entry(entry)
        self._resync_row(self.row_of(entry.line_base + entry.offset))

    def install_snapshot(self, address: int, context: int, entry) -> None:
        super().install_snapshot(address, context, entry)
        self._resync_row(self.row_of(address))

    def invalidate_entry(self, row: int, way: int) -> None:
        super().invalidate_entry(row, way)
        self._lanes.clear_way(row, way)

    def clear(self) -> None:
        super().clear()
        self._lanes.clear_all()

    def corrupt(self, rng) -> Optional[Corruption]:
        corruption = super().corrupt(rng)
        if corruption is None:
            return None
        row = _location_row(corruption)
        self._resync_row(row)
        inner = corruption.invalidate
        def _invalidate(inner=inner, resync=self._resync_row, row=row):
            inner()
            resync(row)
        corruption.invalidate = _invalidate
        return corruption

    # -- audit ---------------------------------------------------------

    def audit(self) -> List[str]:
        violations = super().audit()
        lanes = self._lanes
        mirrored = 0
        for row, way, entry in self._table:
            where = f"btb2[row={row},way={way}]"
            if not lanes.is_valid(row, way):
                violations.append(f"{where} live entry missing from mirror")
            elif lanes.way_tag(row, way) != entry.tag:
                violations.append(
                    f"{where} mirror tag {lanes.way_tag(row, way)} != "
                    f"entry tag {entry.tag}"
                )
            mirrored += 1
        stale = lanes.valid_count() - mirrored
        if stale:
            violations.append(
                f"btb2 mirror holds {stale} valid lane(s) with no entry"
            )
        return violations


class _ArrayTageTable(_TageTable):
    """One tagged TAGE table with a packed valid+tag probe mirror."""

    def __init__(self, name: str, config: PhtConfig, history: int,
                 gpv_bits: int):
        super().__init__(name, config, history, gpv_bits)
        lanes = PackedLanes(config.rows, config.ways, config.tag_bits)
        self._lanes = lanes
        self._mirror_valid = lanes.valid
        self._mirror_tags = lanes.tags

    def _resync_row(self, row: int) -> None:
        lanes = self._lanes
        for way, entry in enumerate(self._table.row_ref(row)):
            if entry is None:
                lanes.clear_way(row, way)
            else:
                lanes.set(row, way, entry.tag)

    def lookup(self, address: int, gpv_snapshot: int) -> Optional[TableLookup]:
        history = gpv_snapshot & self._history_mask
        row_bits = self._row_bits
        row = 0
        if row_bits:
            value = (address >> 1) ^ (history * 0x5BD1) ^ (history >> row_bits)
            fold_mask = self._row_fold_mask
            while value:
                row ^= value & fold_mask
                value >>= row_bits
        if not self._mirror_valid[row]:
            # Empty row: no lane can match, the tag fold never matters.
            return None
        value = (address >> 3) ^ (history * 0xC2B2) ^ (address << 2)
        tag = 0
        tag_bits = self._tag_bits
        fold_mask = self._tag_fold_mask
        while value:
            tag ^= value & fold_mask
            value >>= tag_bits
        tags = self._mirror_tags[row]
        if tag not in tags:
            return None
        # First occurrence = lowest matching way, the object scan's pick.
        way = tags.index(tag)
        entry = self._table.row_ref(row)[way]
        self.hits += 1
        self._table.policy(row).touch(way)
        counter = entry.counter
        midpoint = (counter.maximum + 1) // 2
        value = counter.value
        return TableLookup(
            table=self.name, row=row, way=way, tag=tag, entry=entry,
            taken=value >= midpoint,
            weak=value in (midpoint - 1, midpoint),
        )

    def install(self, address: int, gpv_snapshot: int, taken: bool) -> bool:
        installed = super().install(address, gpv_snapshot, taken)
        if installed:
            self._resync_row(self.index_of(address, gpv_snapshot))
        return installed

    def corrupt(self, rng) -> Optional[Corruption]:
        corruption = super().corrupt(rng)
        if corruption is None:
            return None
        row = _location_row(corruption)
        self._resync_row(row)
        inner = corruption.invalidate
        def _invalidate(inner=inner, resync=self._resync_row, row=row):
            inner()
            resync(row)
        corruption.invalidate = _invalidate
        return corruption

    def audit(self) -> list:
        violations = super().audit()
        lanes = self._lanes
        mirrored = 0
        for row, way, entry in self._table:
            where = f"tage-{self.name}[row={row},way={way}]"
            if not lanes.is_valid(row, way):
                violations.append(f"{where} live entry missing from mirror")
            elif lanes.way_tag(row, way) != entry.tag:
                violations.append(
                    f"{where} mirror tag {lanes.way_tag(row, way)} != "
                    f"entry tag {entry.tag}"
                )
            mirrored += 1
        stale = lanes.valid_count() - mirrored
        if stale:
            violations.append(
                f"tage-{self.name} mirror holds {stale} valid lane(s) "
                "with no entry"
            )
        return violations


class ArrayTagePht(TagePht):
    """The PHT subsystem built over :class:`_ArrayTageTable` tables."""

    table_class = _ArrayTageTable


class ArrayPerceptron(Perceptron):
    """The perceptron array over flat contiguous weight buffers.

    Storage is struct-of-arrays, one slot per ``(row, way)``: validity
    lives in a ``bytearray``, and the tag addresses, usefulness,
    protection, update-age counters and the weight/virtualisation-map
    matrices are flat buffers of ``slots`` (or ``slots * weight_count``)
    elements indexed by ``slot * weight_count + i`` — the memory layout
    a hardware weight SRAM would use.  The flat buffers are plain lists
    rather than ``array('i')``: under CPython an ``array`` read boxes a
    fresh int per access, which measurably loses to list indexing in the
    fused predict+train loops.  numpy (when present) materialises the
    matrices as ``(slots, weight_count)`` snapshots for bulk audits.
    All behaviour (fused predict+train, usefulness rules, protected
    replacement, 2:1 virtualisation, corruption) matches the object
    model bit for bit.
    """

    def __init__(self, config: PerceptronConfig, gpv_width: int):
        super().__init__(config, gpv_width)
        # The parent's object rows stay empty; all state lives here.
        self._rows = []
        slots = config.rows * config.ways
        self._slots = slots
        self._weight_count = config.weight_count
        self._valid = bytearray(slots)
        self._addresses = [0] * slots
        self._slot_usefulness = [0] * slots
        self._protection = [0] * slots
        self._updates_seen = [0] * slots
        self._weights = [0] * (slots * config.weight_count)
        self._mapping = [0] * (slots * config.weight_count)
        #: Bumped on every (re)install so corruption-recovery closures
        #: can tell "same slot, different occupant" apart.
        self._slot_generation = [0] * slots
        self._zero_weights = [0] * config.weight_count
        self._fresh_mapping = list(self._initial_mapping())

    # -- numpy bulk views (snapshots; None without numpy) --------------

    def weights_view(self):
        """``(slots, weight_count)`` int snapshot of the weight matrix."""
        if _np is None:
            return None
        return _np.asarray(self._weights, dtype=_np.intc).reshape(
            self._slots, self._weight_count
        )

    def mapping_view(self):
        """``(slots, weight_count)`` int snapshot of the virtualisation
        map."""
        if _np is None:
            return None
        return _np.asarray(self._mapping, dtype=_np.intc).reshape(
            self._slots, self._weight_count
        )

    # -- prediction ----------------------------------------------------

    def lookup(self, address: int, gpv) -> PerceptronLookup:
        if not self.enabled:
            return PerceptronLookup(hit=False)
        self.lookups += 1
        row = self._row_fold(address >> 1) % self.config.rows
        gpv_bits = gpv.snapshot()
        ways = self.config.ways
        base = row * ways
        valid = self._valid
        addresses = self._addresses
        for way in range(ways):
            slot = base + way
            if valid[slot] and addresses[slot] == address:
                self.hits += 1
                useful = (
                    self._slot_usefulness[slot]
                    >= self.config.provider_threshold
                )
                if useful:
                    self.provider_hits += 1
                weights = self._weights
                mapping = self._mapping
                start = slot * self._weight_count
                total = 0
                for index in range(start, start + self._weight_count):
                    if (gpv_bits >> mapping[index]) & 1:
                        total += weights[index]
                    else:
                        total -= weights[index]
                return PerceptronLookup(
                    hit=True,
                    row=row,
                    way=way,
                    address=address,
                    taken=total >= 0,
                    useful=useful,
                    gpv_bits=gpv_bits,
                )
        return PerceptronLookup(hit=False, row=row, gpv_bits=gpv_bits)

    # -- training ------------------------------------------------------

    def update(self, lookup: PerceptronLookup, actual_taken: bool,
               alternate_taken: Optional[bool]) -> None:
        if not self.enabled or not lookup.hit:
            return
        slot = lookup.row * self.config.ways + lookup.way
        if not self._valid[slot] or self._addresses[slot] != lookup.address:
            return
        gpv_value = lookup.gpv_bits
        limit = self.config.weight_limit
        floor = -limit
        weights = self._weights
        mapping = self._mapping
        start = slot * self._weight_count
        total = 0
        for index in range(start, start + self._weight_count):
            weight = weights[index]
            if (gpv_value >> mapping[index]) & 1:
                total += weight
                strengthen = actual_taken
            else:
                total -= weight
                strengthen = not actual_taken
            if strengthen:
                if weight < limit:
                    weights[index] = weight + 1
            elif weight > floor:
                weights[index] = weight - 1
        perceptron_taken = total >= 0
        self._updates_seen[slot] += 1
        perceptron_correct = perceptron_taken == actual_taken
        if alternate_taken is not None:
            alternate_correct = alternate_taken == actual_taken
            usefulness = self._slot_usefulness[slot]
            if perceptron_correct and not alternate_correct:
                self._slot_usefulness[slot] = min(
                    usefulness + 1, (1 << self.config.usefulness_bits) - 1
                )
            elif not perceptron_correct and alternate_correct:
                self._slot_usefulness[slot] = max(usefulness - 1, 0)
            elif (
                not perceptron_correct
                and not alternate_correct
                and usefulness < self.config.learning_threshold
            ):
                self._slot_usefulness[slot] = usefulness + 1
        self._maybe_virtualize_slot(slot)

    def _maybe_virtualize_slot(self, slot: int) -> None:
        if self._updates_seen[slot] < self.config.virtualization_age:
            return
        threshold = self.config.virtualization_threshold
        gpv_width = self.gpv_width
        weights = self._weights
        mapping = self._mapping
        start = slot * self._weight_count
        for index in range(start, start + self._weight_count):
            if -threshold <= weights[index] <= threshold:
                mapping[index] = (mapping[index] + 1) % gpv_width
                weights[index] = 0
                self.virtualizations += 1
        self._updates_seen[slot] = 0

    # -- replacement ---------------------------------------------------

    def install(self, address: int) -> bool:
        if not self.enabled:
            return False
        row = self.row_of(address)
        ways = self.config.ways
        base = row * ways
        valid = self._valid
        addresses = self._addresses
        for way in range(ways):
            slot = base + way
            if valid[slot] and addresses[slot] == address:
                return False  # already present
        for way in range(ways):
            slot = base + way
            if not valid[slot]:
                self._write_fresh(slot, address)
                self.installs += 1
                return True
        replaceable = [
            (self._slot_usefulness[base + way], way)
            for way in range(ways)
            if self._protection[base + way] == 0
        ]
        if replaceable:
            _, way = min(replaceable)
            self._write_fresh(base + way, address)
            self.installs += 1
            return True
        protection = self._protection
        for way in range(ways):
            protection[base + way] -= 1
        self.install_rejects += 1
        return False

    def _write_fresh(self, slot: int, address: int) -> None:
        self._valid[slot] = 1
        self._addresses[slot] = address
        self._slot_usefulness[slot] = 0
        self._protection[slot] = self.config.protection_limit
        self._updates_seen[slot] = 0
        start = slot * self._weight_count
        end = start + self._weight_count
        self._weights[start:end] = self._zero_weights
        self._mapping[start:end] = self._fresh_mapping
        self._slot_generation[slot] += 1

    # -- introspection -------------------------------------------------

    @property
    def occupancy(self) -> int:
        return sum(self._valid)

    # -- fault-injection & audit hooks ---------------------------------

    def corrupt(self, rng) -> Optional[Corruption]:
        ways = self.config.ways
        victims = [
            (slot // ways, slot % ways, slot)
            for slot in range(self._slots)
            if self._valid[slot]
        ]
        if not victims:
            return None
        row, way, slot = rng.choice(victims)
        field = rng.choice(("weight", "usefulness", "mapping"))
        limit = self.config.weight_limit
        count = self._weight_count
        if field == "weight":
            index = rng.randint(0, count - 1)
            flat = slot * count + index
            old = self._weights[flat]
            new = rng.randint(-limit, limit)
            if new == old:
                new = -old if old != 0 else limit
            self._weights[flat] = new
            bits = flipped_bits(old + limit, new + limit)
            field = f"weight[{index}]"
        elif field == "usefulness":
            maximum = (1 << self.config.usefulness_bits) - 1
            old = self._slot_usefulness[slot]
            self._slot_usefulness[slot] = old ^ rng.randint(1, maximum)
            bits = flipped_bits(old, self._slot_usefulness[slot])
        else:
            index = rng.randint(0, count - 1)
            flat = slot * count + index
            old = self._mapping[flat]
            new = rng.randint(0, self.gpv_width - 1)
            if new == old:
                new = self._alternate_bit(index, old)
            self._mapping[flat] = new
            bits = max(1, flipped_bits(old, new))
            field = f"mapping[{index}]"
        generation = self._slot_generation[slot]

        def _invalidate(self=self, slot=slot, generation=generation):
            if self._valid[slot] and self._slot_generation[slot] == generation:
                self._valid[slot] = 0

        return Corruption(
            component="perceptron",
            location=f"row={row},way={way}",
            field=field,
            bits_flipped=bits,
            invalidate=_invalidate,
        )

    def audit(self) -> List[str]:
        limit = self.config.weight_limit
        usefulness_max = (1 << self.config.usefulness_bits) - 1
        if _np is not None:
            # Whole-matrix screen first: when every buffer is in range —
            # the overwhelmingly common case — no per-slot Python loop
            # runs at all.  Invalid slots hold stale-but-legal values
            # (nothing mutates them), so a clean full-buffer screen
            # proves the valid slots clean too.
            weights = self.weights_view()
            mapping = self.mapping_view()
            usefulness = _np.asarray(self._slot_usefulness, dtype=_np.intc)
            protection = _np.asarray(self._protection, dtype=_np.intc)
            clean = (
                bool((_np.abs(weights) <= limit).all())
                and bool((mapping >= 0).all())
                and bool((mapping < self.gpv_width).all())
                and bool((usefulness >= 0).all())
                and bool((usefulness <= usefulness_max).all())
                and bool((protection >= 0).all())
            )
            if clean:
                return []
        violations: List[str] = []
        count = self._weight_count
        ways = self.config.ways
        for slot in range(self._slots):
            if not self._valid[slot]:
                continue
            where = f"perceptron[row={slot // ways},way={slot % ways}]"
            start = slot * count
            for index in range(count):
                weight = self._weights[start + index]
                if not -limit <= weight <= limit:
                    violations.append(
                        f"{where} weight[{index}] {weight} outside "
                        f"[-{limit}, {limit}]"
                    )
                bit_index = self._mapping[start + index]
                if not 0 <= bit_index < self.gpv_width:
                    violations.append(
                        f"{where} mapping[{index}] {bit_index} outside "
                        f"the {self.gpv_width}-bit GPV"
                    )
            if not 0 <= self._slot_usefulness[slot] <= usefulness_max:
                violations.append(
                    f"{where} usefulness {self._slot_usefulness[slot]} "
                    f"outside [0, {usefulness_max}]"
                )
            if self._protection[slot] < 0:
                violations.append(
                    f"{where} protection {self._protection[slot]} negative"
                )
        return violations
