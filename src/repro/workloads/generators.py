"""Parameterised program generators.

These produce the synthetic equivalents of the paper's workload classes:
compute-intensive loop kernels, call/return-heavy code, multi-target
indirect dispatch, and the LSPR-like large-instruction-footprint
transaction mixes the paper's design targets (branch roughly every 4
instructions, ~5-byte average instruction length, large amounts of warm
code — sections I-II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.rng import DeterministicRng
from repro.isa.instructions import BranchKind
from repro.workloads.behaviors import (
    AlwaysTaken,
    BiasedRandom,
    Call,
    Correlated,
    IndirectCycle,
    IndirectRandom,
    Loop,
    Pattern,
    Return,
)
from repro.workloads.program import CodeBuilder, Program


@dataclass
class GeneratorReport:
    """What a generator built (used by benchmark tables)."""

    program: Program
    description: str
    static_branches: int
    footprint_bytes: int


def loop_nest_program(
    depths: Sequence[int] = (100, 10),
    body_instructions: int = 6,
    start: int = 0x10000,
    name: str = "loop-nest",
) -> Program:
    """Nested counted loops — the compute-intensive kernel shape.

    ``depths`` gives trip counts outermost-first.  Every loop-closing
    branch is a LOOP_RELATIVE branch with a :class:`Loop` behaviour, the
    paper's quintessential PHT case (section V).
    """
    builder = CodeBuilder(start, name=name)
    heads = []
    for _ in depths:
        heads.append(builder.label())
        builder.straight(body_instructions)
    # Close the loops innermost-first.
    for trip_count, head in zip(reversed(depths), reversed(heads)):
        builder.branch(
            BranchKind.LOOP_RELATIVE,
            target=head,
            behavior=Loop(trip_count),
        )
    # Restart the whole nest so the program runs forever.
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=heads[0],
                   behavior=AlwaysTaken())
    return builder.build()


def pattern_program(
    patterns: Sequence[Sequence[bool]],
    start: int = 0x20000,
    filler: int = 4,
    name: str = "patterns",
) -> Program:
    """A chain of pattern-driven conditional branches in one big loop.

    Each conditional follows its own cyclic taken/not-taken pattern;
    taken goes to a local skip target (if/then shape).  Exercises the
    TAGE PHT's path-history learning.
    """
    builder = CodeBuilder(start, name=name)
    top = builder.label("top")
    for pattern in patterns:
        skip = builder.forward_label("skip")
        builder.branch(
            BranchKind.CONDITIONAL_RELATIVE,
            target=skip,
            behavior=Pattern(pattern),
        )
        builder.straight(filler)
        builder.bind(skip)
        builder.straight(2)
    builder.branch(
        BranchKind.UNCONDITIONAL_RELATIVE, target=top, behavior=AlwaysTaken()
    )
    return builder.build()


def call_return_program(
    caller_count: int = 8,
    functions: int = 2,
    function_body: int = 8,
    call_distance: int = 0x4000,
    start: int = 0x30000,
    name: str = "call-return",
) -> Program:
    """Call/return idioms without architected call/return instructions.

    ``caller_count`` call sites share ``functions`` far-away functions
    (farther than the CRS distance threshold), each ending in an
    indirect return through the shadow stack.  The shared-function
    return is the quintessential changing-target branch (section VI);
    the distance makes the CRS heuristic applicable.
    """
    builder = CodeBuilder(start, name=name)
    # Lay the functions out first, far from the callers.
    function_labels = []
    for index in range(functions):
        label = builder.label(f"fn{index}")
        function_labels.append(label)
        builder.straight(function_body)
        builder.branch(BranchKind.UNCONDITIONAL_INDIRECT, behavior=Return())
        builder.gap(0x100)
    builder.jump_to(start + call_distance)
    top = builder.label("top")
    for index in range(caller_count):
        builder.straight(3)
        builder.branch(
            BranchKind.UNCONDITIONAL_RELATIVE,
            target=function_labels[index % functions],
            behavior=Call(),
        )
        builder.straight(2)
    builder.branch(
        BranchKind.UNCONDITIONAL_RELATIVE, target=top, behavior=AlwaysTaken()
    )
    return builder.build(entry_point=top.resolve())


def noisy_call_return_program(
    caller_count: int = 12,
    functions: int = 2,
    noise_branches: int = 6,
    start: int = 0x30000,
    name: str = "noisy-services",
) -> Program:
    """Call/return idioms with unpredictable noise inside the functions.

    The 50/50 conditionals scramble the GPV between each call and its
    return, so the GPV-indexed CTB cannot learn the return targets —
    only the call/return stack (whose checkpointed NSIA survives the
    noise mispredicts) can.  This is the CRS's unique niche; compare
    :func:`call_return_program`, whose clean paths the CTB also covers.
    """
    builder = CodeBuilder(start, name=name)
    function_labels = []
    for index in range(functions):
        label = builder.label(f"fn{index}")
        function_labels.append(label)
        for _ in range(noise_branches):
            skip = builder.forward_label()
            builder.branch(
                BranchKind.CONDITIONAL_RELATIVE,
                target=skip,
                behavior=BiasedRandom(0.5),
            )
            builder.straight(1)
            builder.bind(skip)
        builder.branch(BranchKind.UNCONDITIONAL_INDIRECT, behavior=Return())
        builder.gap(0x100)
    builder.jump_to(start + 0x8000)
    top = builder.label("top")
    for index in range(caller_count):
        builder.straight(2)
        builder.branch(
            BranchKind.UNCONDITIONAL_RELATIVE,
            target=function_labels[index % functions],
            behavior=Call(),
        )
        builder.straight(1)
    builder.branch(
        BranchKind.UNCONDITIONAL_RELATIVE, target=top, behavior=AlwaysTaken()
    )
    return builder.build(entry_point=top.resolve())


def indirect_dispatch_program(
    handler_count: int = 8,
    handler_body: int = 6,
    cycle: bool = True,
    start: int = 0x40000,
    name: str = "indirect-dispatch",
) -> Program:
    """A dispatcher loop with one multi-target indirect branch.

    With ``cycle=True`` the targets rotate deterministically (path-
    correlated — the CTB can learn them); with ``cycle=False`` they are
    random (no predictor can)."""
    builder = CodeBuilder(start, name=name)
    top = builder.label("top")
    builder.straight(4)
    dispatch_site = builder.forward_label("dispatch")
    builder.bind(dispatch_site)
    # Handler addresses are only known after layout; patch afterwards.
    placeholder = builder.branch(BranchKind.UNCONDITIONAL_INDIRECT, behavior=None)
    handler_labels = []
    for index in range(handler_count):
        builder.gap(0x40)
        handler_labels.append(builder.label(f"handler{index}"))
        builder.straight(handler_body)
        builder.branch(
            BranchKind.UNCONDITIONAL_RELATIVE, target=top, behavior=AlwaysTaken()
        )
    program = builder.build()
    targets = [label.resolve() for label in handler_labels]
    behavior = IndirectCycle(targets) if cycle else IndirectRandom(targets)
    program.behaviors[placeholder] = behavior
    return program


def correlated_program(
    pair_count: int = 4,
    start: int = 0x50000,
    name: str = "correlated",
) -> Program:
    """Branches whose directions are pure functions of prior outcomes.

    Each "consumer" conditional repeats the parity of recent history the
    "producer" branches created — invisible to a per-branch BHT, visible
    to GPV-indexed predictors.
    """
    builder = CodeBuilder(start, name=name)
    top = builder.label("top")
    for index in range(pair_count):
        skip_a = builder.forward_label()
        builder.branch(
            BranchKind.CONDITIONAL_RELATIVE,
            target=skip_a,
            behavior=Pattern([True, False] if index % 2 else [True, True, False]),
        )
        builder.straight(2)
        builder.bind(skip_a)
        skip_b = builder.forward_label()
        builder.branch(
            BranchKind.CONDITIONAL_RELATIVE,
            target=skip_b,
            behavior=Correlated(history_bits=[0, 1]),
        )
        builder.straight(2)
        builder.bind(skip_b)
    builder.branch(
        BranchKind.UNCONDITIONAL_RELATIVE, target=top, behavior=AlwaysTaken()
    )
    return builder.build()


def _conditional_behavior(rng: DeterministicRng, taken_bias: float,
                          deterministic_fraction: float) -> "object":
    """A conditional-branch behaviour for generated code.

    Real branch populations are dominated by *heavily biased* branches —
    loop guards, error checks, mode tests — that go one way except for a
    rare periodic exception; only a small fraction are data-dependent
    noise.  ``taken_bias`` is the probability the dominant direction is
    taken; ``deterministic_fraction`` of sites get the biased-with-
    exception cyclic pattern (the BHT gets the dominant direction right,
    path predictors can learn the exception), the rest are biased random.
    """
    dominant_taken = rng.chance(taken_bias)
    if rng.chance(deterministic_fraction):
        period = rng.randint(5, 12)
        pattern = [dominant_taken] * (period - 1) + [not dominant_taken]
        return Pattern(pattern)
    probability = 0.85 if dominant_taken else 0.15
    return BiasedRandom(probability)


def deep_history_program(
    noise_depth: int = 12,
    pairs: int = 2,
    start: int = 0x60000,
    name: str = "deep-history",
) -> Program:
    """Branches whose correlation sits deeper than 9 taken branches.

    A producer branch runs a [T, F] pattern; ``noise_depth`` always-taken
    jumps execute before a consumer branch that repeats the producer's
    outcome.  A 9-taken-branch history window (z13/z14 PHT) sees only the
    noise jumps and cannot separate the phases; the z15 long TAGE table
    (17 branches) and the perceptron (17 virtualised GPV weights) can.
    """
    if noise_depth < 1 or noise_depth > 15:
        raise ValueError("noise_depth must be in [1, 15]")
    builder = CodeBuilder(start, name=name)
    top = builder.label("top")
    for pair in range(pairs):
        skip_producer = builder.forward_label()
        builder.branch(
            BranchKind.CONDITIONAL_RELATIVE,
            target=skip_producer,
            behavior=Pattern([True, False]),
        )
        builder.straight(1)
        builder.bind(skip_producer)
        # Noise: a chain of always-taken jumps filling the short history.
        for _ in range(noise_depth):
            next_link = builder.forward_label()
            builder.branch(
                BranchKind.UNCONDITIONAL_RELATIVE,
                target=next_link,
                behavior=AlwaysTaken(),
            )
            builder.gap(0x20)
            builder.bind(next_link)
            builder.straight(1)
        skip_consumer = builder.forward_label()
        builder.branch(
            BranchKind.CONDITIONAL_RELATIVE,
            target=skip_consumer,
            behavior=Correlated(history_bits=[noise_depth]),
        )
        builder.straight(1)
        builder.bind(skip_consumer)
    builder.branch(
        BranchKind.UNCONDITIONAL_RELATIVE, target=top, behavior=AlwaysTaken()
    )
    return builder.build(entry_point=top.resolve())


def deep_xor_program(
    noise_depth: int = 10,
    start: int = 0x70000,
    name: str = "deep-xor",
) -> Program:
    """A deep, linearly-inseparable correlation: XOR of two producers.

    Two producer branches run offset [T, F] patterns; after a chain of
    always-taken noise jumps a consumer branch takes the XOR of the two
    producer outcomes.  A perceptron (linear in GPV bits) cannot learn
    XOR; a long-history *tagged table* (the z15 long TAGE PHT) can,
    because each joint producer phase maps to a distinct GPV context.
    """
    builder = CodeBuilder(start, name=name)
    top = builder.label("top")
    skip_a = builder.forward_label()
    builder.branch(
        BranchKind.CONDITIONAL_RELATIVE,
        target=skip_a,
        behavior=Pattern([True, False]),
    )
    builder.straight(1)
    builder.bind(skip_a)
    skip_b = builder.forward_label()
    builder.branch(
        BranchKind.CONDITIONAL_RELATIVE,
        target=skip_b,
        behavior=Pattern([True, True, False, False]),
    )
    builder.straight(1)
    builder.bind(skip_b)
    for _ in range(noise_depth):
        next_link = builder.forward_label()
        builder.branch(
            BranchKind.UNCONDITIONAL_RELATIVE,
            target=next_link,
            behavior=AlwaysTaken(),
        )
        builder.gap(0x20)
        builder.bind(next_link)
        builder.straight(1)
    skip_consumer = builder.forward_label()
    builder.branch(
        BranchKind.CONDITIONAL_RELATIVE,
        target=skip_consumer,
        # XOR of the two producers, noise_depth and noise_depth+1 back.
        behavior=Correlated(history_bits=[noise_depth, noise_depth + 1]),
    )
    builder.straight(1)
    builder.bind(skip_consumer)
    builder.branch(
        BranchKind.UNCONDITIONAL_RELATIVE, target=top, behavior=AlwaysTaken()
    )
    return builder.build(entry_point=top.resolve())


def large_footprint_program(
    block_count: int = 2048,
    seed: int = 7,
    taken_bias: float = 0.25,
    block_spread_bytes: int = 0,
    loop_fraction: float = 0.1,
    deterministic_fraction: float = 0.8,
    start: int = 0x100000,
    name: str = "large-footprint",
) -> Program:
    """The LSPR-like shape: a large ring of basic blocks.

    Each block is ~12 instructions of mixed length with two conditional
    branches (if/then skips, mostly not taken) and an unconditional jump
    to the next block in a shuffled order, producing far jumps across a
    footprint of roughly ``block_count * 64`` bytes (plus optional
    spread).  ``loop_fraction`` of the blocks self-loop a few times
    before moving on, creating warm inner code.

    The resulting statistics match the paper's workload sketch: a branch
    every ~4 instructions, average instruction length ~5 bytes, about
    half the installed branches predicted taken.
    """
    rng = DeterministicRng(seed).fork(name)
    builder = CodeBuilder(start, name=name)
    entries: List = []
    bodies: List[dict] = []
    for index in range(block_count):
        entry = builder.label(f"block{index}")
        entries.append(entry)
        body: dict = {"entry": entry}
        builder.straight_mixed(3, rng)
        skip_one = builder.forward_label()
        builder.branch(
            BranchKind.CONDITIONAL_RELATIVE,
            target=skip_one,
            behavior=_conditional_behavior(rng, taken_bias,
                                           deterministic_fraction),
        )
        builder.straight_mixed(2, rng)
        builder.bind(skip_one)
        builder.straight_mixed(2, rng)
        skip_two = builder.forward_label()
        builder.branch(
            BranchKind.CONDITIONAL_RELATIVE,
            target=skip_two,
            behavior=_conditional_behavior(rng, taken_bias / 2,
                                           deterministic_fraction),
        )
        builder.straight_mixed(1, rng)
        builder.bind(skip_two)
        if rng.chance(loop_fraction):
            builder.branch(
                BranchKind.LOOP_RELATIVE,
                target=entry,
                behavior=Loop(rng.randint(2, 6)),
            )
        body["exit_site"] = builder.branch(
            BranchKind.UNCONDITIONAL_RELATIVE,
            target=entry,  # placeholder, rewired below
            behavior=AlwaysTaken(),
        )
        bodies.append(body)
        if block_spread_bytes:
            builder.gap(block_spread_bytes)
    program = builder.build()
    # Rewire the exits into one shuffled ring covering every block.
    order = list(range(block_count))
    rng.shuffle(order)
    successor = {}
    for position, block in enumerate(order):
        successor[block] = order[(position + 1) % block_count]
    for index, body in enumerate(bodies):
        exit_address = body["exit_site"]
        next_entry = entries[successor[index]].resolve()
        old = program.instructions[exit_address]
        program.instructions[exit_address] = old.__class__(
            address=old.address,
            length=old.length,
            kind=old.kind,
            static_target=next_entry,
        )
    program.entry_point = entries[order[0]].resolve()
    program.validate()
    return program


def transaction_workload(
    transaction_types: int = 8,
    blocks_per_transaction: int = 32,
    shared_helpers: int = 4,
    seed: int = 11,
    start: int = 0x200000,
    name: str = "transactions",
) -> Program:
    """An LSPR-flavoured online-transaction mix.

    A dispatcher loop indirect-branches to one of ``transaction_types``
    handlers (deterministic rotation — a learnable changing-target
    branch); each handler walks its own run of basic blocks with
    biased conditionals and calls far-away shared helper functions
    (call/return idioms + multi-target returns), then jumps back to the
    dispatcher.
    """
    rng = DeterministicRng(seed).fork(name)
    builder = CodeBuilder(start, name=name)

    # Shared helpers, laid out first (far from everything else).
    helper_labels = []
    for index in range(shared_helpers):
        label = builder.label(f"helper{index}")
        helper_labels.append(label)
        builder.straight_mixed(6, rng)
        skip = builder.forward_label()
        builder.branch(
            BranchKind.CONDITIONAL_RELATIVE,
            target=skip,
            behavior=BiasedRandom(0.2),
        )
        builder.straight_mixed(2, rng)
        builder.bind(skip)
        builder.branch(BranchKind.UNCONDITIONAL_INDIRECT, behavior=Return())
        builder.gap(0x200)

    builder.gap(0x2000)
    dispatcher = builder.label("dispatcher")
    builder.straight_mixed(4, rng)
    dispatch_site = builder.branch(BranchKind.UNCONDITIONAL_INDIRECT, behavior=None)

    handler_labels = []
    for txn in range(transaction_types):
        builder.gap(0x800)
        handler_labels.append(builder.label(f"txn{txn}"))
        for block in range(blocks_per_transaction):
            builder.straight_mixed(3, rng)
            skip = builder.forward_label()
            builder.branch(
                BranchKind.CONDITIONAL_RELATIVE,
                target=skip,
                behavior=_conditional_behavior(rng, rng.random() * 0.4, 0.8),
            )
            builder.straight_mixed(2, rng)
            builder.bind(skip)
            if block % 8 == 3:
                builder.branch(
                    BranchKind.UNCONDITIONAL_RELATIVE,
                    target=helper_labels[(txn + block) % shared_helpers],
                    behavior=Call(),
                )
                builder.straight_mixed(1, rng)
            if block % 8 == 6:
                loop_head = builder.label()
                builder.straight_mixed(2, rng)
                builder.branch(
                    BranchKind.LOOP_RELATIVE,
                    target=loop_head,
                    behavior=Loop(rng.randint(2, 8)),
                )
        builder.branch(
            BranchKind.UNCONDITIONAL_RELATIVE,
            target=dispatcher,
            behavior=AlwaysTaken(),
        )
    program = builder.build()
    program.behaviors[dispatch_site] = IndirectCycle(
        [label.resolve() for label in handler_labels]
    )
    program.entry_point = dispatcher.resolve()
    program.validate()
    return program
