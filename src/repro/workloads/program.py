"""Static program images.

A :class:`Program` is a set of instructions laid out at concrete
addresses plus, for each branch, a *behaviour* object that decides its
dynamic outcome at execution time.  Programs are built either directly
or through :class:`CodeBuilder`, a tiny assembler with labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.isa.instructions import BranchKind, Instruction


class Label:
    """A forward-referencable code position."""

    def __init__(self, name: str = ""):
        self.name = name
        self.address: Optional[int] = None

    def bind(self, address: int) -> None:
        if self.address is not None:
            raise SimulationError(f"label {self.name!r} bound twice")
        self.address = address

    def resolve(self) -> int:
        if self.address is None:
            raise SimulationError(f"label {self.name!r} was never bound")
        return self.address

    def __repr__(self) -> str:
        return f"Label({self.name!r}, address={self.address})"


@dataclass
class Program:
    """An executable image: instructions by address plus branch behaviours."""

    instructions: Dict[int, Instruction] = field(default_factory=dict)
    behaviors: Dict[int, object] = field(default_factory=dict)
    entry_point: int = 0
    name: str = "program"

    def add(self, instruction: Instruction, behavior: object = None) -> Instruction:
        if instruction.address in self.instructions:
            raise SimulationError(
                f"two instructions at {instruction.address:#x} in {self.name}"
            )
        self.instructions[instruction.address] = instruction
        if behavior is not None:
            if not instruction.is_branch:
                raise SimulationError("behaviour attached to a non-branch")
            self.behaviors[instruction.address] = behavior
        return instruction

    def at(self, address: int) -> Instruction:
        try:
            return self.instructions[address]
        except KeyError:
            raise SimulationError(
                f"{self.name}: no instruction at {address:#x} "
                "(bad control transfer)"
            ) from None

    def has_instruction_at(self, address: int) -> bool:
        return address in self.instructions

    def behavior_of(self, instruction: Instruction) -> object:
        behavior = self.behaviors.get(instruction.address)
        if behavior is None and instruction.is_branch:
            raise SimulationError(
                f"{self.name}: branch at {instruction.address:#x} has no behaviour"
            )
        return behavior

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)

    @property
    def branch_count(self) -> int:
        return sum(1 for insn in self.instructions.values() if insn.is_branch)

    def footprint_bytes(self) -> int:
        """Bytes spanned from the lowest to highest instruction."""
        if not self.instructions:
            return 0
        lowest = min(self.instructions)
        highest_insn = self.instructions[max(self.instructions)]
        return highest_insn.end_address - lowest

    def validate(self) -> None:
        """Check layout sanity: no overlapping instructions."""
        addresses = sorted(self.instructions)
        for earlier, later in zip(addresses, addresses[1:]):
            if self.instructions[earlier].end_address > later:
                raise SimulationError(
                    f"{self.name}: instructions at {earlier:#x} and "
                    f"{later:#x} overlap"
                )


class CodeBuilder:
    """Sequentially lays out instructions, with labels and gaps.

    The builder keeps a byte cursor; ``straight`` emits filler (non-
    branch) instructions, ``branch`` emits a branch (optionally to a
    not-yet-bound label, fixed up at :meth:`build` time), ``gap`` skips
    address space (cold bytes / padding) and ``align`` rounds the cursor
    up.
    """

    def __init__(self, start: int = 0x1000, name: str = "program"):
        if start % 2:
            raise ValueError("start address must be halfword aligned")
        self.cursor = start
        self.start = start
        self._placed: List[dict] = []
        self.name = name

    def here(self) -> int:
        return self.cursor

    def label(self, name: str = "") -> Label:
        """Create and immediately bind a label at the cursor."""
        label = Label(name)
        label.bind(self.cursor)
        return label

    def forward_label(self, name: str = "") -> Label:
        """Create an unbound label to be bound later via :meth:`bind`."""
        return Label(name)

    def bind(self, label: Label) -> Label:
        label.bind(self.cursor)
        return label

    def straight(self, count: int, length: int = 4) -> "CodeBuilder":
        """Emit *count* non-branch instructions of the given length."""
        for _ in range(count):
            self._placed.append(
                {"address": self.cursor, "length": length, "kind": BranchKind.NONE}
            )
            self.cursor += length
        return self

    def straight_mixed(self, count: int, rng) -> "CodeBuilder":
        """Emit filler with the z mix: 2/4/6-byte instructions averaging
        ~5 bytes (weights chosen to match the paper's "average length of
        approximately 5 bytes")."""
        for _ in range(count):
            length = rng.weighted_choice((2, 4, 6), (0.15, 0.35, 0.50))
            self._placed.append(
                {"address": self.cursor, "length": length, "kind": BranchKind.NONE}
            )
            self.cursor += length
        return self

    def branch(
        self,
        kind: BranchKind,
        target=None,
        behavior: object = None,
        length: int = 4,
    ) -> int:
        """Emit a branch; returns its address.  *target* may be an int,
        a (possibly unbound) :class:`Label`, or None for indirects."""
        address = self.cursor
        self._placed.append(
            {
                "address": address,
                "length": length,
                "kind": kind,
                "target": target,
                "behavior": behavior,
            }
        )
        self.cursor += length
        return address

    def gap(self, size_bytes: int) -> "CodeBuilder":
        """Skip cold address space."""
        if size_bytes < 0 or size_bytes % 2:
            raise ValueError("gap must be a non-negative even byte count")
        self.cursor += size_bytes
        return self

    def align(self, alignment: int) -> "CodeBuilder":
        remainder = self.cursor % alignment
        if remainder:
            self.cursor += alignment - remainder
        return self

    def jump_to(self, address: int) -> "CodeBuilder":
        """Move the cursor to a fresh region (must not go backwards over
        placed code; overlap is caught at build time anyway)."""
        if address % 2:
            raise ValueError("cursor address must be halfword aligned")
        self.cursor = address
        return self

    def build(self, entry_point: Optional[int] = None) -> Program:
        """Resolve labels and materialise the :class:`Program`."""
        program = Program(entry_point=entry_point or self.start, name=self.name)
        for item in self._placed:
            kind = item["kind"]
            if kind is BranchKind.NONE:
                program.add(
                    Instruction(address=item["address"], length=item["length"])
                )
                continue
            target = item.get("target")
            if isinstance(target, Label):
                target = target.resolve()
            program.add(
                Instruction(
                    address=item["address"],
                    length=item["length"],
                    kind=kind,
                    static_target=target,
                ),
                behavior=item.get("behavior"),
            )
        program.validate()
        return program
