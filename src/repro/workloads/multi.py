"""Multi-context and SMT workload composition.

Mainframe cores run SMT2 and virtualised, frequently context-switching
workloads; the BTB2's proactive context-switch priming (section III)
only matters when contexts actually change.  These helpers interleave
several executors into one event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Union

from repro.isa.dynamic import DynamicBranch
from repro.workloads.executor import Executor
from repro.workloads.program import Program


@dataclass(frozen=True)
class ContextSwitch:
    """Marker event: the following branches run in a new context."""

    context: int
    thread: int
    entry_point: int


Event = Union[DynamicBranch, ContextSwitch]


class Smt2Run:
    """Fine-grained two-thread SMT interleaving.

    Models an SMT2 core's resolved-path view: two threads' branches
    alternate (the hardware alternates the one search port every cycle,
    section IV), each thread keeping its own context id.  Sequence
    numbers are globally monotonic so shared structures (GPQ, tables)
    see a single completion order.
    """

    def __init__(
        self,
        program_a: Program,
        program_b: Program,
        seed: int = 1,
        interleave: int = 1,
    ):
        if interleave < 1:
            raise ValueError("interleave must be >= 1")
        self.interleave = interleave
        self._executors = [
            Executor(program_a, seed=seed, context_id=0, thread=0),
            Executor(program_b, seed=seed + 1, context_id=1, thread=1),
        ]
        self._sequence = 0

    @property
    def instructions_executed(self) -> int:
        return sum(executor.instructions_executed for executor in self._executors)

    def run(self, total_branches: int) -> Iterator[Event]:
        """Yield start markers then alternating branches."""
        for executor in self._executors:
            yield ContextSwitch(
                context=executor.context_id,
                thread=executor.thread,
                entry_point=executor.pc,
            )
        produced = 0
        index = 0
        while produced < total_branches:
            executor = self._executors[index % 2]
            index += 1
            emitted = 0
            while emitted < self.interleave and produced < total_branches:
                branch = executor.step()
                if branch is None:
                    continue
                branch = DynamicBranch(
                    sequence=self._sequence,
                    instruction=branch.instruction,
                    taken=branch.taken,
                    target=branch.target,
                    thread=branch.thread,
                    context=branch.context,
                )
                self._sequence += 1
                emitted += 1
                produced += 1
                yield branch


class InterleavedRun:
    """Round-robin interleaving of several programs as distinct contexts.

    Yields :class:`ContextSwitch` markers between quanta; branch
    sequence numbers stay globally monotonic so the predictor's GPQ
    ordering holds across switches.
    """

    def __init__(
        self,
        programs: Sequence[Program],
        quantum_branches: int = 2000,
        seed: int = 1,
        thread: int = 0,
    ):
        if not programs:
            raise ValueError("at least one program is required")
        if quantum_branches < 1:
            raise ValueError("quantum_branches must be >= 1")
        self.quantum_branches = quantum_branches
        self.thread = thread
        self._executors: List[Executor] = [
            Executor(
                program,
                seed=seed + index,
                context_id=index,
                thread=thread,
            )
            for index, program in enumerate(programs)
        ]
        self._sequence = 0

    @property
    def instructions_executed(self) -> int:
        return sum(executor.instructions_executed for executor in self._executors)

    @property
    def branches_executed(self) -> int:
        return sum(executor.branches_executed for executor in self._executors)

    def run(self, total_branches: int) -> Iterator[Event]:
        """Yield interleaved events until *total_branches* branches ran."""
        produced = 0
        index = 0
        while produced < total_branches:
            executor = self._executors[index % len(self._executors)]
            yield ContextSwitch(
                context=executor.context_id,
                thread=executor.thread,
                entry_point=executor.pc,
            )
            quantum = min(self.quantum_branches, total_branches - produced)
            emitted = 0
            while emitted < quantum:
                branch = executor.step()
                if branch is None:
                    continue
                # Re-sequence globally.
                branch = DynamicBranch(
                    sequence=self._sequence,
                    instruction=branch.instruction,
                    taken=branch.taken,
                    target=branch.target,
                    thread=branch.thread,
                    context=branch.context,
                )
                self._sequence += 1
                emitted += 1
                produced += 1
                yield branch
            index += 1
