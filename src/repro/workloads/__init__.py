"""Workload substrate: programs, behaviours, executors, generators.

The paper's evaluation runs proprietary LSPR workloads; this package
builds their synthetic equivalents — executable programs whose dynamic
branch statistics (branch density, instruction lengths, footprint,
pattern/call/indirect structure) match what the paper describes.
"""

from repro.workloads.behaviors import (
    AlwaysTaken,
    BiasedRandom,
    BranchBehavior,
    Call,
    Correlated,
    ExecutionContext,
    IndirectCycle,
    IndirectRandom,
    Loop,
    NeverTaken,
    Pattern,
    Return,
)
from repro.workloads.executor import Executor
from repro.workloads.generators import (
    call_return_program,
    correlated_program,
    deep_history_program,
    deep_xor_program,
    indirect_dispatch_program,
    large_footprint_program,
    loop_nest_program,
    noisy_call_return_program,
    pattern_program,
    transaction_workload,
)
from repro.workloads.multi import ContextSwitch, InterleavedRun, Smt2Run
from repro.workloads.program import CodeBuilder, Label, Program
from repro.workloads.suite import STANDARD_WORKLOADS, WorkloadSpec, get_workload
from repro.workloads.synthesis import (
    BranchProfile,
    clone_trace,
    profile_trace,
    synthesize_program,
)
from repro.workloads.trace import load_trace, read_trace, write_trace

__all__ = [
    "AlwaysTaken",
    "BiasedRandom",
    "BranchBehavior",
    "Call",
    "Correlated",
    "ExecutionContext",
    "IndirectCycle",
    "IndirectRandom",
    "Loop",
    "NeverTaken",
    "Pattern",
    "Return",
    "Executor",
    "call_return_program",
    "correlated_program",
    "deep_history_program",
    "deep_xor_program",
    "indirect_dispatch_program",
    "large_footprint_program",
    "loop_nest_program",
    "noisy_call_return_program",
    "pattern_program",
    "transaction_workload",
    "ContextSwitch",
    "InterleavedRun",
    "Smt2Run",
    "CodeBuilder",
    "Label",
    "Program",
    "STANDARD_WORKLOADS",
    "BranchProfile",
    "clone_trace",
    "profile_trace",
    "synthesize_program",
    "WorkloadSpec",
    "get_workload",
    "load_trace",
    "read_trace",
    "write_trace",
]
