"""The standard workload suite used by tests, examples and benchmarks.

Loosely mirrors the paper's workload taxonomy (section I-II): compute-
intensive kernels, call/return-heavy service code, changing-target
dispatch, and LSPR-like large-instruction-footprint transaction mixes at
several footprint sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.workloads.generators import (
    call_return_program,
    correlated_program,
    deep_history_program,
    deep_xor_program,
    indirect_dispatch_program,
    large_footprint_program,
    loop_nest_program,
    noisy_call_return_program,
    pattern_program,
    transaction_workload,
)
from repro.workloads.program import Program


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, reproducible workload."""

    name: str
    factory: Callable[[int], Program]
    description: str
    #: Suggested dynamic branch count for a representative run.
    suggested_branches: int = 50_000


def _compute_kernel(seed: int) -> Program:
    return loop_nest_program(depths=(50, 20, 5), body_instructions=8)


def _patterned(seed: int) -> Program:
    return pattern_program(
        patterns=[
            [True, True, False],
            [True, False],
            [True, True, True, False],
            [False, False, True],
        ]
    )


def _services(seed: int) -> Program:
    return call_return_program(caller_count=12, functions=3)


def _services_noisy(seed: int) -> Program:
    return noisy_call_return_program(caller_count=12, functions=2)


def _dispatch(seed: int) -> Program:
    return indirect_dispatch_program(handler_count=12, cycle=True)


def _correlated(seed: int) -> Program:
    return correlated_program(pair_count=6)


def _deep_history(seed: int) -> Program:
    return deep_history_program(noise_depth=12, pairs=2)


def _deep_xor(seed: int) -> Program:
    return deep_xor_program(noise_depth=10)


def _footprint_small(seed: int) -> Program:
    return large_footprint_program(block_count=256, seed=seed, name="footprint-small")


def _footprint_medium(seed: int) -> Program:
    return large_footprint_program(block_count=2048, seed=seed, name="footprint-medium")


def _footprint_large(seed: int) -> Program:
    return large_footprint_program(
        block_count=8192, seed=seed, name="footprint-large"
    )


def _transactions(seed: int) -> Program:
    return transaction_workload(
        transaction_types=8, blocks_per_transaction=32, seed=seed
    )


def _transactions_large(seed: int) -> Program:
    return transaction_workload(
        transaction_types=24,
        blocks_per_transaction=64,
        shared_helpers=8,
        seed=seed,
        name="transactions-large",
    )


#: Every standard workload by name.
STANDARD_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            "compute-kernel",
            _compute_kernel,
            "nested counted loops (compute intensive)",
            suggested_branches=20_000,
        ),
        WorkloadSpec(
            "patterned",
            _patterned,
            "cyclic taken/not-taken patterns (PHT food)",
            suggested_branches=20_000,
        ),
        WorkloadSpec(
            "services",
            _services,
            "call/return idioms over shared functions (CRS/CTB)",
            suggested_branches=20_000,
        ),
        WorkloadSpec(
            "services-noisy",
            _services_noisy,
            "call/return with noisy function bodies (CRS-only niche)",
            suggested_branches=20_000,
        ),
        WorkloadSpec(
            "dispatch",
            _dispatch,
            "multi-target indirect dispatch (CTB)",
            suggested_branches=20_000,
        ),
        WorkloadSpec(
            "correlated",
            _correlated,
            "outcome-correlated conditionals (TAGE/perceptron)",
            suggested_branches=20_000,
        ),
        WorkloadSpec(
            "deep-history",
            _deep_history,
            "correlations deeper than 9 taken branches (long TAGE / perceptron)",
            suggested_branches=20_000,
        ),
        WorkloadSpec(
            "deep-xor",
            _deep_xor,
            "XOR of two deep producers (linearly inseparable; long TAGE only)",
            suggested_branches=20_000,
        ),
        WorkloadSpec(
            "footprint-small",
            _footprint_small,
            "~256-block ring, fits the BTB1",
            suggested_branches=40_000,
        ),
        WorkloadSpec(
            "footprint-medium",
            _footprint_medium,
            "~2K-block ring, stresses BTB1 capacity",
            suggested_branches=60_000,
        ),
        WorkloadSpec(
            "footprint-large",
            _footprint_large,
            "~8K-block ring, needs the BTB2",
            suggested_branches=100_000,
        ),
        WorkloadSpec(
            "transactions",
            _transactions,
            "LSPR-like online transaction mix",
            suggested_branches=60_000,
        ),
        WorkloadSpec(
            "transactions-large",
            _transactions_large,
            "LSPR-like mix with a large instruction footprint",
            suggested_branches=100_000,
        ),
    ]
}


def get_workload(name: str, seed: int = 1) -> Program:
    """Build a standard workload by name."""
    try:
        spec = STANDARD_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(STANDARD_WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return spec.factory(seed)
