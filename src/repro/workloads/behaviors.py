"""Branch behaviour models.

A behaviour decides, per dynamic execution of its branch, whether the
branch is taken and (for indirect branches) where it goes.  Behaviours
receive an :class:`ExecutionContext` giving them the executor's shadow
call stack, the global outcome history (for correlated branches) and a
deterministic RNG.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.isa.instructions import Instruction


class ExecutionContext:
    """What the executor exposes to behaviours."""

    def __init__(self, rng: DeterministicRng, history_depth: int = 64):
        self.rng = rng
        #: Shadow call stack of return addresses (model bookkeeping).
        self.call_stack: List[int] = []
        #: Recent branch outcomes, newest last (True = taken).
        self.outcome_history: Deque[bool] = deque(maxlen=history_depth)
        #: Dynamic branch count so far.
        self.branches_executed = 0

    def record_outcome(self, taken: bool) -> None:
        self.outcome_history.append(taken)
        self.branches_executed += 1

    def recent_outcomes(self, count: int) -> Tuple[bool, ...]:
        """The last *count* outcomes, oldest first (padded with False)."""
        history = list(self.outcome_history)[-count:]
        padding = [False] * (count - len(history))
        return tuple(padding + history)


class BranchBehavior:
    """Base class: resolve one dynamic execution of a branch."""

    def resolve(
        self, instruction: Instruction, context: ExecutionContext
    ) -> Tuple[bool, Optional[int]]:
        """Return ``(taken, target)``; *target* is None when not taken,
        and must be the static target for relative branches."""
        raise NotImplementedError

    def _taken_target(self, instruction: Instruction) -> int:
        if instruction.static_target is None:
            raise SimulationError(
                f"behaviour for {instruction.address:#x} needs a static target"
            )
        return instruction.static_target


class AlwaysTaken(BranchBehavior):
    """Unconditional relative jumps."""

    def resolve(self, instruction, context):
        return True, self._taken_target(instruction)


class NeverTaken(BranchBehavior):
    """A conditional branch that never goes (dead guard)."""

    def resolve(self, instruction, context):
        return False, None


class Loop(BranchBehavior):
    """A loop-closing branch: taken ``trip_count - 1`` times, then not
    taken once, repeating.  The canonical PHT-predictable pattern."""

    def __init__(self, trip_count: int):
        if trip_count < 1:
            raise ValueError(f"trip_count must be >= 1, got {trip_count}")
        self.trip_count = trip_count
        self._iteration = 0

    def resolve(self, instruction, context):
        self._iteration += 1
        if self._iteration >= self.trip_count:
            self._iteration = 0
            return False, None
        return True, self._taken_target(instruction)


class Pattern(BranchBehavior):
    """A fixed cyclic taken/not-taken pattern."""

    def __init__(self, pattern: Sequence[bool]):
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = tuple(bool(p) for p in pattern)
        self._position = 0

    def resolve(self, instruction, context):
        taken = self.pattern[self._position]
        self._position = (self._position + 1) % len(self.pattern)
        if taken:
            return True, self._taken_target(instruction)
        return False, None


class BiasedRandom(BranchBehavior):
    """Taken with a fixed probability — data-dependent, hard to predict."""

    def __init__(self, taken_probability: float):
        if not 0.0 <= taken_probability <= 1.0:
            raise ValueError("taken_probability must be in [0, 1]")
        self.taken_probability = taken_probability

    def resolve(self, instruction, context):
        if context.rng.chance(self.taken_probability):
            return True, self._taken_target(instruction)
        return False, None


class Correlated(BranchBehavior):
    """Direction = parity of selected recent global outcomes.

    Exercises the path-history predictors: the direction is a pure
    function of prior branch outcomes, invisible to the BHT but
    learnable by the TAGE PHT / perceptron.
    """

    def __init__(self, history_bits: Sequence[int], invert: bool = False):
        if not history_bits:
            raise ValueError("history_bits must be non-empty")
        self.history_bits = tuple(history_bits)
        self.depth = max(history_bits) + 1
        self.invert = invert

    def resolve(self, instruction, context):
        recent = context.recent_outcomes(self.depth)
        parity = sum(recent[-1 - bit] for bit in self.history_bits) % 2
        taken = bool(parity) ^ self.invert
        if taken:
            return True, self._taken_target(instruction)
        return False, None


class Call(BranchBehavior):
    """A call-like branch: always taken to the function entry; pushes the
    return address (NSIA) onto the shadow stack."""

    def __init__(self, max_depth: int = 64):
        self.max_depth = max_depth

    def resolve(self, instruction, context):
        if len(context.call_stack) >= self.max_depth:
            raise SimulationError("shadow call stack overflow")
        context.call_stack.append(instruction.next_sequential)
        return True, self._taken_target(instruction)


class Return(BranchBehavior):
    """A return-like indirect branch: pops the shadow stack.

    ``landing_offset`` models z-style returns that land a few bytes past
    the call's NSIA (the CRS checks offsets 0,2,4,6,8 — section VI).
    """

    def __init__(self, landing_offset: int = 0, fallback: Optional[int] = None):
        if landing_offset % 2:
            raise ValueError("landing_offset must be even")
        self.landing_offset = landing_offset
        self.fallback = fallback

    def resolve(self, instruction, context):
        if context.call_stack:
            return True, context.call_stack.pop() + self.landing_offset
        if self.fallback is not None:
            return True, self.fallback
        raise SimulationError(
            f"return at {instruction.address:#x} with empty shadow stack"
        )


class IndirectCycle(BranchBehavior):
    """An indirect branch cycling through a fixed target list — a
    multi-target (changing target) branch with a path-correlated
    pattern, the CTB's bread and butter."""

    def __init__(self, targets: Sequence[int]):
        if not targets:
            raise ValueError("targets must be non-empty")
        self.targets = tuple(targets)
        self._position = 0

    def resolve(self, instruction, context):
        target = self.targets[self._position]
        self._position = (self._position + 1) % len(self.targets)
        return True, target


class IndirectRandom(BranchBehavior):
    """An indirect branch picking a random target — the worst case for
    any target predictor."""

    def __init__(self, targets: Sequence[int]):
        if not targets:
            raise ValueError("targets must be non-empty")
        self.targets = tuple(targets)

    def resolve(self, instruction, context):
        return True, context.rng.choice(self.targets)
