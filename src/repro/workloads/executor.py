"""The program executor: the model's "processor back end".

Walks a :class:`~repro.workloads.program.Program` from its entry point,
resolving each branch through its behaviour, and yields the executed
branches in program order — the resolved path the predictor is measured
against.  Non-branch instructions are counted (for MPKI) but not
yielded.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.isa.dynamic import DynamicBranch
from repro.workloads.behaviors import BranchBehavior, ExecutionContext
from repro.workloads.program import Program


class Executor:
    """Deterministic in-order execution of one program."""

    def __init__(
        self,
        program: Program,
        seed: int = 1,
        context_id: int = 0,
        thread: int = 0,
        start_sequence: int = 0,
    ):
        self.program = program
        self.context_id = context_id
        self.thread = thread
        self.rng = DeterministicRng(seed).fork(f"executor-{program.name}")
        self.exec_context = ExecutionContext(self.rng)
        self.pc = program.entry_point
        self.instructions_executed = 0
        self.branches_executed = 0
        self._sequence = start_sequence

    def run(
        self,
        max_branches: Optional[int] = None,
        max_instructions: Optional[int] = None,
    ) -> Iterator[DynamicBranch]:
        """Execute until a limit is reached; yields executed branches."""
        if max_branches is None and max_instructions is None:
            raise ValueError("a branch or instruction limit is required")
        while True:
            if max_branches is not None and self.branches_executed >= max_branches:
                return
            if (
                max_instructions is not None
                and self.instructions_executed >= max_instructions
            ):
                return
            branch = self.step()
            if branch is not None:
                yield branch

    def step(self) -> Optional[DynamicBranch]:
        """Execute one instruction; returns the branch record if it was a
        branch."""
        instruction = self.program.at(self.pc)
        self.instructions_executed += 1
        if not instruction.is_branch:
            self.pc = instruction.next_sequential
            return None
        behavior = self.program.behavior_of(instruction)
        assert isinstance(behavior, BranchBehavior)
        taken, target = behavior.resolve(instruction, self.exec_context)
        if taken:
            if target is None:
                raise SimulationError(
                    f"behaviour at {instruction.address:#x} returned taken "
                    "without a target"
                )
            if (
                instruction.static_target is not None
                and target != instruction.static_target
            ):
                raise SimulationError(
                    f"relative branch at {instruction.address:#x} cannot "
                    f"retarget ({target:#x} != {instruction.static_target:#x})"
                )
            self.pc = target
        else:
            target = None
            self.pc = instruction.next_sequential
        self.exec_context.record_outcome(taken)
        branch = DynamicBranch(
            sequence=self._sequence,
            instruction=instruction,
            taken=taken,
            target=target,
            thread=self.thread,
            context=self.context_id,
        )
        self._sequence += 1
        self.branches_executed += 1
        return branch

    @property
    def next_sequence(self) -> int:
        return self._sequence
