"""The program executor: the model's "processor back end".

Walks a :class:`~repro.workloads.program.Program` from its entry point,
resolving each branch through its behaviour, and yields the executed
branches in program order — the resolved path the predictor is measured
against.  Non-branch instructions are counted (for MPKI) but not
yielded.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind
from repro.workloads.behaviors import ExecutionContext
from repro.workloads.program import Program


class Executor:
    """Deterministic in-order execution of one program."""

    def __init__(
        self,
        program: Program,
        seed: int = 1,
        context_id: int = 0,
        thread: int = 0,
        start_sequence: int = 0,
    ):
        self.program = program
        self.context_id = context_id
        self.thread = thread
        self.rng = DeterministicRng(seed).fork(f"executor-{program.name}")
        self.exec_context = ExecutionContext(self.rng)
        self.pc = program.entry_point
        self.instructions_executed = 0
        self.branches_executed = 0
        self._sequence = start_sequence

    def run(
        self,
        max_branches: Optional[int] = None,
        max_instructions: Optional[int] = None,
    ) -> Iterator[DynamicBranch]:
        """Execute until a limit is reached; yields executed branches."""
        if max_branches is None and max_instructions is None:
            raise ValueError("a branch or instruction limit is required")
        if max_instructions is None:
            # Hot path: branch-limited runs (the common engine drive)
            # inline the non-branch stepping so the ~4+ sequential
            # instructions per branch cost one dict probe each instead
            # of a step() call with property lookups.
            get = self.program.instructions.get
            none_kind = BranchKind.NONE
            executed = self.instructions_executed
            while self.branches_executed < max_branches:
                pc = self.pc
                instruction = get(pc)
                while instruction is not None and instruction.kind is none_kind:
                    executed += 1
                    pc += instruction.length
                    instruction = get(pc)
                self.pc = pc
                self.instructions_executed = executed
                if instruction is None:
                    raise SimulationError(
                        f"{self.program.name}: no instruction at {pc:#x} "
                        "(bad control transfer)"
                    )
                executed += 1  # the branch instruction itself
                self.instructions_executed = executed
                yield self._execute_branch(instruction)
            return
        while True:
            if max_branches is not None and self.branches_executed >= max_branches:
                return
            if self.instructions_executed >= max_instructions:
                return
            branch = self.step()
            if branch is not None:
                yield branch

    def step(self) -> Optional[DynamicBranch]:
        """Execute one instruction; returns the branch record if it was a
        branch."""
        instruction = self.program.at(self.pc)
        self.instructions_executed += 1
        if not instruction.is_branch:
            self.pc = instruction.next_sequential
            return None
        return self._execute_branch(instruction)

    def _execute_branch(self, instruction) -> DynamicBranch:
        """Resolve one branch instruction (the PC already sits on it)."""
        behavior = self.program.behavior_of(instruction)
        taken, target = behavior.resolve(instruction, self.exec_context)
        if taken:
            if target is None:
                raise SimulationError(
                    f"behaviour at {instruction.address:#x} returned taken "
                    "without a target"
                )
            if (
                instruction.static_target is not None
                and target != instruction.static_target
            ):
                raise SimulationError(
                    f"relative branch at {instruction.address:#x} cannot "
                    f"retarget ({target:#x} != {instruction.static_target:#x})"
                )
            self.pc = target
        else:
            target = None
            self.pc = instruction.next_sequential
        self.exec_context.record_outcome(taken)
        branch = DynamicBranch(
            sequence=self._sequence,
            instruction=instruction,
            taken=taken,
            target=target,
            thread=self.thread,
            context=self.context_id,
        )
        self._sequence += 1
        self.branches_executed += 1
        return branch

    @property
    def next_sequence(self) -> int:
        return self._sequence
