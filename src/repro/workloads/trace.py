"""Branch-trace I/O.

The paper's performance model consumed "instruction traces of workloads
that run on a mainframe system" (section VII).  This module provides the
equivalent: executed-branch traces can be saved to a compact text format
and replayed later without the generating program.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.common.errors import TraceFormatError
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction

#: Format marker written as the first line.
TRACE_HEADER = "#repro-branch-trace-v1"

_KIND_CODES = {
    BranchKind.CONDITIONAL_RELATIVE: "cr",
    BranchKind.UNCONDITIONAL_RELATIVE: "ur",
    BranchKind.CONDITIONAL_INDIRECT: "ci",
    BranchKind.UNCONDITIONAL_INDIRECT: "ui",
    BranchKind.LOOP_RELATIVE: "lr",
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def format_record(branch: DynamicBranch) -> str:
    """One branch per line:
    ``seq kind address length static_target taken target thread context``.
    Missing targets are written as ``-``."""
    insn = branch.instruction
    static_target = "-" if insn.static_target is None else f"{insn.static_target:x}"
    target = "-" if branch.target is None else f"{branch.target:x}"
    return (
        f"{branch.sequence} {_KIND_CODES[insn.kind]} {insn.address:x} "
        f"{insn.length} {static_target} {int(branch.taken)} {target} "
        f"{branch.thread} {branch.context}"
    )


def parse_record(line: str) -> DynamicBranch:
    """Inverse of :func:`format_record`."""
    parts = line.split()
    if len(parts) != 9:
        raise TraceFormatError(f"malformed trace record: {line!r}")
    try:
        sequence = int(parts[0])
        kind = _CODE_KINDS[parts[1]]
        address = int(parts[2], 16)
        length = int(parts[3])
        static_target = None if parts[4] == "-" else int(parts[4], 16)
        taken = bool(int(parts[5]))
        target = None if parts[6] == "-" else int(parts[6], 16)
        thread = int(parts[7])
        context = int(parts[8])
    except (KeyError, ValueError) as error:
        raise TraceFormatError(f"malformed trace record: {line!r}") from error
    instruction = Instruction(
        address=address, length=length, kind=kind, static_target=static_target
    )
    return DynamicBranch(
        sequence=sequence,
        instruction=instruction,
        taken=taken,
        target=target,
        thread=thread,
        context=context,
    )


def _open_text(path: Union[str, Path], mode: str) -> io.TextIOBase:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)  # noqa: SIM115 - caller closes via with


def write_trace(path: Union[str, Path], branches: Iterable[DynamicBranch]) -> int:
    """Write a trace file (gzip when the path ends in .gz); returns the
    record count."""
    count = 0
    with _open_text(path, "w") as stream:
        stream.write(TRACE_HEADER + "\n")
        for branch in branches:
            stream.write(format_record(branch) + "\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[DynamicBranch]:
    """Stream branches back from a trace file."""
    with _open_text(path, "r") as stream:
        header = stream.readline().strip()
        if header != TRACE_HEADER:
            raise TraceFormatError(
                f"{path}: missing trace header (got {header!r})"
            )
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_record(line)


def load_trace(path: Union[str, Path]) -> List[DynamicBranch]:
    """Read a whole trace into memory."""
    return list(read_trace(path))
