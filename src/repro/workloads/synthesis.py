"""Statistical workload cloning.

The paper's performance model consumed "instruction traces of workloads
that run on a mainframe system" (section VII).  Real traces are
proprietary, but their *statistics* travel: this module measures the
branch-level profile of any trace (branch density, kind mix, taken
rates, footprint, working-set locality) and synthesises a program whose
dynamic behaviour matches the profile — the standard workload-cloning
technique for sharing proprietary workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.common.rng import DeterministicRng
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind
from repro.workloads.behaviors import (
    AlwaysTaken,
    BiasedRandom,
    IndirectCycle,
    Pattern,
)
from repro.workloads.program import CodeBuilder, Program


@dataclass
class BranchProfile:
    """The shareable statistics of a branch trace."""

    #: Dynamic branches measured.
    dynamic_branches: int = 0
    #: Distinct static branch addresses seen.
    static_branches: int = 0
    #: Bytes spanned by the static branches.
    footprint_bytes: int = 0
    #: Overall fraction of dynamic branches that were taken.
    taken_rate: float = 0.0
    #: Dynamic share of each branch kind.
    kind_mix: Dict[BranchKind, float] = field(default_factory=dict)
    #: Histogram of per-static-branch taken rates, bucketed by decile
    #: (bucket i covers [i/10, (i+1)/10)).
    bias_histogram: List[float] = field(default_factory=lambda: [0.0] * 10)
    #: The same histogram weighted by dynamic execution counts (hot
    #: branches dominate) — what the clone draws from.
    dynamic_bias_histogram: List[float] = field(
        default_factory=lambda: [0.0] * 10
    )
    #: Average distinct targets per taken indirect branch.
    indirect_target_fanout: float = 1.0

    def summary(self) -> str:
        lines = [
            f"dynamic branches:   {self.dynamic_branches}",
            f"static branches:    {self.static_branches}",
            f"footprint:          {self.footprint_bytes} bytes",
            f"taken rate:         {self.taken_rate:.2%}",
            "kind mix:           "
            + ", ".join(
                f"{kind.value}={share:.1%}"
                for kind, share in sorted(
                    self.kind_mix.items(), key=lambda kv: -kv[1]
                )
            ),
            f"indirect fanout:    {self.indirect_target_fanout:.2f}",
        ]
        return "\n".join(lines)


def profile_trace(branches: Iterable[DynamicBranch]) -> BranchProfile:
    """Measure the branch statistics of a trace."""
    profile = BranchProfile()
    kind_counts: Counter = Counter()
    per_address_total: Counter = Counter()
    per_address_taken: Counter = Counter()
    indirect_targets: Dict[int, set] = {}
    addresses = set()
    conditional_addresses = set()
    lowest = None
    highest = None
    taken = 0
    for branch in branches:
        profile.dynamic_branches += 1
        kind_counts[branch.kind] += 1
        addresses.add(branch.address)
        if branch.instruction.is_conditional:
            conditional_addresses.add(branch.address)
        per_address_total[branch.address] += 1
        if branch.taken:
            taken += 1
            per_address_taken[branch.address] += 1
            if branch.instruction.is_indirect:
                indirect_targets.setdefault(branch.address, set()).add(
                    branch.target
                )
        lowest = branch.address if lowest is None else min(lowest, branch.address)
        highest = (
            branch.instruction.end_address
            if highest is None
            else max(highest, branch.instruction.end_address)
        )
    if profile.dynamic_branches == 0:
        return profile
    profile.static_branches = len(addresses)
    profile.footprint_bytes = (highest - lowest) if lowest is not None else 0
    profile.taken_rate = taken / profile.dynamic_branches
    profile.kind_mix = {
        kind: count / profile.dynamic_branches
        for kind, count in kind_counts.items()
    }
    histogram = [0] * 10
    dynamic_histogram = [0] * 10
    conditional_total = 0
    for address, total in per_address_total.items():
        if address not in conditional_addresses:
            continue
        rate = per_address_taken[address] / total
        bucket = min(9, int(rate * 10))
        histogram[bucket] += 1
        dynamic_histogram[bucket] += total
        conditional_total += total
    denominator = max(1, len(conditional_addresses))
    profile.bias_histogram = [count / denominator for count in histogram]
    profile.dynamic_bias_histogram = [
        count / max(1, conditional_total) for count in dynamic_histogram
    ]
    if indirect_targets:
        profile.indirect_target_fanout = sum(
            len(targets) for targets in indirect_targets.values()
        ) / len(indirect_targets)
    return profile


def synthesize_program(
    profile: BranchProfile,
    seed: int = 1,
    start: int = 0x400000,
    name: str = "synthetic-clone",
) -> Program:
    """Build a program whose dynamic branch statistics approximate
    *profile*.

    The clone is a ring of blocks: each block carries one conditional
    branch whose bias is drawn from the profile's bias histogram, plus
    the ring's unconditional exit; indirect dispatch sites reproduce the
    measured fanout.  Block count matches the measured static-branch
    population; filler instruction counts reproduce the branch density.
    """
    if profile.static_branches == 0:
        raise ValueError("cannot synthesise from an empty profile")
    rng = DeterministicRng(seed).fork(name)
    builder = CodeBuilder(start, name=name)

    conditional_share = sum(
        share
        for kind, share in profile.kind_mix.items()
        if kind in (BranchKind.CONDITIONAL_RELATIVE, BranchKind.LOOP_RELATIVE,
                    BranchKind.CONDITIONAL_INDIRECT)
    )
    indirect_share = sum(
        share
        for kind, share in profile.kind_mix.items()
        if kind in (BranchKind.CONDITIONAL_INDIRECT,
                    BranchKind.UNCONDITIONAL_INDIRECT)
    )
    # Conditionals per block: match the measured conditional-to-
    # control-transfer dynamic ratio (each block executes all its
    # conditionals once plus one exit).
    transfer_share = max(0.05, 1.0 - conditional_share)
    conditionals_per_block = max(
        1, min(8, int(round(conditional_share / transfer_share)))
    )
    branches_per_block = conditionals_per_block + 1
    block_count = max(4, profile.static_branches // branches_per_block)
    block_count = min(block_count, 8192)
    # Indirect dispatch sites to reproduce the indirect share.
    indirect_sites = max(0, int(round(block_count * indirect_share * 2)))
    fanout = max(1, int(round(profile.indirect_target_fanout)))

    # Pad blocks with gaps so the clone's footprint matches the
    # original's (a block body is roughly 50 bytes).
    body_estimate = 30 + 25 * conditionals_per_block
    gap_per_block = max(
        0,
        (profile.footprint_bytes - block_count * body_estimate) // block_count,
    )
    gap_per_block -= gap_per_block % 2

    entries = []
    exits = []
    dispatch_sites = []
    for index in range(block_count):
        if gap_per_block and index:
            builder.gap(gap_per_block)
        entry = builder.label(f"clone{index}")
        entries.append(entry)
        builder.straight_mixed(3, rng)
        if conditional_share > 0:
            for _ in range(conditionals_per_block):
                skip = builder.forward_label()
                bias = _draw_bias(rng, profile.dynamic_bias_histogram)
                builder.branch(
                    BranchKind.CONDITIONAL_RELATIVE,
                    target=skip,
                    behavior=_bias_behavior(rng, bias),
                )
                builder.straight_mixed(2, rng)
                builder.bind(skip)
        builder.straight_mixed(2, rng)
        if indirect_sites > 0 and index % max(1, block_count // max(1, indirect_sites)) == 0:
            dispatch_sites.append(
                builder.branch(BranchKind.UNCONDITIONAL_INDIRECT, behavior=None)
            )
        else:
            exits.append(
                builder.branch(
                    BranchKind.UNCONDITIONAL_RELATIVE,
                    target=entry,  # rewired below
                    behavior=AlwaysTaken(),
                )
            )
    program = builder.build()

    # Wire the ring: exits and dispatch sites both continue the tour.
    order = list(range(block_count))
    rng.shuffle(order)
    successor = {}
    for position, block in enumerate(order):
        successor[block] = order[(position + 1) % block_count]
    # Map each block to its exit site (one per block, in layout order).
    per_block_sites = sorted(exits + dispatch_sites)
    for index, site in enumerate(per_block_sites):
        target = entries[successor[index]].resolve()
        if site in dispatch_sites:
            # Indirect: rotate over `fanout` successors.
            targets = []
            block = index
            for _ in range(fanout):
                block = successor[block]
                targets.append(entries[block].resolve())
            program.behaviors[site] = IndirectCycle(targets)
        else:
            old = program.instructions[site]
            program.instructions[site] = old.__class__(
                address=old.address,
                length=old.length,
                kind=old.kind,
                static_target=target,
            )
    program.entry_point = entries[order[0]].resolve()
    program.validate()
    return program


def _draw_bias(rng: DeterministicRng, histogram: List[float]) -> float:
    """Sample a per-branch taken rate from the decile histogram."""
    total = sum(histogram)
    if total <= 0:
        return 0.5
    roll = rng.random() * total
    cumulative = 0.0
    for bucket, weight in enumerate(histogram):
        cumulative += weight
        if roll <= cumulative:
            return min(0.95, max(0.05, (bucket + 0.5) / 10))
    return 0.5


def _bias_behavior(rng: DeterministicRng, bias: float):
    """Mostly-deterministic behaviour matching a taken rate (see the
    generator rationale in :mod:`repro.workloads.generators`)."""
    if bias <= 0.08:
        return BiasedRandom(bias)
    if bias >= 0.92:
        return BiasedRandom(bias)
    period = max(2, int(round(1 / min(bias, 1 - bias))))
    takens = max(1, int(round(period * bias)))
    takens = min(takens, period - 1) if period > 1 else takens
    pattern = [True] * takens + [False] * (period - takens)
    return Pattern(pattern)


def clone_trace(
    branches: Iterable[DynamicBranch], seed: int = 1, name: str = "clone"
) -> Program:
    """Profile a trace and synthesise its statistical clone."""
    return synthesize_program(profile_trace(branches), seed=seed, name=name)
