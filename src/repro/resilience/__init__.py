"""Fault injection, detection/recovery and graceful-degradation checks.

See :mod:`repro.resilience.faults` for the injection framework,
:mod:`repro.resilience.audit` for the structural-invariant auditor and
:mod:`repro.resilience.equivalence` for the architectural-equivalence
harness proving that faults only ever cost prediction accuracy.
"""

from repro.common.corruption import Corruption, flipped_bits, popcount
from repro.common.errors import AuditError
from repro.resilience.audit import assert_healthy, audit_predictor
from repro.resilience.equivalence import (
    ArchObservation,
    FaultImpact,
    arch_observer_into,
    diff_arch_observations,
    fault_equivalence_report,
    run_fault_suite,
)
from repro.resilience.faults import (
    EVENT_LOG_LIMIT,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)

__all__ = [
    "ArchObservation",
    "AuditError",
    "Corruption",
    "EVENT_LOG_LIMIT",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultImpact",
    "FaultInjector",
    "FaultPlan",
    "arch_observer_into",
    "assert_healthy",
    "audit_predictor",
    "diff_arch_observations",
    "fault_equivalence_report",
    "flipped_bits",
    "popcount",
    "run_fault_suite",
]
